//! Regression guards for failures recorded against the seed suite, pinned
//! as plain tests so they run on every `cargo test` without depending on
//! the property-test RNG stream.

use htp::core::constraint::check_feasibility;
use htp::core::construct::construct_partition;
use htp::core::injector::{compute_spreading_metric, FlowParams};
use htp::core::SpreadingMetric;
use htp::model::{validate, TreeSpec};
use htp::netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use htp::netlist::gen::random::{random_hypergraph, RandomParams};
use htp::netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_instance(seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_hypergraph(
        RandomParams {
            nodes: 24,
            nets: 40,
            min_net_size: 2,
            max_net_size: 4,
        },
        &mut rng,
    )
}

/// Recorded in `props.proptest-regressions`: `construction_is_always_valid`
/// once failed at `seed = 0, scale = 0.0`, i.e. an all-zero spreading
/// metric (every shortest-path tree collapses to distance 0, so the
/// constructor's window ordering degenerates to ties everywhere).
#[test]
fn regression_construction_zero_metric() {
    let h = small_instance(0);
    let spec = TreeSpec::new(vec![(7, 2, 1.0), (13, 2, 1.0), (25, 2, 1.0)]).unwrap();
    let metric = SpreadingMetric::from_lengths(vec![0.0; h.num_nets()]);
    let mut rng = StdRng::seed_from_u64(0);
    let p = construct_partition(&h, &spec, &metric, &mut rng).unwrap();
    validate::validate(&h, &spec, &p).unwrap();
}

/// Broader sweep of the same failure mode: degenerate (zero and highly
/// tied) metrics through the constructor on many generated instances.
#[test]
fn regression_construction_degenerate_metrics() {
    for seed in 0u64..60 {
        let h = small_instance(seed);
        let spec = TreeSpec::new(vec![(7, 2, 1.0), (13, 2, 1.0), (25, 2, 1.0)]).unwrap();
        for (tag, metric) in [
            (
                "zero",
                SpreadingMetric::from_lengths(vec![0.0; h.num_nets()]),
            ),
            (
                "mod7",
                SpreadingMetric::from_lengths((0..h.num_nets()).map(|e| (e % 7) as f64).collect()),
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
            let p = construct_partition(&h, &spec, &metric, &mut rng)
                .unwrap_or_else(|e| panic!("seed {seed} ({tag}): construct failed: {e}"));
            validate::validate(&h, &spec, &p)
                .unwrap_or_else(|e| panic!("seed {seed} ({tag}): invalid partition: {e}"));
        }
    }
}

/// The speculative-parallel Algorithm 2 engine must produce a bit-identical
/// metric for a fixed seed at any thread count: probes only ever read the
/// round-start snapshot, and commits are sequential in the round's
/// shuffled order.
#[test]
fn regression_metric_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(1997);
    let params = ClusteredParams {
        clusters: 4,
        cluster_size: 12,
        intra_nets: 36,
        inter_nets: 8,
        min_net_size: 2,
        max_net_size: 3,
    };
    let inst = clustered_hypergraph(params, &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::new(vec![(12, 2, 1.0), (24, 2, 1.0), (48, 2, 1.0)]).unwrap();

    let run = |threads: usize| {
        let flow = FlowParams {
            threads,
            ..FlowParams::default()
        };
        compute_spreading_metric(h, &spec, flow, &mut StdRng::seed_from_u64(42))
    };
    let (m1, s1) = run(1);
    let (m4, s4) = run(4);
    assert_eq!(m1, m4, "metric diverged between threads=1 and threads=4");
    assert_eq!(s1, s4, "stats diverged between threads=1 and threads=4");
    assert!(s1.converged);
    let report = check_feasibility(h, &spec, &m1, 1e-6);
    assert!(
        report.feasible,
        "worst shortfall {}",
        report.worst_shortfall
    );
}
