//! The paper's Figure 2 worked example, reproduced exactly:
//! a 16-node, 30-edge unit graph under the hierarchy
//! `C_0 = 4, C_1 = 8, w_0 = 1, w_1 = 2`.

use htp::core::lower_bound::verify_lemma1;
use htp::core::partitioner::{FlowPartitioner, PartitionerParams};
use htp::lp::cutting::{lower_bound, CuttingPlaneParams};
use htp::model::{cost, validate};
use htp_bench::{figure2, figure2_reference_partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn reference_partition_matches_the_figure_arithmetic() {
    let (h, spec) = figure2();
    let p = figure2_reference_partition();
    validate::validate(&h, &spec, &p).unwrap();
    // 6 edges cut at level 0 only (cost w_0·2 = 2 each) and 4 edges cut at
    // both levels (cost 1·2 + 2·2 = 6 each): 12 + 24 = 36.
    assert_eq!(cost::partition_cost(&h, &spec, &p), 36.0);

    // The induced metric takes exactly the figure's labelled values.
    let metric = htp::core::SpreadingMetric::from_partition(&h, &spec, &p);
    let mut twos = 0;
    let mut sixes = 0;
    let mut zeros = 0;
    for e in h.nets() {
        match metric.length(e) as i64 {
            0 => zeros += 1,
            2 => twos += 1,
            6 => sixes += 1,
            other => panic!("unexpected d(e) = {other}"),
        }
    }
    assert_eq!((zeros, twos, sixes), (20, 6, 4));
}

#[test]
fn lemma1_holds_for_the_reference_partition() {
    let (h, spec) = figure2();
    let p = figure2_reference_partition();
    let (report, objective) = verify_lemma1(&h, &spec, &p, 1e-9);
    assert!(report.feasible, "shortfall {}", report.worst_shortfall);
    assert_eq!(objective, 36.0);
}

#[test]
fn flow_finds_a_partition_close_to_the_reference() {
    let (h, spec) = figure2();
    let mut rng = StdRng::seed_from_u64(1997);
    let result = FlowPartitioner::try_new(PartitionerParams {
        iterations: 8,
        constructions_per_metric: 4,
        ..PartitionerParams::default()
    })
    .unwrap()
    .run(&h, &spec, &mut rng)
    .unwrap();
    validate::validate(&h, &spec, &result.partition).unwrap();
    assert!(
        result.cost <= 44.0,
        "FLOW should land near the reference cost 36, got {}",
        result.cost
    );
}

#[test]
fn lp_lower_bound_brackets_the_reference_cost() {
    let (h, spec) = figure2();
    // A modest round cap keeps the test quick; every intermediate
    // restricted optimum is already a valid (if looser) bound.
    let params = CuttingPlaneParams {
        max_rounds: 10,
        ..CuttingPlaneParams::default()
    };
    let lb = lower_bound(&h, &spec, params).unwrap();
    assert!(
        lb.lower_bound > 0.0,
        "spreading constraints force a positive bound"
    );
    assert!(
        lb.lower_bound <= 36.0 + 1e-6,
        "Lemma 2: the LP optimum cannot exceed a feasible partition's cost, got {}",
        lb.lower_bound
    );
}
