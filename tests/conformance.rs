//! Differential conformance harness: FLOW and the baseline suite are run
//! over every generated instance family, every partition is re-checked by
//! the clean-room `htp-verify` oracles, and the resulting (cost, leaf
//! assignment) digests are pinned against a golden file.
//!
//! The golden digests double as a determinism contract: FLOW must produce
//! **bit-identical** digests at 1, 2, and 4 probe threads, and a
//! budget-degraded run must still hand back a certified-valid partition.
//!
//! Regenerate the golden file after an intentional algorithm change with:
//!
//! ```text
//! HTP_UPDATE_GOLDEN=1 cargo test --test conformance
//! ```

use std::fmt::Write as _;

use htp::baselines::suite::run_all;
use htp::core::injector::FlowParams;
use htp::core::partitioner::{FlowPartitioner, PartitionerParams};
use htp::core::Budget;
use htp::model::{HierarchicalPartition, TreeSpec};
use htp::netlist::Hypergraph;
use htp::verify::gen::all_families;
use htp::verify::{audit_metric, certify};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed for every family and every solver in this harness.
const SEED: u64 = 1997;
/// Feasibility tolerance for the metric audit and cost cross-checks.
const TOLERANCE: f64 = 1e-6;
/// Outer FLOW iterations: small, so the whole matrix stays fast in debug.
const FLOW_ITERATIONS: usize = 2;

const GOLDEN_PATH: &str = "tests/golden/conformance.txt";

fn flow_params(threads: usize) -> PartitionerParams {
    PartitionerParams {
        iterations: FLOW_ITERATIONS,
        constructions_per_metric: 4,
        flow: FlowParams {
            threads,
            ..FlowParams::default()
        },
    }
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digests a partition as (cost bits, per-node leaf ranks). Leaf ranks —
/// the index of each node's leaf in `leaves()` order — are stable under
/// internal vertex renumbering, so the digest pins the *assignment*, not
/// incidental ids.
fn digest(h: &Hypergraph, p: &HierarchicalPartition, cost: f64) -> u64 {
    let leaves = p.leaves();
    let rank_of = |v| {
        leaves
            .iter()
            .position(|&l| l == p.leaf_of(v))
            .expect("every node maps to a leaf") as u64
    };
    let mut acc = fnv1a(0xcbf2_9ce4_8422_2325, &cost.to_bits().to_le_bytes());
    for v in h.nodes() {
        acc = fnv1a(acc, &rank_of(v).to_le_bytes());
    }
    acc
}

/// Certifies `p` with the clean-room oracle and cross-checks the claimed
/// cost against the independently re-priced one.
fn certify_and_price(
    h: &Hypergraph,
    spec: &TreeSpec,
    p: &HierarchicalPartition,
    claimed: f64,
    what: &str,
) -> f64 {
    let cert = certify(h, spec, p);
    assert!(
        cert.is_valid(),
        "{what}: certification failed: {:?}",
        cert.violations
    );
    let cost = cert.cost.expect("valid certificates carry a cost");
    assert!(
        (cost - claimed).abs() <= TOLERANCE,
        "{what}: claims cost {claimed} but the oracle certifies {cost}"
    );
    cost
}

/// One golden line per (family, solver): certified cost and digest.
fn conformance_report(threads: usize) -> String {
    let mut out = String::new();
    for inst in all_families(SEED) {
        let h = &inst.hypergraph;
        let spec = &inst.spec;

        let mut rng = StdRng::seed_from_u64(SEED);
        let flow = FlowPartitioner::try_new(flow_params(threads))
            .expect("harness parameters are valid")
            .run(h, spec, &mut rng)
            .expect("FLOW succeeds on generated families");
        let what = format!("{}/flow", inst.family);
        let cost = certify_and_price(h, spec, &flow.partition, flow.cost, &what);

        // The winning metric must satisfy every (P1) constraint.
        let audit = audit_metric(h, spec, flow.metric.lengths(), h.nodes(), TOLERANCE);
        assert!(
            audit.constraints_hold,
            "{}: winning metric violates (P1) by {}",
            inst.family, audit.worst_shortfall
        );

        writeln!(
            out,
            "{} flow cost={cost:.6} digest={:016x}",
            inst.family,
            digest(h, &flow.partition, cost)
        )
        .expect("writing to a String");

        for run in run_all(h, spec, SEED).expect("baselines succeed on generated families") {
            let what = format!("{}/{}", inst.family, run.name);
            let cert = certify(h, spec, &run.partition);
            assert!(
                cert.is_valid(),
                "{what}: certification failed: {:?}",
                cert.violations
            );
            let cost = cert.cost.expect("valid certificates carry a cost");
            writeln!(
                out,
                "{} {} cost={cost:.6} digest={:016x}",
                inst.family,
                run.name,
                digest(h, &run.partition, cost)
            )
            .expect("writing to a String");
        }
    }
    out
}

/// FLOW + every baseline on every family, certified, matching the golden
/// digests. Set `HTP_UPDATE_GOLDEN=1` to rewrite the golden file instead.
#[test]
fn certified_costs_and_assignments_match_the_golden_digests() {
    let report = conformance_report(1);
    if std::env::var_os("HTP_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &report).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with HTP_UPDATE_GOLDEN=1)");
    assert_eq!(
        report, golden,
        "conformance drift: rerun with HTP_UPDATE_GOLDEN=1 if intentional"
    );
}

/// The full certified report — costs and assignment digests — is
/// bit-identical at 1, 2, and 4 probe threads.
#[test]
fn flow_digests_are_identical_across_thread_counts() {
    let single = conformance_report(1);
    for threads in [2, 4] {
        assert_eq!(
            conformance_report(threads),
            single,
            "thread count {threads} changed a certified digest"
        );
    }
}

/// A budget that fires almost immediately still yields a partition the
/// independent oracle certifies as valid — degraded, never invalid.
#[test]
fn budget_degraded_runs_still_certify() {
    for inst in all_families(SEED) {
        let h = &inst.hypergraph;
        let spec = &inst.spec;
        let mut rng = StdRng::seed_from_u64(SEED);
        let budget = Budget::unlimited().with_max_rounds(1);
        let run = FlowPartitioner::try_new(flow_params(1))
            .expect("harness parameters are valid")
            .run_with_budget(h, spec, &mut rng, &budget)
            .expect("one round is enough to salvage a partition");
        assert!(
            !run.outcome.is_complete(),
            "{}: a one-round budget cannot complete the run",
            inst.family
        );
        let what = format!("{}/degraded", inst.family);
        certify_and_price(h, spec, &run.result.partition, run.result.cost, &what);
    }
}
