//! Cross-crate Lemma 2 checks: the cutting-plane lower bound must sit below
//! the cost of every partition any algorithm produces.

use htp::baselines::gfm::{gfm_partition, GfmParams};
use htp::baselines::rfm::{rfm_partition, RfmParams};
use htp::core::partitioner::{FlowPartitioner, PartitionerParams};
use htp::lp::cutting::{lower_bound, CuttingPlaneParams};
use htp::model::{cost, TreeSpec};
use htp::netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lower_bound_sits_below_every_algorithm_on_small_instances() {
    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = clustered_hypergraph(
            ClusteredParams {
                clusters: 4,
                cluster_size: 6,
                intra_nets: 60,
                inter_nets: 8,
                min_net_size: 2,
                max_net_size: 3,
            },
            &mut rng,
        );
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(8, 2, 1.0), (14, 2, 1.0), (24, 2, 1.0)]).unwrap();

        let params = CuttingPlaneParams {
            max_rounds: 8,
            ..CuttingPlaneParams::default()
        };
        let lb = lower_bound(h, &spec, params).unwrap();
        assert!(lb.lower_bound >= 0.0);

        let flow = FlowPartitioner::try_new(PartitionerParams::default())
            .unwrap()
            .run(h, &spec, &mut rng)
            .unwrap();
        let gfm = gfm_partition(h, &spec, GfmParams::default(), &mut rng).unwrap();
        let rfm = rfm_partition(h, &spec, RfmParams::default(), &mut rng).unwrap();

        for (name, c) in [
            ("flow", flow.cost),
            ("gfm", cost::partition_cost(h, &spec, &gfm)),
            ("rfm", cost::partition_cost(h, &spec, &rfm)),
        ] {
            assert!(
                lb.lower_bound <= c + 1e-6,
                "seed {seed}: bound {} exceeds {name} cost {c}",
                lb.lower_bound
            );
        }
    }
}

#[test]
fn heuristic_metric_objective_tracks_the_lp_optimum() {
    // Algorithm 2's heuristic metric is approximately feasible, so its
    // objective should come out at or above the LP optimum (which is over a
    // superset of feasible points), but within a small factor on an easy
    // instance.
    let mut rng = StdRng::seed_from_u64(4);
    let inst = clustered_hypergraph(
        ClusteredParams {
            clusters: 2,
            cluster_size: 8,
            intra_nets: 40,
            inter_nets: 3,
            min_net_size: 2,
            max_net_size: 2,
        },
        &mut rng,
    );
    let h = &inst.hypergraph;
    let spec = TreeSpec::new(vec![(10, 2, 1.0), (16, 2, 1.0)]).unwrap();

    let params = CuttingPlaneParams {
        max_rounds: 12,
        ..CuttingPlaneParams::default()
    };
    let lb = lower_bound(h, &spec, params).unwrap();
    let (metric, stats) = htp::core::injector::compute_spreading_metric(
        h,
        &spec,
        htp::core::injector::FlowParams::default(),
        &mut rng,
    );
    assert!(stats.converged);
    let heuristic = metric.objective(h);
    assert!(
        heuristic >= lb.lower_bound - 1e-6,
        "a feasible point cannot beat the relaxation optimum: {heuristic} < {}",
        lb.lower_bound
    );
    assert!(
        heuristic <= 40.0 * lb.lower_bound.max(0.5),
        "heuristic metric objective is wildly above the optimum: {heuristic} vs {}",
        lb.lower_bound
    );
}
