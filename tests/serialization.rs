//! Persistence round-trips across the stack: netlists through `.hgr` and
//! `netl`, partitions through the `htp-partition` text format — with costs
//! preserved exactly.

use htp::core::partitioner::{FlowPartitioner, PartitionerParams};
use htp::model::{cost, io as partition_io, TreeSpec};
use htp::netlist::gen::rent::{rent_circuit, RentParams};
use htp::netlist::io::{hgr, netl};
use htp::netlist::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn partition_survives_a_save_load_cycle_with_identical_cost() {
    let mut rng = StdRng::seed_from_u64(77);
    let h = rent_circuit(
        RentParams {
            nodes: 120,
            primary_inputs: 8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.2, 1.0).unwrap();
    let result = FlowPartitioner::try_new(PartitionerParams::default())
        .unwrap()
        .run(&h, &spec, &mut rng)
        .unwrap();

    let text = partition_io::to_string(&result.partition);
    let loaded = partition_io::from_str(&text).unwrap();
    assert_eq!(loaded.num_nodes(), h.num_nodes());
    assert_eq!(loaded.root_level(), result.partition.root_level());
    assert_eq!(
        cost::partition_cost(&h, &spec, &loaded),
        result.cost,
        "cost must be identical after reload"
    );
}

#[test]
fn netlist_survives_hgr_and_netl_round_trips() {
    let mut rng = StdRng::seed_from_u64(78);
    let h = rent_circuit(
        RentParams {
            nodes: 90,
            primary_inputs: 6,
            ..RentParams::default()
        },
        &mut rng,
    );

    // hgr: bit-exact.
    let back = hgr::from_str(&hgr::to_string(&h)).unwrap();
    assert_eq!(h, back);

    // netl: attach names, round-trip, compare structure.
    let named = netl::NamedNetlist {
        hypergraph: h.clone(),
        node_names: (0..h.num_nodes()).map(|v| format!("g{v}")).collect(),
        net_names: (0..h.num_nets()).map(|e| format!("n{e}")).collect(),
    };
    let mut buf = Vec::new();
    netl::write(&named, &mut buf).unwrap();
    let reloaded = netl::read(&buf[..]).unwrap();
    assert_eq!(reloaded.hypergraph, h);
    assert_eq!(reloaded.node_names[3], "g3");
}

#[test]
fn renders_are_consistent_with_structure() {
    let mut rng = StdRng::seed_from_u64(79);
    let h = rent_circuit(
        RentParams {
            nodes: 40,
            primary_inputs: 4,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.3, 1.0).unwrap();
    let result = FlowPartitioner::try_new(PartitionerParams::default())
        .unwrap()
        .run(&h, &spec, &mut rng)
        .unwrap();
    let sizes: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
    let text = result.partition.render(&sizes);
    assert_eq!(text.lines().count(), result.partition.num_vertices());
    assert!(text.contains(&format!("size {}", h.total_size())), "{text}");
    // Every node is reachable through some rendered leaf.
    let leaf = result.partition.leaf_of(NodeId(0));
    assert!(text.contains(&leaf.to_string()));
}
