//! Cross-crate property tests: invariants that must hold for arbitrary
//! generated workloads.

use htp::baselines::hfm::{improve, HfmParams};
use htp::core::constraint::{check_feasibility, find_violation, find_violation_weighted};
use htp::core::construct::construct_partition;
use htp::core::injector::{compute_spreading_metric, FlowParams};
use htp::core::SpreadingMetric;
use htp::model::{cost, validate, HierarchicalPartition, TreeSpec};
use htp::netlist::gen::random::{random_hypergraph, RandomParams};
use htp::netlist::io::hgr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_instance(seed: u64) -> htp::netlist::Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_hypergraph(
        RandomParams {
            nodes: 24,
            nets: 40,
            min_net_size: 2,
            max_net_size: 4,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated netlists survive an hgr round-trip bit-for-bit.
    #[test]
    fn hgr_round_trip(seed in 0u64..500) {
        let h = small_instance(seed);
        let text = hgr::to_string(&h);
        let back = hgr::from_str(&text).unwrap();
        prop_assert_eq!(h, back);
    }

    /// Algorithm 2 always converges to a (P1)-feasible metric on feasible
    /// unit-size instances.
    #[test]
    fn injector_always_converges_feasibly(seed in 0u64..60) {
        let h = small_instance(seed);
        let spec = TreeSpec::new(vec![(5, 2, 1.0), (10, 2, 1.0), (24, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let (metric, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        prop_assert!(stats.converged);
        let report = check_feasibility(&h, &spec, &metric, 1e-6);
        prop_assert!(report.feasible, "shortfall {}", report.worst_shortfall);
    }

    /// Algorithm 3 always yields a spec-valid partition, whatever the
    /// metric.
    #[test]
    fn construction_is_always_valid(seed in 0u64..60, scale in 0.0f64..5.0) {
        let h = small_instance(seed);
        // Feasible by construction: C_l <= K·C_{l-1} at every level.
        let spec = TreeSpec::new(vec![(7, 2, 1.0), (13, 2, 1.0), (25, 2, 1.0)]).unwrap();
        let lengths: Vec<f64> = (0..h.num_nets()).map(|e| scale * (e % 7) as f64).collect();
        let metric = SpreadingMetric::from_lengths(lengths);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = construct_partition(&h, &spec, &metric, &mut rng).unwrap();
        prop_assert!(validate::validate(&h, &spec, &p).is_ok());
    }

    /// The FM post-pass never increases cost and never breaks feasibility.
    #[test]
    fn improvement_is_monotone(seed in 0u64..60) {
        let h = small_instance(seed);
        let spec = TreeSpec::new(vec![(6, 2, 1.0), (13, 2, 2.0), (24, 2, 1.0)]).unwrap();
        // Start from a deliberately arbitrary assignment over 4 leaves.
        let assignment: Vec<usize> = (0..h.num_nodes()).map(|v| v % 4).collect();
        let p = HierarchicalPartition::full_kary(2, 2, &assignment).unwrap();
        prop_assume!(validate::validate(&h, &spec, &p).is_ok());
        let r = improve(&h, &spec, &p, HfmParams::default()).unwrap();
        prop_assert!(r.cost_after <= r.cost_before + 1e-9);
        prop_assert!(validate::validate(&h, &spec, &r.partition).is_ok());
        prop_assert!((cost::partition_cost(&h, &spec, &r.partition) - r.cost_after).abs() < 1e-9);
    }

    /// On unit-size netlists the weighted prefix order `(dist+1)·s(u)`
    /// degenerates to plain distance order, so the two violation oracles
    /// must agree: same verdict and, because any two distance-sorted
    /// enumerations share the distance multiset at every prefix length,
    /// identical size/lhs/bound at the first violating prefix.
    #[test]
    fn violation_oracles_agree_on_unit_sizes(seed in 0u64..40, scale in 0.0f64..3.0) {
        let h = small_instance(seed);
        let spec = TreeSpec::new(vec![(5, 2, 1.0), (10, 2, 1.0), (24, 2, 1.0)]).unwrap();
        let lengths: Vec<f64> =
            (0..h.num_nets()).map(|e| scale * ((e % 5) as f64) * 0.25).collect();
        let metric = SpreadingMetric::from_lengths(lengths);
        for v in h.nodes() {
            let a = find_violation(&h, &spec, &metric, v, 1e-9);
            let b = find_violation_weighted(&h, &spec, &metric, v, 1e-9);
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.size, y.size, "source {}", v);
                    prop_assert_eq!(x.bound, y.bound, "source {}", v);
                    prop_assert!(
                        (x.lhs - y.lhs).abs() <= 1e-9 * x.lhs.max(1.0),
                        "source {}: lhs {} vs {}", v, x.lhs, y.lhs
                    );
                }
                (None, None) => {}
                _ => prop_assert!(
                    false,
                    "source {}: oracles disagree ({} vs {})",
                    v, a.is_some(), b.is_some()
                ),
            }
        }
    }

    /// Lemma 1 across the whole stack: any valid partition produced by the
    /// real constructor induces a feasible metric with matching objective.
    #[test]
    fn lemma1_for_constructed_partitions(seed in 0u64..40) {
        let h = small_instance(seed);
        let spec = TreeSpec::new(vec![(7, 2, 1.0), (13, 2, 1.5), (25, 2, 1.0)]).unwrap();
        let metric = SpreadingMetric::from_lengths(vec![1.0; h.num_nets()]);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = construct_partition(&h, &spec, &metric, &mut rng).unwrap();
        prop_assume!(validate::validate(&h, &spec, &p).is_ok());
        let induced = SpreadingMetric::from_partition(&h, &spec, &p);
        let report = check_feasibility(&h, &spec, &induced, 1e-9);
        prop_assert!(report.feasible, "Lemma 1 violated: {}", report.worst_shortfall);
        prop_assert!(
            (induced.objective(&h) - cost::partition_cost(&h, &spec, &p)).abs() < 1e-9
        );
    }
}
