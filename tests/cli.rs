//! Integration tests for the `htp` command-line tool, driving the real
//! binary through its public interface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn htp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_htp"))
        .args(args)
        .output()
        .expect("the htp binary runs")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("htp-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = htp(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_command_is_rejected() {
    let out = htp(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stats_partition_pipeline() {
    let netlist = tmp_path("pipeline.hgr");
    let assignment = tmp_path("pipeline.assign");
    let tree = tmp_path("pipeline.tree");

    // gen: a small Rent circuit.
    let out = htp(&[
        "gen",
        "rent:96",
        "--seed",
        "5",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stats: reports the triple.
    let out = htp(&["stats", netlist.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("96 nodes"), "{text}");

    // partition: writes one assignment line per node plus a partition tree.
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--algo",
        "flow",
        "--height",
        "2",
        "--slack",
        "1.3",
        "--seed",
        "3",
        "--improve",
        "--out",
        assignment.to_str().unwrap(),
        "--partition-out",
        tree.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cost"), "{stderr}");

    let lines: Vec<String> = std::fs::read_to_string(&assignment)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 96);
    for line in &lines {
        let mut f = line.split_whitespace();
        let _node: usize = f.next().unwrap().parse().unwrap();
        let leaf: usize = f.next().unwrap().parse().unwrap();
        assert!(leaf < 4, "height-2 binary tree has at most 4 leaves");
    }

    // The saved tree parses back through the model layer.
    let text = std::fs::read_to_string(&tree).unwrap();
    let p = htp::model::io::from_str(&text).unwrap();
    assert_eq!(p.num_nodes(), 96);
    assert_eq!(p.root_level(), 2);

    for path in [netlist, assignment, tree] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn partition_all_algorithms_agree_on_format() {
    let netlist = tmp_path("algos.hgr");
    let out = htp(&[
        "gen",
        "rent:64",
        "--seed",
        "9",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    for algo in ["flow", "gfm", "rfm"] {
        let out = htp(&[
            "partition",
            netlist.to_str().unwrap(),
            "--algo",
            algo,
            "--height",
            "2",
            "--slack",
            "1.4",
        ]);
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(stdout.lines().count(), 64, "{algo}");
    }
    let _ = std::fs::remove_file(netlist);
}

#[test]
fn bound_runs_on_tiny_instances() {
    let netlist = tmp_path("bound.hgr");
    std::fs::write(&netlist, "3 4\n1 2\n2 3\n3 4\n").unwrap();
    let out = htp(&[
        "bound",
        netlist.to_str().unwrap(),
        "--height",
        "1",
        "--arity",
        "2",
        "--slack",
        "1.0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lower bound"), "{text}");
    let _ = std::fs::remove_file(netlist);
}

#[test]
fn verilog_input_is_recognized_by_extension() {
    let netlist = tmp_path("c17.v");
    std::fs::write(
        &netlist,
        "module c17 (N1, N2, N3, N6, N7, N22, N23);\n\
         input N1, N2, N3, N6, N7;\noutput N22, N23;\nwire N10, N11, N16, N19;\n\
         nand g0 (N10, N1, N3);\nnand g1 (N11, N3, N6);\nnand g2 (N16, N2, N11);\n\
         nand g3 (N19, N11, N7);\nnand g4 (N22, N10, N16);\nnand g5 (N23, N16, N19);\n\
         endmodule\n",
    )
    .unwrap();
    let out = htp(&["stats", netlist.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("11 nodes"));
    let _ = std::fs::remove_file(netlist);
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = htp(&["stats", "/nonexistent/nowhere.hgr"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn timeout_emits_partial_result_with_exit_code_3() {
    let netlist = tmp_path("timeout.hgr");
    let assignment = tmp_path("timeout.assign");
    let out = htp(&[
        "gen",
        "rent:600",
        "--seed",
        "5",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // A deadline far below the full runtime: the run must still emit a
    // complete, valid assignment and flag the partial result via exit 3.
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--algo",
        "flow",
        "--height",
        "2",
        "--slack",
        "1.3",
        "--seed",
        "3",
        "--timeout-ms",
        "20",
        "--out",
        assignment.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    assert!(
        stderr.contains("deadline-exceeded") || stderr.contains("degraded"),
        "{stderr}"
    );
    assert!(stderr.contains("best found so far"), "{stderr}");

    let lines = std::fs::read_to_string(&assignment).unwrap();
    assert_eq!(
        lines.lines().count(),
        600,
        "partial result covers every node"
    );

    for path in [netlist, assignment] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn max_rounds_cap_also_exits_with_code_3() {
    let netlist = tmp_path("rounds.hgr");
    let out = htp(&[
        "gen",
        "rent:128",
        "--seed",
        "7",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--height",
        "2",
        "--slack",
        "1.3",
        "--max-rounds",
        "1",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    assert!(stderr.contains("degraded"), "{stderr}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 128);
    let _ = std::fs::remove_file(netlist);
}

#[test]
fn budget_flags_are_rejected_for_non_flow_algorithms() {
    let netlist = tmp_path("budget-algo.hgr");
    std::fs::write(&netlist, "3 4\n1 2\n2 3\n3 4\n").unwrap();
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--algo",
        "gfm",
        "--height",
        "1",
        "--slack",
        "1.5",
        "--timeout-ms",
        "100",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not"));
    let _ = std::fs::remove_file(netlist);
}

/// Sets up a tiny netlist + partition on disk and returns the three file
/// paths (netlist, assignment, tree) for `verify` tests to use.
fn verified_pipeline(name: &str) -> (PathBuf, PathBuf, PathBuf) {
    let netlist = tmp_path(&format!("{name}.hgr"));
    let assignment = tmp_path(&format!("{name}.assign"));
    let tree = tmp_path(&format!("{name}.tree"));
    let out = htp(&[
        "gen",
        "rent:48",
        "--seed",
        "21",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--height",
        "2",
        "--slack",
        "1.3",
        "--seed",
        "3",
        "--out",
        assignment.to_str().unwrap(),
        "--partition-out",
        tree.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (netlist, assignment, tree)
}

#[test]
fn verify_certifies_a_partition_round_trip() {
    let (netlist, assignment, tree) = verified_pipeline("verify-ok");
    let out = htp(&[
        "verify",
        netlist.to_str().unwrap(),
        assignment.to_str().unwrap(),
        "--tree",
        tree.to_str().unwrap(),
        "--height",
        "2",
        "--slack",
        "1.3",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("certified valid"),
        "{stderr}"
    );
    for path in [netlist, assignment, tree] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn verify_rejects_a_truncated_assignment_with_exit_2() {
    let (netlist, assignment, tree) = verified_pipeline("verify-trunc");
    // Drop the last line: the assignment no longer covers every node.
    let text = std::fs::read_to_string(&assignment).unwrap();
    let truncated: Vec<&str> = text.lines().take(47).collect();
    std::fs::write(&assignment, truncated.join("\n")).unwrap();

    let out = htp(&[
        "verify",
        netlist.to_str().unwrap(),
        assignment.to_str().unwrap(),
        "--tree",
        tree.to_str().unwrap(),
        "--height",
        "2",
        "--slack",
        "1.3",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("unassigned"), "{stderr}");
    for path in [netlist, assignment, tree] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn verify_rejects_out_of_range_and_duplicate_assignments_with_exit_2() {
    let (netlist, assignment, tree) = verified_pipeline("verify-range");
    let original = std::fs::read_to_string(&assignment).unwrap();

    // An out-of-range leaf index (height-2 binary tree has 4 leaves).
    let mut lines: Vec<String> = original.lines().map(str::to_owned).collect();
    lines[0] = "0 99".to_owned();
    std::fs::write(&assignment, lines.join("\n")).unwrap();
    let out = htp(&[
        "verify",
        netlist.to_str().unwrap(),
        assignment.to_str().unwrap(),
        "--tree",
        tree.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("leaf"), "{stderr}");

    // A node listed twice.
    let mut lines: Vec<String> = original.lines().map(str::to_owned).collect();
    lines[1] = lines[0].clone();
    std::fs::write(&assignment, lines.join("\n")).unwrap();
    let out = htp(&[
        "verify",
        netlist.to_str().unwrap(),
        assignment.to_str().unwrap(),
        "--tree",
        tree.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(
        stderr.contains("twice") || stderr.contains("duplicate"),
        "{stderr}"
    );

    // Outright garbage never panics.
    std::fs::write(&assignment, "this is not\nan assignment file\n").unwrap();
    let out = htp(&[
        "verify",
        netlist.to_str().unwrap(),
        assignment.to_str().unwrap(),
        "--tree",
        tree.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("error:"), "{stderr}");

    for path in [netlist, assignment, tree] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn verify_reports_capacity_violations_with_exit_1() {
    let netlist = tmp_path("verify-violation.hgr");
    let assignment = tmp_path("verify-violation.assign");
    std::fs::write(&netlist, "3 4\n1 2\n2 3\n3 4\n").unwrap();
    // All four nodes crammed into leaf 0 of a height-1 binary tree with
    // capacity 2: total and in-range, but over capacity.
    std::fs::write(&assignment, "0 0\n1 0\n2 0\n3 0\n").unwrap();
    let out = htp(&[
        "verify",
        netlist.to_str().unwrap(),
        assignment.to_str().unwrap(),
        "--height",
        "1",
        "--slack",
        "1.0",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    assert!(stderr.contains("violation"), "{stderr}");
    assert!(stderr.contains("> C_"), "{stderr}");
    for path in [netlist, assignment] {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(unix)]
#[test]
fn sigint_cancels_cooperatively_and_emits_the_partial_result() {
    let netlist = tmp_path("sigint.hgr");
    let assignment = tmp_path("sigint.assign");
    let out = htp(&[
        "gen",
        "rent:2000",
        "--seed",
        "11",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Start a run that would take many seconds, interrupt it almost
    // immediately, and expect a cooperative shutdown with salvage.
    let child = Command::new(env!("CARGO_BIN_EXE_htp"))
        .args([
            "partition",
            netlist.to_str().unwrap(),
            "--height",
            "2",
            "--slack",
            "1.3",
            "--out",
            assignment.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("the htp binary runs");
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());

    let out = child.wait_with_output().expect("child exits");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    assert!(stderr.contains("cancelled"), "{stderr}");

    let lines = std::fs::read_to_string(&assignment).unwrap();
    assert_eq!(lines.lines().count(), 2000);

    for path in [netlist, assignment] {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(unix)]
#[test]
fn sigterm_cancels_cooperatively_like_sigint() {
    let netlist = tmp_path("sigterm.hgr");
    let assignment = tmp_path("sigterm.assign");
    let out = htp(&[
        "gen",
        "rent:2000",
        "--seed",
        "12",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Supervisors send SIGTERM where terminals send SIGINT; the CLI
    // treats them identically: cooperative cancel, salvage, exit 3.
    let child = Command::new(env!("CARGO_BIN_EXE_htp"))
        .args([
            "partition",
            netlist.to_str().unwrap(),
            "--height",
            "2",
            "--slack",
            "1.3",
            "--out",
            assignment.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("the htp binary runs");
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());

    let out = child.wait_with_output().expect("child exits");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    assert!(stderr.contains("cancelled"), "{stderr}");

    let lines = std::fs::read_to_string(&assignment).unwrap();
    assert_eq!(lines.lines().count(), 2000);
    for path in [netlist, assignment] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn submit_without_a_server_says_so_with_exit_4() {
    // Port 1 is reserved and never carries an htp daemon: the CLI must
    // explain the situation instead of dumping a raw io error + usage.
    let out = htp(&["submit", "127.0.0.1:1", "--ping"]);
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no server appears to be running"),
        "{stderr}"
    );
    assert!(stderr.contains("htp serve"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
}

#[test]
fn warm_start_round_trips_through_a_saved_state_file() {
    let netlist = tmp_path("warm.hgr");
    let state = tmp_path("warm.state.json");
    let out = htp(&[
        "gen",
        "rent:96",
        "--seed",
        "31",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // First run saves the ECO state (netlist + converged lengths + tree).
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--height",
        "2",
        "--slack",
        "1.3",
        "--seed",
        "3",
        "--save-state",
        state.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(stderr.contains("wrote ECO state"), "{stderr}");
    assert!(state.exists());

    // Resubmitting against the saved state takes the incremental path
    // (the route report names the state file) and still emits a full,
    // well-formed assignment.
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--height",
        "2",
        "--slack",
        "1.3",
        "--seed",
        "3",
        "--warm-start",
        state.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(stderr.contains("warm start from"), "{stderr}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 96);

    // The hint is rejected off the flat flow route rather than ignored.
    let out = htp(&[
        "partition",
        netlist.to_str().unwrap(),
        "--algo",
        "gfm",
        "--height",
        "2",
        "--slack",
        "1.3",
        "--warm-start",
        state.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--warm-start requires"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for path in [netlist, state] {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(unix)]
#[test]
fn serve_submit_round_trip_drains_cleanly_on_sigterm() {
    use std::io::{BufRead, BufReader, Read};

    let netlist = tmp_path("serve.hgr");
    let out = htp(&[
        "gen",
        "rent:240",
        "--seed",
        "13",
        "--out",
        netlist.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Port 0 lets the OS pick; the server prints the bound address.
    let mut child = Command::new(env!("CARGO_BIN_EXE_htp"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("the htp binary runs");
    let mut reader = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_owned();

    let out = htp(&["submit", &addr, "--ping"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("pong"));

    let job = [
        "submit",
        &addr,
        netlist.to_str().unwrap(),
        "--height",
        "3",
        "--seed",
        "5",
    ];
    let out = htp(&job);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("outcome complete"), "{stdout}");
    assert!(stdout.contains("certified true"), "{stdout}");
    assert!(stdout.contains("cached false"), "{stdout}");

    // The identical job is served from the certified cache.
    let out = htp(&job);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("cached true"), "{stdout}");

    let out = htp(&["submit", &addr, "--stats"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("cache_hits 1"), "{stdout}");
    assert!(stdout.contains("accepted 1"), "{stdout}");

    // SIGTERM drains gracefully: all jobs answered, exit 0.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(0), "a clean drain exits 0");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read drain log");
    assert!(rest.contains("drained:"), "{rest}");
    let _ = std::fs::remove_file(netlist);
}
