//! Shape checks for the paper's Table 2 narrative, at reduced scale so the
//! suite stays fast:
//!
//! * on clustered random logic (the c2670/c7552 structure class), FLOW
//!   beats the local RFM construction;
//! * on a regular multiplier array (the c6288 class), FLOW loses its edge —
//!   the paper's one negative result.

use htp::baselines::rfm::{rfm_partition, RfmParams};
use htp::core::partitioner::{FlowPartitioner, PartitionerParams};
use htp::model::{cost, TreeSpec};
use htp::netlist::gen::grid::{grid_array, GridParams};
use htp::netlist::gen::rent::{rent_circuit, RentParams};
use htp::netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn best_rfm(h: &Hypergraph, spec: &TreeSpec, restarts: u64) -> f64 {
    (0..restarts)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(1000 + s);
            let p = rfm_partition(h, spec, RfmParams::default(), &mut rng).unwrap();
            cost::partition_cost(h, spec, &p)
        })
        .fold(f64::INFINITY, f64::min)
}

fn flow_cost(h: &Hypergraph, spec: &TreeSpec) -> f64 {
    let mut rng = StdRng::seed_from_u64(2000);
    FlowPartitioner::try_new(PartitionerParams {
        iterations: 3,
        constructions_per_metric: 4,
        ..PartitionerParams::default()
    })
    .unwrap()
    .run(h, spec, &mut rng)
    .unwrap()
    .cost
}

#[test]
fn flow_wins_on_clustered_random_logic() {
    let mut rng = StdRng::seed_from_u64(55);
    let h = rent_circuit(
        RentParams {
            nodes: 512,
            primary_inputs: 32,
            locality: 0.82,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), 4, 2, 1.10, 1.0).unwrap();
    let flow = flow_cost(&h, &spec);
    let rfm = best_rfm(&h, &spec, 4);
    assert!(
        flow < rfm,
        "paper shape: FLOW should beat RFM on clustered logic ({flow} vs {rfm})"
    );
}

#[test]
fn flow_loses_its_edge_on_the_regular_array() {
    let h = grid_array(GridParams {
        rows: 20,
        cols: 20,
        operand_drivers: 8,
    });
    let spec = TreeSpec::full_tree(h.total_size(), 4, 2, 1.10, 1.0).unwrap();
    let flow = flow_cost(&h, &spec);
    let rfm = best_rfm(&h, &spec, 4);
    assert!(
        flow > 0.9 * rfm,
        "paper shape: on the c6288-like mesh FLOW has no real advantage \
         ({flow} vs {rfm})"
    );
}
