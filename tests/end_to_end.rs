//! End-to-end integration: all three constructive algorithms plus the FM
//! post-pass on a realistic Rent-style netlist, cross-checked for
//! feasibility and cost accounting.

use htp::baselines::gfm::{gfm_partition, GfmParams};
use htp::baselines::hfm::{improve, HfmParams};
use htp::baselines::rfm::{rfm_partition, RfmParams};
use htp::core::partitioner::{FlowPartitioner, PartitionerParams};
use htp::model::{cost, validate, TreeSpec};
use htp::netlist::gen::rent::{rent_circuit, RentParams};
use htp::netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> (Hypergraph, TreeSpec) {
    let mut rng = StdRng::seed_from_u64(99);
    let h = rent_circuit(
        RentParams {
            nodes: 400,
            primary_inputs: 24,
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.15, 1.0).unwrap();
    (h, spec)
}

#[test]
fn all_algorithms_produce_valid_partitions_with_consistent_costs() {
    let (h, spec) = workload();
    let mut rng = StdRng::seed_from_u64(5);

    let gfm = gfm_partition(&h, &spec, GfmParams::default(), &mut rng).unwrap();
    let rfm = rfm_partition(&h, &spec, RfmParams::default(), &mut rng).unwrap();
    let flow = FlowPartitioner::try_new(PartitionerParams::default())
        .unwrap()
        .run(&h, &spec, &mut rng)
        .unwrap();

    for (name, p) in [("gfm", &gfm), ("rfm", &rfm), ("flow", &flow.partition)] {
        validate::validate(&h, &spec, p).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Total cost must equal the per-net decomposition.
        let total = cost::partition_cost(&h, &spec, p);
        let by_net: f64 = h.nets().map(|e| cost::net_cost(&h, &spec, p, e)).sum();
        assert!((total - by_net).abs() < 1e-9, "{name}: {total} vs {by_net}");
        // And the per-level breakdown must sum to the total.
        let bd = cost::cost_breakdown(&h, &spec, p);
        assert!((bd.per_level.iter().sum::<f64>() - total).abs() < 1e-9);
    }
    assert!((flow.cost - cost::partition_cost(&h, &spec, &flow.partition)).abs() < 1e-9);
}

#[test]
fn fm_post_pass_never_hurts_and_outputs_stay_valid() {
    let (h, spec) = workload();
    let mut rng = StdRng::seed_from_u64(6);

    let constructive: Vec<(&str, htp::model::HierarchicalPartition)> = vec![
        (
            "gfm",
            gfm_partition(&h, &spec, GfmParams::default(), &mut rng).unwrap(),
        ),
        (
            "rfm",
            rfm_partition(&h, &spec, RfmParams::default(), &mut rng).unwrap(),
        ),
    ];
    for (name, p) in constructive {
        let r = improve(&h, &spec, &p, HfmParams::default()).unwrap();
        assert!(
            r.cost_after <= r.cost_before + 1e-9,
            "{name}: {} -> {}",
            r.cost_before,
            r.cost_after
        );
        validate::validate(&h, &spec, &r.partition).unwrap();
        assert!(
            (cost::partition_cost(&h, &spec, &r.partition) - r.cost_after).abs() < 1e-9,
            "{name}: reported cost must match the returned partition"
        );
    }
}

#[test]
fn flow_beats_random_assignment_by_a_wide_margin() {
    let (h, spec) = workload();
    let mut rng = StdRng::seed_from_u64(7);
    let flow = FlowPartitioner::try_new(PartitionerParams::default())
        .unwrap()
        .run(&h, &spec, &mut rng)
        .unwrap();

    // A round-robin assignment into the 8 leaves is the "no structure"
    // strawman; FLOW should do far better on a clustered circuit.
    let leaves = 8;
    let assignment: Vec<usize> = (0..h.num_nodes()).map(|v| v % leaves).collect();
    let random = htp::model::HierarchicalPartition::full_kary(3, 2, &assignment).unwrap();
    validate::validate(&h, &spec, &random).unwrap();
    let random_cost = cost::partition_cost(&h, &spec, &random);
    assert!(
        flow.cost * 1.5 < random_cost,
        "flow {} vs round-robin {}",
        flow.cost,
        random_cost
    );
}

#[test]
fn pipeline_is_deterministic_under_fixed_seeds() {
    let (h, spec) = workload();
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let flow = FlowPartitioner::try_new(PartitionerParams {
            iterations: 2,
            constructions_per_metric: 2,
            ..PartitionerParams::default()
        })
        .unwrap()
        .run(&h, &spec, &mut rng)
        .unwrap();
        let plus = improve(&h, &spec, &flow.partition, HfmParams::default()).unwrap();
        (flow.cost, plus.cost_after, plus.partition)
    };
    let (c1, a1, p1) = run(11);
    let (c2, a2, p2) = run(11);
    assert_eq!(c1, c2);
    assert_eq!(a1, a2);
    assert_eq!(p1, p2);
    let (c3, _, _) = run(12);
    // Different seeds will usually differ (not asserted strictly, but the
    // costs should at least be in the same ballpark).
    assert!(c3 > 0.0);
}
