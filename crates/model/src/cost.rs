//! The HTP objective: per-net spans and the weighted interconnection cost.
//!
//! For a net `e` and level `l`, `span(e, l)` is 0 when all pins share one
//! level-`l` block and the number of spanned blocks otherwise (Section 2.1
//! of the paper). The total cost of a partition is
//! `Σ_e Σ_{0 <= l < L} w_l · span(e, l) · c(e)`.

use htp_netlist::{Hypergraph, NetId};

use crate::{HierarchicalPartition, TreeSpec};

/// Number of distinct level-`l` blocks touched by net `e`, mapped to 0 when
/// the net is uncut at that level (the paper's `span(e, l)`).
pub fn span(h: &Hypergraph, p: &HierarchicalPartition, e: NetId, l: usize) -> usize {
    let mut blocks: Vec<u32> = h.net_pins(e).iter().map(|&v| p.block_at(v, l).0).collect();
    blocks.sort_unstable();
    blocks.dedup();
    if blocks.len() <= 1 {
        0
    } else {
        blocks.len()
    }
}

/// The spans of net `e` at every level `0..root_level` (root excluded —
/// everything shares the root, so its span is always 0).
pub fn net_spans(h: &Hypergraph, p: &HierarchicalPartition, e: NetId) -> Vec<usize> {
    (0..p.root_level()).map(|l| span(h, p, e, l)).collect()
}

/// Total interconnection cost of net `e` under spec weights:
/// `Σ_{0 <= l < L} w_l · span(e, l) · c(e)`.
pub fn net_cost(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition, e: NetId) -> f64 {
    let c = h.net_capacity(e);
    net_spans(h, p, e)
        .iter()
        .enumerate()
        .map(|(l, &s)| spec.weight(l) * s as f64 * c)
        .sum()
}

/// Per-level breakdown of a partition's cost.
#[derive(Clone, Debug, PartialEq)]
pub struct CostBreakdown {
    /// `per_level[l]` is `Σ_e w_l · span(e, l) · c(e)`.
    pub per_level: Vec<f64>,
    /// Sum of the per-level costs.
    pub total: f64,
}

/// Computes the full cost breakdown of a partition.
///
/// Uses the partition's [`block_matrix`](HierarchicalPartition::block_matrix)
/// so each net's pins are resolved with array lookups rather than tree
/// walks.
///
/// # Panics
///
/// Panics if the hypergraph and partition disagree on the node count, or if
/// the partition's height exceeds the spec's.
pub fn cost_breakdown(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> CostBreakdown {
    assert_eq!(h.num_nodes(), p.num_nodes(), "node count mismatch");
    assert!(
        p.root_level() <= spec.root_level(),
        "partition height {} exceeds spec height {}",
        p.root_level(),
        spec.root_level()
    );
    let matrix = p.block_matrix();
    let levels = p.root_level();
    let mut per_level = vec![0.0; levels];
    let mut scratch: Vec<u32> = Vec::new();
    for e in h.nets() {
        let c = h.net_capacity(e);
        for (l, acc) in per_level.iter_mut().enumerate() {
            let row = &matrix[l];
            scratch.clear();
            scratch.extend(h.net_pins(e).iter().map(|&v| row[v.index()]));
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() > 1 {
                *acc += spec.weight(l) * scratch.len() as f64 * c;
            }
        }
    }
    let total = per_level.iter().sum();
    CostBreakdown { per_level, total }
}

/// Total partition cost `Σ_e cost(e)`.
///
/// # Panics
///
/// Same as [`cost_breakdown`].
pub fn partition_cost(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> f64 {
    cost_breakdown(h, spec, p).total
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::{HypergraphBuilder, NodeId};

    /// 4 nodes on a path; leaves {0,1} and {2,3} under a 2-level root.
    fn path_fixture() -> (Hypergraph, TreeSpec, HierarchicalPartition) {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(1.0, [NodeId(1), NodeId(2)]).unwrap();
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 2.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        (h, spec, p)
    }

    #[test]
    fn span_counts_blocks_or_zero() {
        let (h, _, p) = path_fixture();
        assert_eq!(span(&h, &p, NetId(0), 0), 0, "uncut net");
        assert_eq!(span(&h, &p, NetId(1), 0), 2, "cut net");
    }

    #[test]
    fn only_the_middle_net_costs() {
        let (h, spec, p) = path_fixture();
        assert_eq!(net_cost(&h, &spec, &p, NetId(0)), 0.0);
        // span(e,0) = 2 with w_0 = 1; the root level never counts.
        assert_eq!(net_cost(&h, &spec, &p, NetId(1)), 2.0);
        assert_eq!(partition_cost(&h, &spec, &p), 2.0);
    }

    #[test]
    fn deeper_hierarchy_multiplies_cost_per_level() {
        // Same 4-node path in a height-2 binary tree, one node per leaf.
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(1), NodeId(2)]).unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(1, 2, 1.0), (2, 2, 2.0), (4, 2, 4.0)]).unwrap();
        let p = HierarchicalPartition::full_kary(2, 2, &[0, 1, 2, 3]).unwrap();
        // Net {1,2} crosses the level-1 boundary: span 2 at levels 0 and 1.
        // cost = 1*2 + 2*2 = 6 (the Figure 2 arithmetic with w_1 = 2).
        assert_eq!(net_cost(&h, &spec, &p, NetId(0)), 6.0);
        let bd = cost_breakdown(&h, &spec, &p);
        assert_eq!(bd.per_level, vec![2.0, 4.0]);
        assert_eq!(bd.total, 6.0);
    }

    #[test]
    fn multiway_span_pays_per_block() {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(2.0, [NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(1, 4, 1.0), (4, 4, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 1, 2, 3]).unwrap();
        // span = 4 blocks, capacity 2 -> cost 8.
        assert_eq!(partition_cost(&h, &spec, &p), 8.0);
    }

    #[test]
    fn breakdown_matches_per_net_sum() {
        let (h, spec, p) = path_fixture();
        let by_nets: f64 = h.nets().map(|e| net_cost(&h, &spec, &p, e)).sum();
        assert!((by_nets - partition_cost(&h, &spec, &p)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn node_count_mismatch_panics() {
        let (h, spec, _) = path_fixture();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1]).unwrap();
        let _ = partition_cost(&h, &spec, &p);
    }
}
