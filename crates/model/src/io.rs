//! Saving and loading hierarchical tree partitions.
//!
//! A small line-oriented text format:
//!
//! ```text
//! htp-partition v1
//! vertex <id> <level> <parent-id|->
//! ...
//! assign <node-index> <leaf-vertex-id>
//! ...
//! ```
//!
//! Vertices must appear parents-first (the writer emits them in id order,
//! which satisfies this because builders allocate parents before children).

use std::collections::HashMap;
use std::io::{BufRead, Write};

use htp_netlist::NodeId;

use crate::{HierarchicalPartition, ModelError, PartitionBuilder, VertexId};

const MAGIC: &str = "htp-partition v1";

/// Writes `p` in the `htp-partition v1` format.
///
/// # Errors
///
/// Returns [`ModelError::BadSpec`] wrapping the underlying I/O failure.
pub fn write<W: Write>(p: &HierarchicalPartition, mut w: W) -> Result<(), ModelError> {
    let io_err = |e: std::io::Error| ModelError::BadSpec {
        message: format!("write failed: {e}"),
    };
    writeln!(w, "{MAGIC}").map_err(io_err)?;
    for q in p.vertices() {
        let parent = match p.parent(q) {
            Some(par) => par.0.to_string(),
            None => "-".to_string(),
        };
        writeln!(w, "vertex {} {} {}", q.0, p.level(q), parent).map_err(io_err)?;
    }
    for v in 0..p.num_nodes() {
        writeln!(w, "assign {} {}", v, p.leaf_of(NodeId::new(v)).0).map_err(io_err)?;
    }
    Ok(())
}

/// Serializes `p` to a string.
pub fn to_string(p: &HierarchicalPartition) -> String {
    let mut buf = Vec::new();
    write(p, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("partition text is ASCII")
}

/// Reads a partition in the `htp-partition v1` format.
///
/// # Errors
///
/// Returns [`ModelError::BadSpec`] for malformed input (missing magic, bad
/// records, out-of-order vertices) and the usual builder errors for
/// structurally invalid trees.
pub fn read<R: BufRead>(r: R) -> Result<HierarchicalPartition, ModelError> {
    let bad = |line: usize, message: String| ModelError::BadSpec {
        message: format!("line {line}: {message}"),
    };
    let mut lines = r.lines().enumerate();
    let (_, magic) = lines
        .next()
        .ok_or_else(|| bad(1, "empty input".into()))
        .and_then(|(i, l)| l.map(|l| (i, l)).map_err(|e| bad(i + 1, e.to_string())))?;
    if magic.trim() != MAGIC {
        return Err(bad(
            1,
            format!("expected `{MAGIC}`, got `{}`", magic.trim()),
        ));
    }

    // First pass: collect records.
    struct VertexRec {
        id: u32,
        level: usize,
        parent: Option<u32>,
    }
    let mut vertices: Vec<VertexRec> = Vec::new();
    let mut assigns: Vec<(usize, u32)> = Vec::new();
    for (i, line) in lines {
        let lno = i + 1;
        let line = line.map_err(|e| bad(lno, e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["vertex", id, level, parent] => vertices.push(VertexRec {
                id: id
                    .parse()
                    .map_err(|_| bad(lno, format!("bad vertex id `{id}`")))?,
                level: level
                    .parse()
                    .map_err(|_| bad(lno, format!("bad level `{level}`")))?,
                parent: match *parent {
                    "-" => None,
                    raw => Some(
                        raw.parse()
                            .map_err(|_| bad(lno, format!("bad parent `{raw}`")))?,
                    ),
                },
            }),
            ["assign", node, leaf] => assigns.push((
                node.parse()
                    .map_err(|_| bad(lno, format!("bad node `{node}`")))?,
                leaf.parse()
                    .map_err(|_| bad(lno, format!("bad leaf `{leaf}`")))?,
            )),
            _ => return Err(bad(lno, format!("unrecognized record `{line}`"))),
        }
    }

    // Rebuild through the builder so every structural invariant is
    // re-checked. File vertex ids map to fresh builder ids.
    let root = vertices
        .iter()
        .find(|v| v.parent.is_none())
        .ok_or_else(|| ModelError::BadSpec {
            message: "no root vertex".into(),
        })?;
    if vertices.iter().filter(|v| v.parent.is_none()).count() > 1 {
        return Err(ModelError::BadSpec {
            message: "multiple root vertices".into(),
        });
    }
    let num_nodes = assigns.len();
    let mut b = PartitionBuilder::new(num_nodes, root.level);
    let mut id_map: HashMap<u32, VertexId> = HashMap::new();
    id_map.insert(root.id, b.root());
    for v in &vertices {
        let Some(parent) = v.parent else { continue };
        let parent = *id_map.get(&parent).ok_or_else(|| ModelError::BadSpec {
            message: format!("vertex {} references unknown/later parent {parent}", v.id),
        })?;
        let id = b.add_child(parent, v.level)?;
        if id_map.insert(v.id, id).is_some() {
            return Err(ModelError::BadSpec {
                message: format!("duplicate vertex id {}", v.id),
            });
        }
    }
    let mut seen = vec![false; num_nodes];
    for (node, leaf) in assigns {
        if node >= num_nodes || seen[node] {
            return Err(ModelError::BadSpec {
                message: format!("node {node} assigned twice or out of range"),
            });
        }
        seen[node] = true;
        let leaf = *id_map.get(&leaf).ok_or_else(|| ModelError::BadSpec {
            message: format!("assignment references unknown vertex {leaf}"),
        })?;
        b.assign(NodeId::new(node), leaf)?;
    }
    b.build()
}

/// Parses a partition from a string.
///
/// # Errors
///
/// See [`read`].
pub fn from_str(s: &str) -> Result<HierarchicalPartition, ModelError> {
    read(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HierarchicalPartition {
        HierarchicalPartition::full_kary(2, 2, &[0, 1, 2, 3, 0, 2]).unwrap()
    }

    #[test]
    fn round_trips() {
        let p = sample();
        let text = to_string(&p);
        let q = from_str(&text).unwrap();
        // Tree shape and assignments survive; ids are renumbered
        // consistently, so block equality is checked via co-membership.
        assert_eq!(q.num_nodes(), p.num_nodes());
        assert_eq!(q.num_vertices(), p.num_vertices());
        assert_eq!(q.root_level(), p.root_level());
        for a in 0..p.num_nodes() {
            for b in 0..p.num_nodes() {
                for l in 0..=p.root_level() {
                    let na = NodeId::new(a);
                    let nb = NodeId::new(b);
                    assert_eq!(
                        p.block_at(na, l) == p.block_at(nb, l),
                        q.block_at(na, l) == q.block_at(nb, l),
                        "nodes {a},{b} level {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_missing_magic() {
        assert!(from_str("vertex 0 1 -\n").is_err());
    }

    #[test]
    fn rejects_garbage_records() {
        let err = from_str("htp-partition v1\nfrobnicate 1 2\n").unwrap_err();
        assert!(err.to_string().contains("unrecognized record"));
    }

    #[test]
    fn rejects_double_assignment() {
        let text = "htp-partition v1\nvertex 0 1 -\nvertex 1 0 0\nassign 0 1\nassign 0 1\n";
        let err = from_str(text).unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn rejects_multiple_roots() {
        let text = "htp-partition v1\nvertex 0 1 -\nvertex 1 2 -\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn rejects_unknown_parent() {
        let text = "htp-partition v1\nvertex 0 2 -\nvertex 1 1 9\n";
        let err = from_str(text).unwrap_err();
        assert!(err.to_string().contains("unknown"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "htp-partition v1\n# a tree\n\nvertex 0 1 -\nvertex 1 0 0\nassign 0 1\n";
        let p = from_str(text).unwrap();
        assert_eq!(p.num_nodes(), 1);
    }
}
