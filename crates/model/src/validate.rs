//! Validation of a partition against a tree specification.

use htp_netlist::Hypergraph;

use crate::{HierarchicalPartition, ModelError, TreeSpec};

/// Checks that `p` is a feasible hierarchical tree partition of `h` under
/// `spec`:
///
/// * the node counts agree,
/// * the tree's height does not exceed the spec's,
/// * every vertex at level `l` holds subtree size at most `C_l`,
/// * every vertex at level `l >= 1` has at most `K_l` children.
///
/// # Errors
///
/// Returns the first violated constraint as a [`ModelError`].
pub fn validate(
    h: &Hypergraph,
    spec: &TreeSpec,
    p: &HierarchicalPartition,
) -> Result<(), ModelError> {
    if h.num_nodes() != p.num_nodes() {
        return Err(ModelError::NodeCountMismatch {
            partition: p.num_nodes(),
            hypergraph: h.num_nodes(),
        });
    }
    if p.root_level() > spec.root_level() {
        return Err(ModelError::LevelOutOfRange {
            level: p.root_level(),
            root_level: spec.root_level(),
        });
    }
    let node_sizes: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
    let sizes = p.subtree_sizes(&node_sizes);
    for q in p.vertices() {
        let level = p.level(q);
        let bound = spec.capacity(level);
        if sizes[q.index()] > bound {
            return Err(ModelError::CapacityExceeded {
                vertex: q.0,
                level,
                size: sizes[q.index()],
                bound,
            });
        }
        if level >= 1 {
            let k = spec.max_children(level);
            if p.children(q).len() > k {
                return Err(ModelError::TooManyChildren {
                    vertex: q.0,
                    level,
                    children: p.children(q).len(),
                    bound: k,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::HypergraphBuilder;

    fn four_nodes() -> Hypergraph {
        HypergraphBuilder::with_unit_nodes(4).build().unwrap()
    }

    #[test]
    fn balanced_partition_validates() {
        let h = four_nodes();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        assert!(validate(&h, &spec, &p).is_ok());
    }

    #[test]
    fn oversized_leaf_is_rejected() {
        let h = four_nodes();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 0, 1]).unwrap();
        assert!(matches!(
            validate(&h, &spec, &p),
            Err(ModelError::CapacityExceeded {
                level: 0,
                size: 3,
                bound: 2,
                ..
            })
        ));
    }

    #[test]
    fn too_many_children_is_rejected() {
        let h = four_nodes();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 1, 2, 3]).unwrap();
        assert!(matches!(
            validate(&h, &spec, &p),
            Err(ModelError::TooManyChildren {
                children: 4,
                bound: 2,
                ..
            })
        ));
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let h = four_nodes();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 1]).unwrap();
        assert!(matches!(
            validate(&h, &spec, &p),
            Err(ModelError::NodeCountMismatch { .. })
        ));
    }

    #[test]
    fn partition_taller_than_spec_is_rejected() {
        let h = four_nodes();
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::full_kary(2, 2, &[0, 1, 2, 3]).unwrap();
        assert!(matches!(
            validate(&h, &spec, &p),
            Err(ModelError::LevelOutOfRange { .. })
        ));
    }

    #[test]
    fn weighted_nodes_count_against_capacity() {
        let mut b = HypergraphBuilder::new();
        for s in [3, 1] {
            b.add_node(s);
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 1]).unwrap();
        assert!(matches!(
            validate(&h, &spec, &p),
            Err(ModelError::CapacityExceeded {
                size: 3,
                bound: 2,
                ..
            })
        ));
    }
}
