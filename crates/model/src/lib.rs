//! Problem model for hierarchical tree partitioning (HTP).
//!
//! This crate defines the *language* of the paper's problem, shared by the
//! flow-based partitioner and all baselines:
//!
//! * [`TreeSpec`] — the hierarchy parameters: per-level size bound `C_l`,
//!   branching bound `K_l`, and cost weight `w_l`.
//! * [`HierarchicalPartition`] — a rooted tree of blocks with all leaves at
//!   level 0 and every netlist node assigned to a leaf.
//! * [`cost`] — the objective `cost(e) = Σ_l w_l · span(e, l) · c(e)` and
//!   its per-level breakdown.
//! * [`gfn`] — the spreading bound `g(x)` from the linear program (P1).
//! * [`validate`] — checks a partition against a spec (`C_l`, `K_l`).
//! * [`io`] — saves/loads partitions in a small text format.
//! * [`metrics`] — per-block I/O pin demand, balance, per-level cuts.
//!
//! # Examples
//!
//! ```
//! use htp_model::{TreeSpec, HierarchicalPartition, cost};
//! use htp_netlist::{HypergraphBuilder, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two 2-node leaves under one root; a single net crossing them.
//! let mut b = HypergraphBuilder::with_unit_nodes(4);
//! b.add_net(1.0, [NodeId(1), NodeId(2)])?;
//! let h = b.build()?;
//!
//! let spec = TreeSpec::new(vec![(2, 1, 1.0), (4, 2, 1.0)])?;
//! let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1])?;
//! assert_eq!(cost::partition_cost(&h, &spec, &p), 2.0); // span 2 at level 0
//! # Ok(())
//! # }
//! ```

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod cost;
pub mod error;
pub mod gfn;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod spec;
pub mod validate;

pub use error::ModelError;
pub use partition::{HierarchicalPartition, PartitionBuilder, VertexId};
pub use spec::TreeSpec;
