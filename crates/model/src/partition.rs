//! Hierarchical tree partitions: the tree of blocks plus node assignments.

use htp_netlist::NodeId;

use crate::ModelError;

/// Index of a vertex (block) in a [`HierarchicalPartition`] tree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Creates a vertex id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the id as a `usize` suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A hierarchical tree partition `P = (T, {V_q})`.
///
/// The tree `T` is rooted; each vertex has a level, the root has the highest
/// level and every vertex that holds netlist nodes is a *leaf at level 0*
/// (as the paper requires). A child's level is strictly below its parent's
/// but need not be exactly one less — Algorithm 3 can attach a small
/// subtree whose root sits several levels down. For such level gaps, the
/// block of a node at an intermediate level `l` is its highest ancestor with
/// level `<= l` (see [`block_at`](HierarchicalPartition::block_at)).
///
/// Instances are immutable; construct them through [`PartitionBuilder`] or
/// the convenience constructors.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchicalPartition {
    parent: Vec<Option<VertexId>>,
    children: Vec<Vec<VertexId>>,
    level: Vec<u32>,
    /// Leaf vertex of each netlist node.
    leaf_of: Vec<VertexId>,
    root: VertexId,
}

impl HierarchicalPartition {
    /// A two-level partition: leaves indexed by `assignment` values directly
    /// under a root at level `root_level`. `assignment[v]` is the leaf index
    /// of node `v`; leaves are created densely up to the maximum index.
    ///
    /// With `root_level > 1` the intermediate levels simply inherit the leaf
    /// blocks, which is the natural reading of a flat multiway partition
    /// inside a deeper hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadVertex`] if `assignment` is empty or
    /// `root_level == 0`.
    pub fn from_leaf_assignment(
        root_level: usize,
        assignment: &[usize],
    ) -> Result<Self, ModelError> {
        if root_level == 0 {
            return Err(ModelError::BadVertex {
                message: "root level must be at least 1".into(),
            });
        }
        let leaves = match assignment.iter().max() {
            Some(&m) => m + 1,
            None => {
                return Err(ModelError::BadVertex {
                    message: "no nodes to assign".into(),
                })
            }
        };
        let mut b = PartitionBuilder::new(assignment.len(), root_level);
        let root = b.root();
        let leaf_ids: Vec<VertexId> = (0..leaves)
            .map(|_| b.add_child(root, 0).expect("root accepts leaves"))
            .collect();
        for (v, &leaf) in assignment.iter().enumerate() {
            b.assign(NodeId::new(v), leaf_ids[leaf])
                .expect("fresh leaf accepts nodes");
        }
        b.build()
    }

    /// A complete `k`-ary tree of the given `height` with `k^height` leaves
    /// in left-to-right order; `assignment[v]` is the leaf index of node
    /// `v`. Empty leaves are kept (they cost nothing).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadVertex`] if `height == 0`, `k < 2`, or an
    /// assignment index is out of range.
    pub fn full_kary(height: usize, k: usize, assignment: &[usize]) -> Result<Self, ModelError> {
        if height == 0 || k < 2 {
            return Err(ModelError::BadVertex {
                message: "full k-ary tree needs height >= 1 and k >= 2".into(),
            });
        }
        let num_leaves = k
            .checked_pow(height as u32)
            .ok_or_else(|| ModelError::BadVertex {
                message: "tree too large".into(),
            })?;
        let mut b = PartitionBuilder::new(assignment.len(), height);
        // Build level by level; `frontier` holds the vertices of the level
        // being expanded.
        let mut frontier = vec![b.root()];
        for depth in 1..=height {
            let level = height - depth;
            let mut next = Vec::with_capacity(frontier.len() * k);
            for &p in &frontier {
                for _ in 0..k {
                    next.push(b.add_child(p, level).expect("levels decrease by one"));
                }
            }
            frontier = next;
        }
        debug_assert_eq!(frontier.len(), num_leaves);
        for (v, &leaf) in assignment.iter().enumerate() {
            let leaf_vertex = *frontier.get(leaf).ok_or_else(|| ModelError::BadVertex {
                message: format!("leaf index {leaf} out of range 0..{num_leaves}"),
            })?;
            b.assign(NodeId::new(v), leaf_vertex)
                .expect("leaves accept nodes");
        }
        b.build()
    }

    /// Number of tree vertices.
    pub fn num_vertices(&self) -> usize {
        self.level.len()
    }

    /// Number of netlist nodes assigned.
    pub fn num_nodes(&self) -> usize {
        self.leaf_of.len()
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Level of a vertex (leaves are 0, the root is highest).
    pub fn level(&self, q: VertexId) -> usize {
        self.level[q.index()] as usize
    }

    /// The root's level, i.e. the height `L` of the hierarchy.
    pub fn root_level(&self) -> usize {
        self.level(self.root)
    }

    /// Parent of a vertex (`None` for the root).
    pub fn parent(&self, q: VertexId) -> Option<VertexId> {
        self.parent[q.index()]
    }

    /// Children of a vertex.
    pub fn children(&self, q: VertexId) -> &[VertexId] {
        &self.children[q.index()]
    }

    /// Returns `true` if `q` has no children.
    pub fn is_leaf(&self, q: VertexId) -> bool {
        self.children[q.index()].is_empty()
    }

    /// The level-0 leaf holding node `v`.
    pub fn leaf_of(&self, v: NodeId) -> VertexId {
        self.leaf_of[v.index()]
    }

    /// The block containing node `v` at level `l`: the highest ancestor of
    /// `v`'s leaf whose level is at most `l`.
    pub fn block_at(&self, v: NodeId, l: usize) -> VertexId {
        let mut cur = self.leaf_of(v);
        while let Some(p) = self.parent(cur) {
            if self.level(p) <= l {
                cur = p;
            } else {
                break;
            }
        }
        cur
    }

    /// For each level `0..=root_level`, the block of every node:
    /// `matrix[l][v.index()]` is the raw vertex index of `block_at(v, l)`.
    /// One pass over the leaf-to-root chains; used by the cost evaluator.
    pub fn block_matrix(&self) -> Vec<Vec<u32>> {
        let levels = self.root_level() + 1;
        let mut matrix = vec![vec![0u32; self.num_nodes()]; levels];
        for v in 0..self.num_nodes() {
            let node = NodeId::new(v);
            let mut cur = self.leaf_of(node);
            let mut next_parent = self.parent(cur);
            for (l, row) in matrix.iter_mut().enumerate() {
                while let Some(p) = next_parent {
                    if self.level(p) <= l {
                        cur = p;
                        next_parent = self.parent(cur);
                    } else {
                        break;
                    }
                }
                row[v] = cur.0;
            }
        }
        matrix
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone {
        (0..self.level.len() as u32).map(VertexId)
    }

    /// Vertices whose level equals `l`.
    pub fn vertices_at_level(&self, l: usize) -> Vec<VertexId> {
        self.vertices().filter(|&q| self.level(q) == l).collect()
    }

    /// The level-0 leaves in id order.
    pub fn leaves(&self) -> Vec<VertexId> {
        self.vertices().filter(|&q| self.level(q) == 0).collect()
    }

    /// The level-0 leaves in canonical left-to-right tree order: a
    /// depth-first walk from the root following each vertex's children
    /// in order, so siblings occupy consecutive positions and every
    /// subtree owns one contiguous block of ranks.
    ///
    /// This is the order external leaf numberings must use. Vertex *ids*
    /// follow construction order, which solver backoff and salvage paths
    /// are free to permute — two partitions with identical trees can
    /// disagree on `leaves()` while agreeing here. Dense ranks emitted in
    /// this order reconstruct an isomorphic tree through
    /// [`HierarchicalPartition::full_kary`], so recomputed interior-level
    /// costs match the original.
    pub fn leaves_in_order(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(q) = stack.pop() {
            if self.is_leaf(q) {
                out.push(q);
            } else {
                stack.extend(self.children(q).iter().rev().copied());
            }
        }
        out
    }

    /// Nodes assigned to each vertex's subtree: `sizes[q.index()]` is the
    /// total `node_sizes` mass under `q`.
    ///
    /// # Panics
    ///
    /// Panics if `node_sizes.len()` differs from the assigned node count.
    pub fn subtree_sizes(&self, node_sizes: &[u64]) -> Vec<u64> {
        assert_eq!(node_sizes.len(), self.num_nodes(), "node count mismatch");
        let mut sizes = vec![0u64; self.num_vertices()];
        for (v, &s) in node_sizes.iter().enumerate() {
            let mut cur = self.leaf_of(NodeId::new(v));
            sizes[cur.index()] += s;
            while let Some(p) = self.parent(cur) {
                sizes[p.index()] += s;
                cur = p;
            }
        }
        sizes
    }

    /// A partition with the same tree but a different node assignment:
    /// `leaf_of[v.index()]` is the new leaf of node `v`. Useful for
    /// iterative-improvement passes that move nodes between existing
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotALeaf`] if some target vertex is not a
    /// level-0 leaf, or [`ModelError::BadVertex`] if one is out of range.
    pub fn with_assignment(&self, leaf_of: Vec<VertexId>) -> Result<Self, ModelError> {
        for &leaf in &leaf_of {
            if leaf.index() >= self.level.len() {
                return Err(ModelError::BadVertex {
                    message: format!("leaf {leaf} does not exist"),
                });
            }
            if self.level[leaf.index()] != 0 {
                return Err(ModelError::NotALeaf { vertex: leaf.0 });
            }
        }
        Ok(HierarchicalPartition {
            leaf_of,
            ..self.clone()
        })
    }

    /// The nodes assigned to leaf `q` (empty for internal vertices).
    pub fn nodes_in(&self, q: VertexId) -> Vec<NodeId> {
        (0..self.leaf_of.len())
            .filter(|&v| self.leaf_of[v] == q)
            .map(NodeId::new)
            .collect()
    }

    /// Renders the tree as indented ASCII, one vertex per line, with each
    /// vertex's level, node count, and total size under `node_sizes`.
    ///
    /// # Panics
    ///
    /// Panics if `node_sizes.len()` differs from the assigned node count.
    pub fn render(&self, node_sizes: &[u64]) -> String {
        let sizes = self.subtree_sizes(node_sizes);
        let mut node_count = vec![0usize; self.num_vertices()];
        for v in 0..self.leaf_of.len() {
            let mut cur = self.leaf_of[v];
            node_count[cur.index()] += 1;
            while let Some(p) = self.parent(cur) {
                node_count[p.index()] += 1;
                cur = p;
            }
        }
        let mut out = String::new();
        let mut stack = vec![(self.root, 0usize)];
        while let Some((q, depth)) = stack.pop() {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "{}{} level {} ({} nodes, size {})",
                "  ".repeat(depth),
                q,
                self.level(q),
                node_count[q.index()],
                sizes[q.index()],
            );
            for &child in self.children(q).iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }
}

/// Incremental builder for [`HierarchicalPartition`].
///
/// Start with a root at the requested level, grow the tree with
/// [`add_child`](PartitionBuilder::add_child), assign every node to a
/// level-0 leaf, then [`build`](PartitionBuilder::build).
#[derive(Clone, Debug)]
pub struct PartitionBuilder {
    parent: Vec<Option<VertexId>>,
    children: Vec<Vec<VertexId>>,
    level: Vec<u32>,
    leaf_of: Vec<Option<VertexId>>,
}

impl PartitionBuilder {
    /// Creates a builder for `num_nodes` nodes with a root at `root_level`.
    ///
    /// # Panics
    ///
    /// Panics if `root_level == 0` (the root cannot itself be a leaf unless
    /// the netlist is trivial — and then the partition is meaningless).
    pub fn new(num_nodes: usize, root_level: usize) -> Self {
        assert!(root_level >= 1, "root level must be at least 1");
        PartitionBuilder {
            parent: vec![None],
            children: vec![Vec::new()],
            level: vec![root_level as u32],
            leaf_of: vec![None; num_nodes],
        }
    }

    /// The root vertex id.
    pub fn root(&self) -> VertexId {
        VertexId(0)
    }

    /// Adds a child of `parent` at the given `level`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadVertex`] if `parent` is out of range or
    /// `level` is not strictly below the parent's level.
    pub fn add_child(&mut self, parent: VertexId, level: usize) -> Result<VertexId, ModelError> {
        if parent.index() >= self.level.len() {
            return Err(ModelError::BadVertex {
                message: format!("parent {parent} does not exist"),
            });
        }
        let parent_level = self.level[parent.index()] as usize;
        if level >= parent_level {
            return Err(ModelError::BadVertex {
                message: format!("child level {level} must be below parent level {parent_level}"),
            });
        }
        let id = VertexId::new(self.level.len());
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent.index()].push(id);
        self.level.push(level as u32);
        Ok(id)
    }

    /// Assigns node `v` to leaf `leaf` (overwriting any previous
    /// assignment).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadVertex`] if `v` or `leaf` is out of range,
    /// or [`ModelError::NotALeaf`] if `leaf` is not at level 0.
    pub fn assign(&mut self, v: NodeId, leaf: VertexId) -> Result<(), ModelError> {
        if leaf.index() >= self.level.len() {
            return Err(ModelError::BadVertex {
                message: format!("leaf {leaf} does not exist"),
            });
        }
        if self.level[leaf.index()] != 0 {
            return Err(ModelError::NotALeaf { vertex: leaf.0 });
        }
        if v.index() >= self.leaf_of.len() {
            return Err(ModelError::BadVertex {
                message: format!("node {v} out of range"),
            });
        }
        self.leaf_of[v.index()] = Some(leaf);
        Ok(())
    }

    /// Finalizes the partition.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnassignedNode`] if a node has no leaf, or
    /// [`ModelError::NotALeaf`] if a node-bearing vertex grew children.
    pub fn build(self) -> Result<HierarchicalPartition, ModelError> {
        let mut leaf_of = Vec::with_capacity(self.leaf_of.len());
        for (v, assigned) in self.leaf_of.iter().enumerate() {
            let leaf = assigned.ok_or(ModelError::UnassignedNode { node: v as u32 })?;
            if !self.children[leaf.index()].is_empty() {
                return Err(ModelError::NotALeaf { vertex: leaf.0 });
            }
            leaf_of.push(leaf);
        }
        Ok(HierarchicalPartition {
            parent: self.parent,
            children: self.children,
            level: self.level,
            leaf_of,
            root: VertexId(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_a_two_level_tree() {
        let mut b = PartitionBuilder::new(4, 1);
        let root = b.root();
        let l0 = b.add_child(root, 0).unwrap();
        let l1 = b.add_child(root, 0).unwrap();
        for v in 0..2 {
            b.assign(NodeId(v), l0).unwrap();
        }
        for v in 2..4 {
            b.assign(NodeId(v), l1).unwrap();
        }
        let p = b.build().unwrap();
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.root_level(), 1);
        assert_eq!(p.leaf_of(NodeId(0)), l0);
        assert_eq!(p.block_at(NodeId(0), 0), l0);
        assert_eq!(p.block_at(NodeId(0), 1), p.root());
        assert_eq!(p.children(root), &[l0, l1]);
        assert!(p.is_leaf(l0));
    }

    /// A height-2 binary tree whose leaf *ids* interleave across the two
    /// subtrees (creation order a0, c0, a1, c1), with node `v` assigned
    /// to `[a0, a1, c0, c1][v]`.
    fn interleaved_partition() -> (HierarchicalPartition, [VertexId; 4]) {
        let mut b = PartitionBuilder::new(4, 2);
        let root = b.root();
        let a = b.add_child(root, 1).unwrap();
        let c = b.add_child(root, 1).unwrap();
        let a0 = b.add_child(a, 0).unwrap();
        let c0 = b.add_child(c, 0).unwrap();
        let a1 = b.add_child(a, 0).unwrap();
        let c1 = b.add_child(c, 0).unwrap();
        for (v, &leaf) in [a0, a1, c0, c1].iter().enumerate() {
            b.assign(NodeId::new(v), leaf).unwrap();
        }
        (b.build().unwrap(), [a0, c0, a1, c1])
    }

    #[test]
    fn leaves_in_order_follows_the_tree_not_creation_order() {
        let (p, [a0, c0, a1, c1]) = interleaved_partition();
        assert_eq!(p.leaves(), vec![a0, c0, a1, c1]);
        assert_eq!(p.leaves_in_order(), vec![a0, a1, c0, c1]);
    }

    #[test]
    fn tree_order_ranks_reconstruct_a_cost_identical_tree() {
        use crate::{cost, TreeSpec};
        use htp_netlist::HypergraphBuilder;

        // A path through the nodes makes the interior cost sensitive to
        // which leaves share a parent.
        let mut hb = HypergraphBuilder::with_unit_nodes(4);
        hb.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        hb.add_net(1.0, [NodeId(1), NodeId(2)]).unwrap();
        hb.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        let h = hb.build().unwrap();
        let spec = TreeSpec::full_tree(4, 2, 2, 1.0, 1.0).unwrap();
        let (p, _) = interleaved_partition();
        let direct = cost::cost_breakdown(&h, &spec, &p);

        // Dense ranks the way `htp partition --out` emits them, rebuilt
        // the way `htp verify` re-prices them.
        let rank_in = |order: &[VertexId]| -> Vec<usize> {
            (0..4)
                .map(|v| {
                    let leaf = p.leaf_of(NodeId::new(v));
                    order.iter().position(|&q| q == leaf).unwrap()
                })
                .collect()
        };
        let good = rank_in(&p.leaves_in_order());
        let rebuilt = HierarchicalPartition::full_kary(2, 2, &good).unwrap();
        assert_eq!(
            cost::cost_breakdown(&h, &spec, &rebuilt).per_level,
            direct.per_level
        );

        // Creation-order ranks permute the leaves, regrouping them under
        // different parents: the reconstruction prices a different tree.
        let bad = rank_in(&p.leaves());
        let permuted = HierarchicalPartition::full_kary(2, 2, &bad).unwrap();
        assert_ne!(
            cost::cost_breakdown(&h, &spec, &permuted).per_level,
            direct.per_level
        );
    }

    #[test]
    fn unassigned_node_fails_build() {
        let mut b = PartitionBuilder::new(2, 1);
        let leaf = b.add_child(b.root(), 0).unwrap();
        b.assign(NodeId(0), leaf).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnassignedNode { node: 1 }
        );
    }

    #[test]
    fn assignment_to_internal_vertex_fails() {
        let mut b = PartitionBuilder::new(1, 2);
        let mid = b.add_child(b.root(), 1).unwrap();
        assert_eq!(
            b.assign(NodeId(0), mid).unwrap_err(),
            ModelError::NotALeaf { vertex: 1 }
        );
    }

    #[test]
    fn child_level_must_decrease() {
        let mut b = PartitionBuilder::new(1, 2);
        assert!(b.add_child(b.root(), 2).is_err());
        let mid = b.add_child(b.root(), 1).unwrap();
        assert!(b.add_child(mid, 1).is_err());
        assert!(b.add_child(mid, 0).is_ok());
    }

    #[test]
    fn level_gaps_resolve_blocks_to_lower_ancestor() {
        // root(3) -> a(1) -> leaf(0): at level 2 the block is a.
        let mut b = PartitionBuilder::new(1, 3);
        let a = b.add_child(b.root(), 1).unwrap();
        let leaf = b.add_child(a, 0).unwrap();
        b.assign(NodeId(0), leaf).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.block_at(NodeId(0), 0), leaf);
        assert_eq!(p.block_at(NodeId(0), 1), a);
        assert_eq!(p.block_at(NodeId(0), 2), a);
        assert_eq!(p.block_at(NodeId(0), 3), p.root());
        let m = p.block_matrix();
        assert_eq!(m[2][0], a.0);
        assert_eq!(m[3][0], p.root().0);
    }

    #[test]
    fn full_kary_has_complete_shape() {
        let p = HierarchicalPartition::full_kary(2, 2, &[0, 1, 2, 3]).unwrap();
        assert_eq!(p.num_vertices(), 1 + 2 + 4);
        assert_eq!(p.root_level(), 2);
        assert_eq!(p.leaves().len(), 4);
        assert_eq!(p.vertices_at_level(1).len(), 2);
        // Nodes 0 and 1 share their level-1 block; 0 and 2 do not.
        assert_eq!(p.block_at(NodeId(0), 1), p.block_at(NodeId(1), 1));
        assert_ne!(p.block_at(NodeId(0), 1), p.block_at(NodeId(2), 1));
    }

    #[test]
    fn full_kary_rejects_out_of_range_leaf() {
        assert!(HierarchicalPartition::full_kary(1, 2, &[0, 2]).is_err());
    }

    #[test]
    fn from_leaf_assignment_builds_flat_partition() {
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 1, 0, 2]).unwrap();
        assert_eq!(p.leaves().len(), 3);
        assert_eq!(p.nodes_in(p.leaf_of(NodeId(0))), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn render_shows_every_vertex_once() {
        let p = HierarchicalPartition::full_kary(2, 2, &[0, 1, 2, 3]).unwrap();
        let text = p.render(&[1, 2, 3, 4]);
        assert_eq!(text.lines().count(), p.num_vertices());
        assert!(text.contains("level 2 (4 nodes, size 10)"));
        assert!(text.starts_with("q0"));
        // Leaves are indented two levels deep.
        assert!(text.contains("    q"));
    }

    #[test]
    fn with_assignment_swaps_nodes_between_leaves() {
        let p = HierarchicalPartition::full_kary(1, 2, &[0, 0, 1, 1]).unwrap();
        let leaves = p.leaves();
        let moved = p
            .with_assignment(vec![leaves[0], leaves[1], leaves[1], leaves[1]])
            .unwrap();
        assert_eq!(moved.leaf_of(NodeId(1)), leaves[1]);
        assert_eq!(moved.root(), p.root());
        // Internal vertices are rejected as targets.
        assert!(p.with_assignment(vec![p.root(); 4]).is_err());
    }

    #[test]
    fn subtree_sizes_accumulate_upwards() {
        let p = HierarchicalPartition::full_kary(2, 2, &[0, 0, 1, 3]).unwrap();
        let sizes = p.subtree_sizes(&[1, 2, 3, 4]);
        assert_eq!(sizes[p.root().index()], 10);
        let leaf0 = p.leaf_of(NodeId(0));
        assert_eq!(sizes[leaf0.index()], 3);
        let mid = p.parent(leaf0).unwrap();
        assert_eq!(sizes[mid.index()], 6); // leaves 0 and 1 hold sizes 3 and 3
    }
}
