//! Tree hierarchy specifications: the `(C_l, K_l, w_l)` triples.

use crate::ModelError;

/// Parameters of one hierarchy level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelSpec {
    /// `C_l`: upper bound on the total node size assigned to a vertex at
    /// this level.
    pub capacity: u64,
    /// `K_l`: upper bound on the number of children of a vertex at this
    /// level. Unused at level 0 (leaves have no children).
    pub max_children: usize,
    /// `w_l`: weighting factor of the interconnection cost counted at this
    /// level. The root level's weight is irrelevant (the root always
    /// contains every node) but stored for uniformity.
    pub weight: f64,
}

/// A rooted tree hierarchy specification.
///
/// Level 0 holds the leaves; the highest level `L` (the *root level*) holds
/// the root. A vertex at level `l` may hold nodes of total size at most
/// `C_l` and have at most `K_l` children; a net spanning `f >= 2` blocks at
/// level `l` pays `w_l · f · c(e)` there.
///
/// Invariants enforced at construction: at least two levels, capacities
/// non-decreasing in the level, every capacity positive, every weight finite
/// and non-negative, every `K_l >= 2` for `l >= 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeSpec {
    levels: Vec<LevelSpec>,
}

impl TreeSpec {
    /// Builds a specification from `(capacity, max_children, weight)`
    /// triples, one per level starting at level 0.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] if any invariant fails.
    pub fn new(levels: Vec<(u64, usize, f64)>) -> Result<Self, ModelError> {
        let levels: Vec<LevelSpec> = levels
            .into_iter()
            .map(|(capacity, max_children, weight)| LevelSpec {
                capacity,
                max_children,
                weight,
            })
            .collect();
        let spec = TreeSpec { levels };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), ModelError> {
        let bad = |message: String| Err(ModelError::BadSpec { message });
        if self.levels.len() < 2 {
            return bad(format!("need at least 2 levels, got {}", self.levels.len()));
        }
        for (l, level) in self.levels.iter().enumerate() {
            if level.capacity == 0 {
                return bad(format!("C_{l} must be positive"));
            }
            if !(level.weight.is_finite() && level.weight >= 0.0) {
                return bad(format!("w_{l} must be finite and non-negative"));
            }
            if l >= 1 && level.max_children < 2 {
                return bad(format!("K_{l} must be at least 2"));
            }
            if l >= 1 && level.capacity < self.levels[l - 1].capacity {
                return bad(format!(
                    "capacities must be non-decreasing: C_{} = {} > C_{l} = {}",
                    l - 1,
                    self.levels[l - 1].capacity,
                    level.capacity
                ));
            }
        }
        Ok(())
    }

    /// Builds the hierarchy used in the paper's experiments: a full `k`-ary
    /// tree of the given `height` over a netlist of total size `total_size`,
    /// with `C_l = ceil(slack · total_size / k^(height - l))` and uniform
    /// weight `weight` at every level.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] if `height == 0`, `k < 2`,
    /// `slack < 1.0`, or the derived capacities are invalid.
    pub fn full_tree(
        total_size: u64,
        height: usize,
        k: usize,
        slack: f64,
        weight: f64,
    ) -> Result<Self, ModelError> {
        if height == 0 {
            return Err(ModelError::BadSpec {
                message: "height must be at least 1".into(),
            });
        }
        if k < 2 {
            return Err(ModelError::BadSpec {
                message: "arity must be at least 2".into(),
            });
        }
        if !(slack >= 1.0 && slack.is_finite()) {
            return Err(ModelError::BadSpec {
                message: "slack must be at least 1.0".into(),
            });
        }
        let mut levels = Vec::with_capacity(height + 1);
        for l in 0..=height {
            let denom = (k as f64).powi((height - l) as i32);
            let capacity = ((slack * total_size as f64) / denom).ceil().max(1.0) as u64;
            levels.push((capacity, k, weight));
        }
        TreeSpec::new(levels)
    }

    /// Number of levels including the leaf and root levels (`L + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The root level `L`.
    pub fn root_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// The level specs in level order.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// `C_l` for level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds the root level.
    pub fn capacity(&self, l: usize) -> u64 {
        self.levels[l].capacity
    }

    /// `K_l` for level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds the root level.
    pub fn max_children(&self, l: usize) -> usize {
        self.levels[l].max_children
    }

    /// `w_l` for level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds the root level.
    pub fn weight(&self, l: usize) -> f64 {
        self.levels[l].weight
    }

    /// The smallest level whose capacity can hold `size`, or `None` if even
    /// the root cannot (the instance is then infeasible).
    ///
    /// This is the level computation of Algorithm 3, step 2.
    pub fn level_for_size(&self, size: u64) -> Option<usize> {
        self.levels.iter().position(|l| size <= l.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_spec_round_trips() {
        // The paper's Figure 2: C_0 = 4, C_1 = 8, w_0 = 1, w_1 = 2.
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 2.0)]).unwrap();
        assert_eq!(spec.num_levels(), 2);
        assert_eq!(spec.root_level(), 1);
        assert_eq!(spec.capacity(0), 4);
        assert_eq!(spec.capacity(1), 8);
        assert_eq!(spec.weight(1), 2.0);
    }

    #[test]
    fn level_for_size_picks_the_smallest_fitting_level() {
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 1.0), (16, 2, 1.0)]).unwrap();
        assert_eq!(spec.level_for_size(1), Some(0));
        assert_eq!(spec.level_for_size(4), Some(0));
        assert_eq!(spec.level_for_size(5), Some(1));
        assert_eq!(spec.level_for_size(16), Some(2));
        assert_eq!(spec.level_for_size(17), None);
    }

    #[test]
    fn full_tree_scales_capacities_geometrically() {
        let spec = TreeSpec::full_tree(160, 4, 2, 1.1, 1.0).unwrap();
        assert_eq!(spec.num_levels(), 5);
        // ceil(1.1 * 160 / 16) = 11 at the leaves, 176 at the root.
        assert_eq!(spec.capacity(0), 11);
        assert_eq!(spec.capacity(4), 176);
        for l in 1..=4 {
            assert!(spec.capacity(l) >= spec.capacity(l - 1));
            assert_eq!(spec.max_children(l), 2);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(TreeSpec::new(vec![]).is_err());
        assert!(TreeSpec::new(vec![(4, 2, 1.0)]).is_err(), "single level");
        assert!(
            TreeSpec::new(vec![(0, 2, 1.0), (8, 2, 1.0)]).is_err(),
            "zero capacity"
        );
        assert!(
            TreeSpec::new(vec![(8, 2, 1.0), (4, 2, 1.0)]).is_err(),
            "decreasing capacity"
        );
        assert!(
            TreeSpec::new(vec![(4, 2, 1.0), (8, 1, 1.0)]).is_err(),
            "K < 2"
        );
        assert!(
            TreeSpec::new(vec![(4, 2, -1.0), (8, 2, 1.0)]).is_err(),
            "negative weight"
        );
        assert!(
            TreeSpec::new(vec![(4, 2, f64::NAN), (8, 2, 1.0)]).is_err(),
            "nan weight"
        );
    }

    #[test]
    fn rejects_bad_full_tree_parameters() {
        assert!(TreeSpec::full_tree(100, 0, 2, 1.1, 1.0).is_err());
        assert!(TreeSpec::full_tree(100, 4, 1, 1.1, 1.0).is_err());
        assert!(TreeSpec::full_tree(100, 4, 2, 0.9, 1.0).is_err());
    }
}
