//! Error type for the HTP problem model.

use std::error::Error;
use std::fmt;

/// Errors raised when building tree specifications or partitions, or when
/// validating a partition against a specification.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The specification is malformed (empty, non-monotone capacities,
    /// invalid weights or branching bounds).
    BadSpec {
        /// Description of the defect.
        message: String,
    },
    /// A tree vertex id was out of range or used in the wrong role.
    BadVertex {
        /// Description of the defect.
        message: String,
    },
    /// A netlist node was never assigned to a leaf.
    UnassignedNode {
        /// The raw node index.
        node: u32,
    },
    /// A node was assigned to a vertex that is not a level-0 leaf.
    NotALeaf {
        /// The raw vertex index.
        vertex: u32,
    },
    /// A block exceeds its level's size bound `C_l`.
    CapacityExceeded {
        /// The raw vertex index.
        vertex: u32,
        /// The vertex's level.
        level: usize,
        /// Actual total node size in the block.
        size: u64,
        /// The bound `C_l`.
        bound: u64,
    },
    /// A vertex has more children than its level's bound `K_l`.
    TooManyChildren {
        /// The raw vertex index.
        vertex: u32,
        /// The vertex's level.
        level: usize,
        /// Actual child count.
        children: usize,
        /// The bound `K_l`.
        bound: usize,
    },
    /// The partition and the hypergraph disagree on the node count.
    NodeCountMismatch {
        /// Nodes in the partition.
        partition: usize,
        /// Nodes in the hypergraph.
        hypergraph: usize,
    },
    /// The partition tree uses a level the specification does not define.
    LevelOutOfRange {
        /// The offending level.
        level: usize,
        /// Root level of the specification.
        root_level: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadSpec { message } => write!(f, "bad tree specification: {message}"),
            ModelError::BadVertex { message } => write!(f, "bad tree vertex: {message}"),
            ModelError::UnassignedNode { node } => {
                write!(f, "node {node} is not assigned to any leaf")
            }
            ModelError::NotALeaf { vertex } => {
                write!(f, "vertex {vertex} holds nodes but is not a level-0 leaf")
            }
            ModelError::CapacityExceeded { vertex, level, size, bound } => write!(
                f,
                "vertex {vertex} at level {level} holds size {size}, exceeding C_{level} = {bound}"
            ),
            ModelError::TooManyChildren { vertex, level, children, bound } => write!(
                f,
                "vertex {vertex} at level {level} has {children} children, exceeding K_{level} = {bound}"
            ),
            ModelError::NodeCountMismatch { partition, hypergraph } => write!(
                f,
                "partition assigns {partition} nodes but the hypergraph has {hypergraph}"
            ),
            ModelError::LevelOutOfRange { level, root_level } => write!(
                f,
                "partition uses level {level} but the specification tops out at {root_level}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_numbers() {
        let e = ModelError::CapacityExceeded {
            vertex: 3,
            level: 1,
            size: 9,
            bound: 8,
        };
        let s = e.to_string();
        assert!(s.contains("vertex 3"));
        assert!(s.contains("C_1 = 8"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
