//! The spreading bound `g(x)` of linear program (P1).
//!
//! For a subset of nodes with total size `x`, the paper requires every node
//! `v` of the subset to satisfy `Σ_u dist(v, u)·s(u) >= g(x)` where
//!
//! ```text
//! g(x) = 0                                 if x <= C_0
//! g(x) = 2 · Σ_{0 <= i <= l} (x − C_i)·w_i if C_l < x <= C_{l+1}
//! ```
//!
//! Intuitively: a subset too big for a level-`l` block must be spread over a
//! radius proportional to how much it overflows each level it cannot fit in.

use crate::TreeSpec;

/// Evaluates `g(x)` for the given specification.
///
/// For `x` larger than even the root capacity (an infeasible subset) the sum
/// extends over every level below the root, which keeps `g` monotone and
/// finite — useful while a metric is still being computed.
pub fn spreading_bound(spec: &TreeSpec, x: u64) -> f64 {
    if x <= spec.capacity(0) {
        return 0.0;
    }
    // Find l with C_l < x <= C_{l+1}; clamp to the root for oversized x.
    let l = (0..spec.root_level())
        .rev()
        .find(|&i| spec.capacity(i) < x)
        .expect("x > C_0 guarantees some level qualifies");
    2.0 * (0..=l)
        .map(|i| (x.saturating_sub(spec.capacity(i))) as f64 * spec.weight(i))
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn figure2_spec() -> TreeSpec {
        TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 2.0)]).unwrap()
    }

    #[test]
    fn zero_below_leaf_capacity() {
        let spec = figure2_spec();
        for x in 0..=4 {
            assert_eq!(spreading_bound(&spec, x), 0.0);
        }
    }

    #[test]
    fn linear_above_leaf_capacity() {
        let spec = figure2_spec();
        // C_0 = 4 < x <= C_1 = 8: g(x) = 2(x - 4)·w_0 = 2(x - 4).
        assert_eq!(spreading_bound(&spec, 5), 2.0);
        assert_eq!(spreading_bound(&spec, 8), 8.0);
    }

    #[test]
    fn accumulates_over_levels() {
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 2.0), (16, 2, 1.0)]).unwrap();
        // C_1 = 8 < 10 <= C_2 = 16: g = 2[(10-4)·1 + (10-8)·2] = 20.
        assert_eq!(spreading_bound(&spec, 10), 20.0);
    }

    #[test]
    fn oversized_subsets_stay_finite_and_monotone() {
        let spec = figure2_spec();
        let g9 = spreading_bound(&spec, 9);
        let g100 = spreading_bound(&spec, 100);
        assert!(g9.is_finite() && g100.is_finite());
        assert!(g100 > g9);
    }

    proptest! {
        #[test]
        fn g_is_monotone_nondecreasing(c0 in 1u64..20, steps in 1u64..30, x in 0u64..200) {
            let spec = TreeSpec::new(vec![
                (c0, 2, 1.0),
                (c0 + steps, 2, 2.0),
                (c0 + 2 * steps, 2, 0.5),
            ]).unwrap();
            let g1 = spreading_bound(&spec, x);
            let g2 = spreading_bound(&spec, x + 1);
            prop_assert!(g2 >= g1, "g({}) = {} > g({}) = {}", x, g1, x + 1, g2);
            prop_assert!(g1 >= 0.0);
        }
    }
}
