//! Block-level quality metrics: I/O pins, balance, and per-level cuts.
//!
//! The HTP objective is phrased as *total weighted I/O pin cost*: every
//! block a net spans at a paying level contributes that net's capacity to
//! the block's I/O pin count. This module reports those physical
//! quantities per block — the numbers a board/FPGA engineer actually
//! checks against a datasheet — and aggregates them per level.

use htp_netlist::Hypergraph;

use crate::{HierarchicalPartition, TreeSpec, VertexId};

/// Per-block report at one level.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockMetrics {
    /// The block (tree vertex).
    pub vertex: VertexId,
    /// Total node size hosted in the block's subtree.
    pub size: u64,
    /// Number of nets crossing the block boundary (unweighted).
    pub external_nets: usize,
    /// I/O pin demand: summed capacity of crossing nets.
    pub io_pins: f64,
}

/// Per-level aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelMetrics {
    /// The level.
    pub level: usize,
    /// Metrics of every block at this level, ordered by vertex id.
    pub blocks: Vec<BlockMetrics>,
    /// Summed I/O pins over the level's blocks (`Σ_e span(e,l)·c(e)`,
    /// i.e. the cost contribution at this level divided by `w_l`).
    pub total_io_pins: f64,
    /// Size imbalance: `max block size / mean block size` over non-empty
    /// blocks (1.0 = perfectly balanced; 0.0 for a level with no blocks).
    pub imbalance: f64,
}

/// Computes per-block and per-level metrics for every paying level
/// `0..root_level`.
///
/// # Panics
///
/// Panics if the hypergraph and partition disagree on the node count.
pub fn level_metrics(h: &Hypergraph, p: &HierarchicalPartition) -> Vec<LevelMetrics> {
    assert_eq!(h.num_nodes(), p.num_nodes(), "node count mismatch");
    let node_sizes: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
    let subtree_sizes = p.subtree_sizes(&node_sizes);
    let matrix = p.block_matrix();

    let mut out = Vec::new();
    for (l, row) in matrix.iter().enumerate().take(p.root_level()) {
        // Distinct blocks at this level.
        let mut block_ids: Vec<u32> = row.clone();
        block_ids.sort_unstable();
        block_ids.dedup();
        let rank = |id: u32| block_ids.binary_search(&id).expect("id is present");

        let mut external_nets = vec![0usize; block_ids.len()];
        let mut io_pins = vec![0.0f64; block_ids.len()];
        let mut scratch: Vec<u32> = Vec::new();
        for e in h.nets() {
            scratch.clear();
            scratch.extend(h.net_pins(e).iter().map(|&v| row[v.index()]));
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() > 1 {
                for &b in &scratch {
                    external_nets[rank(b)] += 1;
                    io_pins[rank(b)] += h.net_capacity(e);
                }
            }
        }

        let blocks: Vec<BlockMetrics> = block_ids
            .iter()
            .enumerate()
            .map(|(r, &id)| BlockMetrics {
                vertex: VertexId(id),
                size: subtree_sizes[id as usize],
                external_nets: external_nets[r],
                io_pins: io_pins[r],
            })
            .collect();
        let total_io_pins = blocks.iter().map(|b| b.io_pins).sum();
        let sizes: Vec<u64> = blocks.iter().map(|b| b.size).filter(|&s| s > 0).collect();
        let imbalance = if sizes.is_empty() {
            0.0
        } else {
            let max = *sizes.iter().max().expect("non-empty") as f64;
            let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
            max / mean
        };
        out.push(LevelMetrics {
            level: l,
            blocks,
            total_io_pins,
            imbalance,
        });
    }
    out
}

/// Checks I/O pin demand against per-level budgets: returns the blocks
/// whose pin demand exceeds `budgets[level]` (a missing budget means
/// unlimited).
pub fn io_violations(
    h: &Hypergraph,
    p: &HierarchicalPartition,
    budgets: &[f64],
) -> Vec<(usize, BlockMetrics)> {
    level_metrics(h, p)
        .into_iter()
        .flat_map(|lm| {
            let budget = budgets.get(lm.level).copied();
            lm.blocks
                .into_iter()
                .filter(move |b| budget.is_some_and(|cap| b.io_pins > cap))
                .map(move |b| (lm.level, b))
        })
        .collect()
}

/// Consistency check between the metrics view and the cost objective:
/// `Σ_l w_l · total_io_pins(l)` must equal the partition cost.
pub fn io_cost_identity(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> (f64, f64) {
    let from_metrics: f64 = level_metrics(h, p)
        .iter()
        .map(|lm| spec.weight(lm.level) * lm.total_io_pins)
        .sum();
    let from_cost = crate::cost::partition_cost(h, spec, p);
    (from_metrics, from_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchicalPartition;
    use htp_netlist::{HypergraphBuilder, NodeId};

    fn fixture() -> (Hypergraph, TreeSpec, HierarchicalPartition) {
        // 4 nodes, 2 leaves under a root; one crossing net of capacity 2,
        // one internal net.
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(2.0, [NodeId(1), NodeId(2)]).unwrap();
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 3.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        (h, spec, p)
    }

    #[test]
    fn per_block_io_pins() {
        let (h, _, p) = fixture();
        let metrics = level_metrics(&h, &p);
        assert_eq!(metrics.len(), 1);
        let lm = &metrics[0];
        assert_eq!(lm.blocks.len(), 2);
        for b in &lm.blocks {
            assert_eq!(b.size, 2);
            assert_eq!(b.external_nets, 1);
            assert_eq!(b.io_pins, 2.0, "the capacity-2 net crosses");
        }
        assert_eq!(lm.total_io_pins, 4.0);
        assert_eq!(lm.imbalance, 1.0);
    }

    #[test]
    fn identity_with_the_cost_objective() {
        let (h, spec, p) = fixture();
        let (from_metrics, from_cost) = io_cost_identity(&h, &spec, &p);
        // span 2 × capacity 2 × w_0 = 3 -> 12.
        assert_eq!(from_cost, 12.0);
        assert!((from_metrics - from_cost).abs() < 1e-12);
    }

    #[test]
    fn budget_violations_are_reported_per_level() {
        let (h, _, p) = fixture();
        let violations = io_violations(&h, &p, &[1.0]);
        assert_eq!(violations.len(), 2, "both leaves exceed a 1-pin budget");
        assert!(io_violations(&h, &p, &[10.0]).is_empty());
        assert!(
            io_violations(&h, &p, &[]).is_empty(),
            "no budget, no violation"
        );
    }

    #[test]
    fn imbalance_reflects_skew() {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(3)]).unwrap();
        let h = b.build().unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 0, 1]).unwrap();
        let metrics = level_metrics(&h, &p);
        // Sizes 3 and 1: max/mean = 3/2.
        assert!((metrics[0].imbalance - 1.5).abs() < 1e-12);
    }
}
