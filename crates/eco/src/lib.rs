//! # htp-eco — incremental repartitioning (ECO mode)
//!
//! Real placement flows re-run partitioning after *small* netlist edits
//! ("engineering change orders"). The DAC'97 spreading-metric
//! formulation is naturally warm-startable: converged net lengths remain
//! a feasible starting point after a local edit, because injection only
//! ever *grows* lengths — so exponential re-pricing needs to touch only
//! the perturbed neighbourhood, and untouched subtrees of the prior
//! partition can be replayed verbatim when their capacity/fanout
//! certificates still hold.
//!
//! The crate has three layers:
//!
//! * [`delta`] — the typed edit API: record a [`NetlistDelta`]
//!   (`add_node` / `remove_node` / `resize_node` / `add_net` /
//!   `remove_net` / `reweight_net`) against a base netlist and
//!   [`apply`](NetlistDelta::apply) it, getting the edited
//!   [`Hypergraph`](htp_netlist::Hypergraph) plus a [`TouchedReport`]:
//!   old→new id maps and the one-hop-expanded perturbation frontier.
//!   [`diff`] recovers the same report from two already-built netlists
//!   (the job-server resubmission path).
//! * [`session`] — [`warm_partition`] runs the incremental pipeline
//!   (warm metric restarts on the touched frontier, then construction
//!   with subtree salvage), behind a [`WarmPolicy`] locality gate that
//!   routes non-local or tiny edits back to cold metrics; [`EcoSession`]
//!   chains edits, feeding each solve's converged lengths and partition
//!   into the next edit.
//! * [`script`] — seeded random edit scripts, scattered
//!   ([`random_delta`]) or neighborhood-clustered like a real ECO
//!   ([`random_delta_clustered`]), shared by the differential tests and
//!   the `eco` bench.
//!
//! Every incremental result is an ordinary partition: it passes
//! `htp_verify::certify` like a cold run's, and the differential tests
//! bound its cost against a from-scratch solve. Warm-starting is a
//! *quality-preserving accelerator*, not a different algorithm.

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod delta;
pub mod error;
pub mod script;
pub mod session;

pub use delta::{diff, AppliedDelta, EditOp, NetlistDelta, TouchedReport};
pub use error::EcoError;
pub use script::{random_delta, random_delta_clustered};
pub use session::{warm_partition, EcoReport, EcoSession, WarmPolicy, WarmRun};
