//! Typed netlist edits (`NetlistDelta`), their application, and the
//! touched-set bookkeeping that drives the warm paths.
//!
//! A delta is recorded against a *base* netlist (its node/net counts are
//! captured at construction) as an ordered list of [`EditOp`]s. Ids for
//! added nodes and nets are handed out eagerly in a **pre-compaction** id
//! space — base ids first, added ids appended — so later ops in the same
//! delta can reference earlier additions. [`NetlistDelta::apply`]
//! materialises the edited [`Hypergraph`] by compacting that space
//! (removed entities drop out, relative order is preserved) and reports
//! the old→new id maps plus the *touched sets*: the nodes and nets whose
//! spreading constraints the edit may have perturbed, expanded one
//! net-hop outward so a warm metric restart re-probes the whole
//! perturbation frontier.
//!
//! [`diff`] recovers the same information from two already-built
//! netlists (the job-server resubmission path), assuming an id-stable
//! node prefix and matching nets by pin set.

use std::collections::HashMap;

use htp_netlist::{Hypergraph, HypergraphBuilder, NetId, NodeId};

use crate::error::EcoError;

/// One edit in a [`NetlistDelta`] script.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Append a node of the given size.
    AddNode {
        /// Size of the new node (≥ 1).
        size: u64,
    },
    /// Remove a node; its pins silently drop from every incident net,
    /// and nets left with fewer than two distinct pins drop entirely.
    RemoveNode {
        /// Pre-compaction id of the node to remove.
        node: NodeId,
    },
    /// Change a node's size.
    ResizeNode {
        /// Pre-compaction id of the node to resize.
        node: NodeId,
        /// The new size (≥ 1).
        size: u64,
    },
    /// Append a net over the given pins.
    AddNet {
        /// Capacity of the new net (finite, > 0).
        capacity: f64,
        /// Pre-compaction pin ids (≥ 2 distinct).
        pins: Vec<NodeId>,
    },
    /// Remove a net outright.
    RemoveNet {
        /// Pre-compaction id of the net to remove.
        net: NetId,
    },
    /// Change a net's capacity.
    ReweightNet {
        /// Pre-compaction id of the net to reweight.
        net: NetId,
        /// The new capacity (finite, > 0).
        capacity: f64,
    },
}

/// An ordered, validated edit script against a fixed base netlist.
///
/// Scalar validity (sizes, capacities) and id ranges are checked as ops
/// are recorded; cross-op interactions (double removal, nets going
/// degenerate) are checked by [`NetlistDelta::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistDelta {
    base_nodes: usize,
    base_nets: usize,
    added_nodes: usize,
    added_nets: usize,
    ops: Vec<EditOp>,
}

impl NetlistDelta {
    /// Starts an empty delta against `h`.
    pub fn for_graph(h: &Hypergraph) -> Self {
        Self::with_base(h.num_nodes(), h.num_nets())
    }

    /// Starts an empty delta against a base of the given counts.
    pub fn with_base(nodes: usize, nets: usize) -> Self {
        NetlistDelta {
            base_nodes: nodes,
            base_nets: nets,
            added_nodes: 0,
            added_nets: 0,
            ops: Vec::new(),
        }
    }

    /// The recorded ops, in order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta records no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Node count of the pre-compaction id space (base + added so far).
    fn pre_nodes(&self) -> usize {
        self.base_nodes + self.added_nodes
    }

    /// Net count of the pre-compaction id space (base + added so far).
    fn pre_nets(&self) -> usize {
        self.base_nets + self.added_nets
    }

    fn check_node(&self, node: NodeId) -> Result<(), EcoError> {
        if node.index() >= self.pre_nodes() {
            return Err(EcoError::UnknownNode { node: node.index() });
        }
        Ok(())
    }

    fn check_net(&self, net: NetId) -> Result<(), EcoError> {
        if net.index() >= self.pre_nets() {
            return Err(EcoError::UnknownNet { net: net.index() });
        }
        Ok(())
    }

    fn check_capacity(capacity: f64) -> Result<(), EcoError> {
        if !capacity.is_finite() || capacity <= 0.0 {
            return Err(EcoError::BadCapacity { capacity });
        }
        Ok(())
    }

    /// Records a node addition and returns the id the node will have in
    /// the pre-compaction space.
    ///
    /// # Errors
    ///
    /// [`EcoError::ZeroSize`] for a zero size.
    pub fn add_node(&mut self, size: u64) -> Result<NodeId, EcoError> {
        let id = NodeId::new(self.pre_nodes());
        if size == 0 {
            return Err(EcoError::ZeroSize { node: id.index() });
        }
        self.added_nodes += 1;
        self.ops.push(EditOp::AddNode { size });
        Ok(id)
    }

    /// Records a node removal.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownNode`] for an out-of-range id.
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), EcoError> {
        self.check_node(node)?;
        self.ops.push(EditOp::RemoveNode { node });
        Ok(())
    }

    /// Records a node resize.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownNode`] / [`EcoError::ZeroSize`].
    pub fn resize_node(&mut self, node: NodeId, size: u64) -> Result<(), EcoError> {
        self.check_node(node)?;
        if size == 0 {
            return Err(EcoError::ZeroSize { node: node.index() });
        }
        self.ops.push(EditOp::ResizeNode { node, size });
        Ok(())
    }

    /// Records a net addition and returns the id the net will have in
    /// the pre-compaction space.
    ///
    /// # Errors
    ///
    /// [`EcoError::BadCapacity`], [`EcoError::UnknownNode`] for an
    /// out-of-range pin, or [`EcoError::DegenerateNet`] for fewer than
    /// two distinct pins.
    pub fn add_net(&mut self, capacity: f64, pins: Vec<NodeId>) -> Result<NetId, EcoError> {
        Self::check_capacity(capacity)?;
        for &p in &pins {
            self.check_node(p)?;
        }
        let mut distinct: Vec<NodeId> = pins.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < 2 {
            return Err(EcoError::DegenerateNet {
                distinct_pins: distinct.len(),
            });
        }
        let id = NetId::new(self.pre_nets());
        self.added_nets += 1;
        self.ops.push(EditOp::AddNet { capacity, pins });
        Ok(id)
    }

    /// Records a net removal.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownNet`] for an out-of-range id.
    pub fn remove_net(&mut self, net: NetId) -> Result<(), EcoError> {
        self.check_net(net)?;
        self.ops.push(EditOp::RemoveNet { net });
        Ok(())
    }

    /// Records a net reweight.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownNet`] / [`EcoError::BadCapacity`].
    pub fn reweight_net(&mut self, net: NetId, capacity: f64) -> Result<(), EcoError> {
        self.check_net(net)?;
        Self::check_capacity(capacity)?;
        self.ops.push(EditOp::ReweightNet { net, capacity });
        Ok(())
    }

    /// Applies the delta to its base netlist, producing the edited
    /// [`Hypergraph`] and the [`TouchedReport`] that drives the warm
    /// metric and salvage paths.
    ///
    /// # Errors
    ///
    /// [`EcoError::BaseMismatch`] if `h` is not the netlist the delta was
    /// recorded against (by node/net count); [`EcoError::NodeAlreadyRemoved`] /
    /// [`EcoError::NetAlreadyRemoved`] for double removals;
    /// [`EcoError::EmptyResult`] if nothing survives. Nets (added ones
    /// included) that node removals shrink below two distinct pins drop
    /// silently, reported as `None` in the net map.
    pub fn apply(&self, h: &Hypergraph) -> Result<AppliedDelta, EcoError> {
        if h.num_nodes() != self.base_nodes || h.num_nets() != self.base_nets {
            return Err(EcoError::BaseMismatch {
                expected_nodes: self.base_nodes,
                expected_nets: self.base_nets,
                got_nodes: h.num_nodes(),
                got_nets: h.num_nets(),
            });
        }

        // Replay the script over the pre-compaction state.
        let mut node_present: Vec<bool> = vec![true; self.base_nodes];
        let mut node_size: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
        let mut node_resized: Vec<bool> = vec![false; self.base_nodes];
        let mut net_present: Vec<bool> = vec![true; self.base_nets];
        let mut net_capacity: Vec<f64> = h.nets().map(|e| h.net_capacity(e)).collect();
        let mut net_reweighted: Vec<bool> = vec![false; self.base_nets];
        let mut added_pins: Vec<Vec<NodeId>> = Vec::new();

        for op in &self.ops {
            match op {
                EditOp::AddNode { size } => {
                    node_present.push(true);
                    node_size.push(*size);
                    node_resized.push(false);
                }
                EditOp::RemoveNode { node } => {
                    let i = node.index();
                    if i >= node_present.len() {
                        return Err(EcoError::UnknownNode { node: i });
                    }
                    if !node_present[i] {
                        return Err(EcoError::NodeAlreadyRemoved { node: i });
                    }
                    node_present[i] = false;
                }
                EditOp::ResizeNode { node, size } => {
                    let i = node.index();
                    if i >= node_present.len() {
                        return Err(EcoError::UnknownNode { node: i });
                    }
                    if !node_present[i] {
                        return Err(EcoError::NodeAlreadyRemoved { node: i });
                    }
                    if node_size[i] != *size {
                        node_size[i] = *size;
                        node_resized[i] = true;
                    }
                }
                EditOp::AddNet { capacity, pins } => {
                    net_present.push(true);
                    net_capacity.push(*capacity);
                    net_reweighted.push(false);
                    added_pins.push(pins.clone());
                }
                EditOp::RemoveNet { net } => {
                    let i = net.index();
                    if i >= net_present.len() {
                        return Err(EcoError::UnknownNet { net: i });
                    }
                    if !net_present[i] {
                        return Err(EcoError::NetAlreadyRemoved { net: i });
                    }
                    net_present[i] = false;
                }
                EditOp::ReweightNet { net, capacity } => {
                    let i = net.index();
                    if i >= net_present.len() {
                        return Err(EcoError::UnknownNet { net: i });
                    }
                    if !net_present[i] {
                        return Err(EcoError::NetAlreadyRemoved { net: i });
                    }
                    if net_capacity[i] != *capacity {
                        net_capacity[i] = *capacity;
                        net_reweighted[i] = true;
                    }
                }
            }
        }

        let pre_nodes = node_present.len();
        let pre_nets = net_present.len();

        // Compact nodes: base order first, additions appended.
        let mut node_map_pre: Vec<Option<NodeId>> = vec![None; pre_nodes];
        let mut b = HypergraphBuilder::new();
        for i in 0..pre_nodes {
            if node_present[i] {
                node_map_pre[i] = Some(b.add_node(node_size[i]));
            }
        }
        if b.num_nodes() == 0 {
            return Err(EcoError::EmptyResult);
        }

        // Compact nets in pre order; a base net shrinking below two
        // distinct pins silently drops, an added one is a typed error.
        let pre_pins = |i: usize| -> &[NodeId] {
            if i < self.base_nets {
                h.net_pins(NetId::new(i))
            } else {
                &added_pins[i - self.base_nets]
            }
        };
        let mut net_map_pre: Vec<Option<NetId>> = vec![None; pre_nets];
        let mut lost_pin: Vec<bool> = vec![false; pre_nets];
        for i in 0..pre_nets {
            if !net_present[i] {
                continue;
            }
            let mut pins: Vec<NodeId> = Vec::new();
            for &p in pre_pins(i) {
                match node_map_pre[p.index()] {
                    Some(new) => pins.push(new),
                    None => lost_pin[i] = true,
                }
            }
            // A net shrinking below two distinct pins silently drops —
            // added nets included, since `add_net` already validated them
            // eagerly and only a *later* removal can degrade them.
            net_map_pre[i] = b.add_net_lenient(net_capacity[i], pins.iter().copied())?;
        }
        let hypergraph = b.build()?;

        // Changed sets in the new id space, then the one-hop expansion.
        let mut changed_node = vec![false; hypergraph.num_nodes()];
        let mut changed_net = vec![false; hypergraph.num_nets()];
        let mut added_node_ids: Vec<NodeId> = Vec::new();
        let mut added_net_ids: Vec<NetId> = Vec::new();
        for i in 0..pre_nodes {
            if let Some(new) = node_map_pre[i] {
                if i >= self.base_nodes {
                    added_node_ids.push(new);
                }
                if i >= self.base_nodes || node_resized[i] {
                    changed_node[new.index()] = true;
                }
            }
        }
        for i in 0..pre_nets {
            let gone = net_map_pre[i].is_none();
            let changed = i >= self.base_nets || net_reweighted[i] || lost_pin[i] || gone;
            if !changed {
                continue;
            }
            match net_map_pre[i] {
                Some(new) => {
                    if i >= self.base_nets {
                        added_net_ids.push(new);
                    }
                    changed_net[new.index()] = true;
                    for &p in hypergraph.net_pins(new) {
                        changed_node[p.index()] = true;
                    }
                }
                None => {
                    // Removed or dropped net: its surviving former pins
                    // lose connectivity and must be re-probed.
                    for &p in pre_pins(i) {
                        if let Some(new) = node_map_pre[p.index()] {
                            changed_node[new.index()] = true;
                        }
                    }
                }
            }
        }
        let (touched_nodes, touched_nets) =
            expand_touched(&hypergraph, &changed_node, &changed_net);

        let report = TouchedReport {
            node_map: node_map_pre[..self.base_nodes].to_vec(),
            net_map: net_map_pre[..self.base_nets].to_vec(),
            added_node_ids,
            added_net_ids,
            changed_nodes: changed_node.iter().filter(|&&c| c).count(),
            touched_nodes,
            touched_nets,
        };
        Ok(AppliedDelta { hypergraph, report })
    }
}

/// Expands changed nodes/nets one net-hop outward: every net incident to
/// a changed node goes live, and every pin of a live net joins the
/// re-probe set. Returns sorted id lists.
fn expand_touched(
    h: &Hypergraph,
    changed_node: &[bool],
    changed_net: &[bool],
) -> (Vec<NodeId>, Vec<NetId>) {
    let mut live_net = changed_net.to_vec();
    for v in h.nodes() {
        if changed_node[v.index()] {
            for &e in h.node_nets(v) {
                live_net[e.index()] = true;
            }
        }
    }
    let mut live_node = changed_node.to_vec();
    for e in h.nets() {
        if live_net[e.index()] {
            for &p in h.net_pins(e) {
                live_node[p.index()] = true;
            }
        }
    }
    let touched_nodes = h.nodes().filter(|v| live_node[v.index()]).collect();
    let touched_nets = h.nets().filter(|e| live_net[e.index()]).collect();
    (touched_nodes, touched_nets)
}

/// Result of [`NetlistDelta::apply`]: the edited netlist plus the id
/// maps and touched sets the incremental paths consume.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The edited netlist.
    pub hypergraph: Hypergraph,
    /// Id maps and touched sets.
    pub report: TouchedReport,
}

/// Old→new id maps and the perturbation frontier of an edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TouchedReport {
    /// Base node id → edited node id (`None` when removed).
    pub node_map: Vec<Option<NodeId>>,
    /// Base net id → edited net id (`None` when removed or dropped).
    pub net_map: Vec<Option<NetId>>,
    /// Edited-space ids of nodes the delta added.
    pub added_node_ids: Vec<NodeId>,
    /// Edited-space ids of nets the delta added.
    pub added_net_ids: Vec<NetId>,
    /// Directly perturbed nodes, before the one-hop expansion — the
    /// honest "edit size" (resized/added nodes plus pins of edited nets).
    pub changed_nodes: usize,
    /// Edited-space nodes to re-probe in a warm metric run (sorted;
    /// changed nodes expanded one net-hop).
    pub touched_nodes: Vec<NodeId>,
    /// Edited-space nets live for re-pricing (sorted).
    pub touched_nets: Vec<NetId>,
}

impl TouchedReport {
    /// Per-node touched mask over the edited netlist.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is smaller than a touched id.
    pub fn touched_mask(&self, num_nodes: usize) -> Vec<bool> {
        let mut mask = vec![false; num_nodes];
        for &v in &self.touched_nodes {
            mask[v.index()] = true;
        }
        mask
    }

    /// Carries prior converged net lengths into the edited id space:
    /// `out[new] = Some(prior[old])` for every surviving net, `None`
    /// (cold start) for added ones.
    ///
    /// # Panics
    ///
    /// Panics if `prior` is not sized to the base netlist's nets.
    pub fn carry_lengths(&self, prior: &[f64], num_new_nets: usize) -> Vec<Option<f64>> {
        assert_eq!(
            prior.len(),
            self.net_map.len(),
            "prior lengths must cover the base netlist"
        );
        let mut out = vec![None; num_new_nets];
        for (old, new) in self.net_map.iter().enumerate() {
            if let Some(new) = new {
                out[new.index()] = Some(prior[old]);
            }
        }
        out
    }

    /// Fraction of the edited netlist's nodes that were directly
    /// perturbed (pre-expansion).
    pub fn edit_fraction(&self, num_new_nodes: usize) -> f64 {
        if num_new_nodes == 0 {
            0.0
        } else {
            self.changed_nodes as f64 / num_new_nodes as f64
        }
    }
}

/// Recovers a [`TouchedReport`] by structurally diffing two already-built
/// netlists — the job-server resubmission path, where only the old and
/// new instance texts exist.
///
/// Node correspondence is positional: node `i` of `new` is node `i` of
/// `old` while both exist (a resize shows up as a size difference);
/// surplus ids on either side are adds/removes. Nets are matched by
/// (sorted) pin set — an exact `(pins, capacity)` match carries over
/// untouched, a pins-only match is a reweight, and everything else is an
/// add or remove. The heuristic is deliberately conservative: anything it
/// cannot match becomes touched, which costs warm-start speedup, never
/// correctness.
pub fn diff(old: &Hypergraph, new: &Hypergraph) -> TouchedReport {
    let n_old = old.num_nodes();
    let n_new = new.num_nodes();
    let shared = n_old.min(n_new);

    let mut node_map: Vec<Option<NodeId>> = vec![None; n_old];
    let mut changed_node = vec![false; n_new];
    for i in 0..shared {
        node_map[i] = Some(NodeId::new(i));
        if old.node_size(NodeId::new(i)) != new.node_size(NodeId::new(i)) {
            changed_node[i] = true;
        }
    }
    let mut added_node_ids: Vec<NodeId> = Vec::new();
    for (i, changed) in changed_node.iter_mut().enumerate().skip(shared) {
        *changed = true;
        added_node_ids.push(NodeId::new(i));
    }

    // Bucket old nets by pin key; drain buckets as new nets match.
    let mut buckets: HashMap<Vec<usize>, Vec<NetId>> = HashMap::new();
    for e in old.nets() {
        let key: Vec<usize> = old.net_pins(e).iter().map(|p| p.index()).collect();
        buckets.entry(key).or_default().push(e);
    }
    let mut net_map: Vec<Option<NetId>> = vec![None; old.num_nets()];
    let mut changed_net = vec![false; new.num_nets()];
    let mut added_net_ids: Vec<NetId> = Vec::new();
    for e in new.nets() {
        let key: Vec<usize> = new.net_pins(e).iter().map(|p| p.index()).collect();
        let matched = buckets.get_mut(&key).and_then(|list| {
            // Prefer an exact capacity match; otherwise take the first
            // pins-only match as a reweight.
            let cap = new.net_capacity(e);
            let pos = list
                .iter()
                .position(|&o| old.net_capacity(o) == cap)
                .unwrap_or(0);
            if list.is_empty() {
                None
            } else {
                Some(list.remove(pos))
            }
        });
        match matched {
            Some(o) => {
                net_map[o.index()] = Some(e);
                if old.net_capacity(o) != new.net_capacity(e) {
                    changed_net[e.index()] = true;
                    for &p in new.net_pins(e) {
                        changed_node[p.index()] = true;
                    }
                }
            }
            None => {
                added_net_ids.push(e);
                changed_net[e.index()] = true;
                for &p in new.net_pins(e) {
                    changed_node[p.index()] = true;
                }
            }
        }
    }
    // Old nets with no counterpart: their surviving pins are perturbed.
    for e in old.nets() {
        if net_map[e.index()].is_none() {
            for &p in old.net_pins(e) {
                if p.index() < shared {
                    changed_node[p.index()] = true;
                }
            }
        }
    }

    let (touched_nodes, touched_nets) = expand_touched(new, &changed_node, &changed_net);
    TouchedReport {
        node_map,
        net_map,
        added_node_ids,
        added_net_ids,
        changed_nodes: changed_node.iter().filter(|&&c| c).count(),
        touched_nodes,
        touched_nets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [NodeId::new(i), NodeId::new(i + 1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_delta_is_an_identity() {
        let h = chain(6);
        let d = NetlistDelta::for_graph(&h);
        let a = d.apply(&h).unwrap();
        assert_eq!(a.hypergraph.num_nodes(), 6);
        assert_eq!(a.hypergraph.num_nets(), 5);
        assert!(a.report.touched_nodes.is_empty());
        assert!(a.report.touched_nets.is_empty());
        assert_eq!(a.report.edit_fraction(6), 0.0);
    }

    #[test]
    fn add_node_and_net_touch_their_neighbourhood() {
        let h = chain(6);
        let mut d = NetlistDelta::for_graph(&h);
        let v = d.add_node(2).unwrap();
        assert_eq!(v, NodeId::new(6));
        let e = d.add_net(1.5, vec![NodeId::new(0), v]).unwrap();
        assert_eq!(e, NetId::new(5));
        let a = d.apply(&h).unwrap();
        assert_eq!(a.hypergraph.num_nodes(), 7);
        assert_eq!(a.hypergraph.num_nets(), 6);
        assert_eq!(a.report.added_node_ids, vec![NodeId::new(6)]);
        assert_eq!(a.report.added_net_ids, vec![NetId::new(5)]);
        // Node 0 and the new node are perturbed; expansion pulls in node 1
        // (co-pin of net 0-1).
        assert!(a.report.touched_nodes.contains(&NodeId::new(0)));
        assert!(a.report.touched_nodes.contains(&NodeId::new(1)));
        assert!(a.report.touched_nodes.contains(&NodeId::new(6)));
        assert!(!a.report.touched_nodes.contains(&NodeId::new(3)));
    }

    #[test]
    fn remove_node_compacts_ids_and_drops_degenerate_nets() {
        let h = chain(4); // nets: 0-1, 1-2, 2-3
        let mut d = NetlistDelta::for_graph(&h);
        d.remove_node(NodeId::new(1)).unwrap();
        let a = d.apply(&h).unwrap();
        assert_eq!(a.hypergraph.num_nodes(), 3);
        // Nets 0-1 and 1-2 both go degenerate; only 2-3 survives.
        assert_eq!(a.hypergraph.num_nets(), 1);
        assert_eq!(a.report.node_map[0], Some(NodeId::new(0)));
        assert_eq!(a.report.node_map[1], None);
        assert_eq!(a.report.node_map[2], Some(NodeId::new(1)));
        assert_eq!(a.report.net_map[0], None);
        assert_eq!(a.report.net_map[1], None);
        assert_eq!(a.report.net_map[2], Some(NetId::new(0)));
    }

    #[test]
    fn double_removal_is_a_typed_error() {
        let h = chain(4);
        let mut d = NetlistDelta::for_graph(&h);
        d.remove_node(NodeId::new(1)).unwrap();
        d.remove_node(NodeId::new(1)).unwrap();
        assert_eq!(
            d.apply(&h).unwrap_err(),
            EcoError::NodeAlreadyRemoved { node: 1 }
        );
    }

    #[test]
    fn scalar_validation_is_eager() {
        let h = chain(4);
        let mut d = NetlistDelta::for_graph(&h);
        assert!(matches!(d.add_node(0), Err(EcoError::ZeroSize { .. })));
        assert!(matches!(
            d.resize_node(NodeId::new(9), 1),
            Err(EcoError::UnknownNode { node: 9 })
        ));
        assert!(matches!(
            d.reweight_net(NetId::new(0), f64::NAN),
            Err(EcoError::BadCapacity { .. })
        ));
        assert!(matches!(
            d.add_net(1.0, vec![NodeId::new(2), NodeId::new(2)]),
            Err(EcoError::DegenerateNet { distinct_pins: 1 })
        ));
    }

    #[test]
    fn base_mismatch_is_rejected() {
        let h = chain(4);
        let d = NetlistDelta::for_graph(&h);
        let other = chain(5);
        assert!(matches!(
            d.apply(&other).unwrap_err(),
            EcoError::BaseMismatch { .. }
        ));
    }

    #[test]
    fn removing_every_node_is_rejected() {
        let h = chain(2);
        let mut d = NetlistDelta::for_graph(&h);
        d.remove_node(NodeId::new(0)).unwrap();
        d.remove_node(NodeId::new(1)).unwrap();
        assert_eq!(d.apply(&h).unwrap_err(), EcoError::EmptyResult);
    }

    #[test]
    fn reweight_to_same_capacity_touches_nothing() {
        let h = chain(5);
        let mut d = NetlistDelta::for_graph(&h);
        d.reweight_net(NetId::new(2), 1.0).unwrap();
        let a = d.apply(&h).unwrap();
        assert!(a.report.touched_nets.is_empty());
    }

    #[test]
    fn diff_recovers_a_reweight_and_an_extension() {
        let old = chain(8);
        let new = {
            let mut b = HypergraphBuilder::with_unit_nodes(9);
            for i in 0..7 {
                let cap = if i == 1 { 2.5 } else { 1.0 };
                b.add_net(cap, [NodeId::new(i), NodeId::new(i + 1)])
                    .unwrap();
            }
            b.add_net(1.0, [NodeId::new(7), NodeId::new(8)]).unwrap();
            b.build().unwrap()
        };
        let r = diff(&old, &new);
        assert_eq!(r.node_map.len(), 8);
        assert!(r.node_map.iter().all(|m| m.is_some()));
        assert_eq!(r.added_node_ids, vec![NodeId::new(8)]);
        // All seven old nets carry over (one of them reweighted).
        let carried = r.net_map.iter().filter(|m| m.is_some()).count();
        assert_eq!(carried, 7);
        // Changed: pins of the reweighted net {1,2} and of the new net
        // {7,8}. One-hop expansion pulls in 0, 3, and 6 — but the chain
        // middle stays untouched.
        assert!(r.touched_nodes.contains(&NodeId::new(1)));
        assert!(r.touched_nodes.contains(&NodeId::new(8)));
        assert!(!r.touched_nodes.contains(&NodeId::new(5)));
        let lengths: Vec<f64> = (0..7).map(|i| i as f64 + 1.0).collect();
        let carry = r.carry_lengths(&lengths, new.num_nets());
        assert_eq!(carry[7], None, "the added net starts cold");
        assert_eq!(carry.iter().filter(|c| c.is_some()).count(), 7);
    }
}
