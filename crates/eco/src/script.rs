//! Seeded random edit-script generation, shared by the differential
//! tests and the `eco` bench: a reproducible way to perturb a fraction
//! of a netlist through every kind of [`EditOp`](crate::EditOp).

use rand::{Rng, RngExt};

use htp_netlist::{Hypergraph, NetId, NodeId};

use crate::delta::NetlistDelta;

/// Builds a random, always-valid edit script touching roughly
/// `edit_rate` of `h`'s nodes (at least one edit).
///
/// The op mix leans toward the cheap local edits real ECO flows are made
/// of — resizes, reweights, small add/remove churn — and keeps the total
/// size roughly stable (additions are unit-size) so a spec sized for the
/// base instance keeps fitting. The script never double-removes, never
/// references a removed entity, and never shrinks the netlist below two
/// nodes, so [`NetlistDelta::apply`] is guaranteed to succeed.
pub fn random_delta<R: Rng + ?Sized>(h: &Hypergraph, edit_rate: f64, rng: &mut R) -> NetlistDelta {
    let (edits, pool, nets) = script_scope(h, edit_rate, None, rng);
    build_script(h, edits, &pool, &nets, rng)
}

/// Like [`random_delta`], but spatially clustered: every edit lands in a
/// BFS neighborhood of one random seed node, the way a real engineering
/// change order perturbs one region of a design rather than sprinkling
/// changes everywhere. Clustered scripts are what make subtree salvage
/// observable — with scattered edits every root subtree is touched and
/// nothing can be reused.
pub fn random_delta_clustered<R: Rng + ?Sized>(
    h: &Hypergraph,
    edit_rate: f64,
    rng: &mut R,
) -> NetlistDelta {
    let (edits, pool, nets) = script_scope(h, edit_rate, Some(()), rng);
    build_script(h, edits, &pool, &nets, rng)
}

/// Decides how many edits to make and which nodes/nets they may touch:
/// the whole netlist (scattered), or a BFS neighborhood of a random seed
/// roughly 4× the edit count (clustered).
fn script_scope<R: Rng + ?Sized>(
    h: &Hypergraph,
    edit_rate: f64,
    clustered: Option<()>,
    rng: &mut R,
) -> (usize, Vec<NodeId>, Vec<NetId>) {
    assert!(
        (0.0..=1.0).contains(&edit_rate),
        "edit_rate must be in [0, 1], got {edit_rate}"
    );
    let n = h.num_nodes();
    let edits = ((n as f64 * edit_rate).round() as usize).max(1);
    if clustered.is_none() {
        return (edits, h.nodes().collect(), h.nets().collect());
    }
    let want = (edits * 4).clamp(8, n);
    let mut pool: Vec<NodeId> = Vec::with_capacity(want);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let start = NodeId::new(rng.random_range(0..n));
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        pool.push(v);
        if pool.len() >= want {
            break;
        }
        for &e in h.node_nets(v) {
            for &p in h.net_pins(e) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    queue.push_back(p);
                }
            }
        }
    }
    let mut net_seen = vec![false; h.num_nets()];
    let mut nets: Vec<NetId> = Vec::new();
    for &v in &pool {
        for &e in h.node_nets(v) {
            if !net_seen[e.index()] {
                net_seen[e.index()] = true;
                nets.push(e);
            }
        }
    }
    (edits, pool, nets)
}

fn build_script<R: Rng + ?Sized>(
    h: &Hypergraph,
    edits: usize,
    pool: &[NodeId],
    nets: &[NetId],
    rng: &mut R,
) -> NetlistDelta {
    let n = h.num_nodes();
    let m = h.num_nets();
    let mut d = NetlistDelta::for_graph(h);

    let mut node_removed = vec![false; n];
    let mut net_removed = vec![false; m];
    let mut alive_nodes = n;
    let mut added_nodes: Vec<NodeId> = Vec::new();

    // Bounded rejection sampling for a surviving in-scope entity.
    let pick_node = |rng: &mut R, removed: &[bool]| -> Option<NodeId> {
        for _ in 0..16 {
            let v = pool[rng.random_range(0..pool.len())];
            if !removed[v.index()] {
                return Some(v);
            }
        }
        None
    };
    let pick_net = |rng: &mut R, removed: &[bool]| -> Option<NetId> {
        if nets.is_empty() {
            return None;
        }
        for _ in 0..16 {
            let e = nets[rng.random_range(0..nets.len())];
            if !removed[e.index()] {
                return Some(e);
            }
        }
        None
    };

    for _ in 0..edits {
        let roll = rng.random_range(0u32..100);
        match roll {
            // 40%: resize a surviving node to 1 or 2.
            0..=39 => {
                if let Some(v) = pick_node(rng, &node_removed) {
                    let size = rng.random_range(1u64..=2);
                    let _ = d.resize_node(v, size);
                }
            }
            // 20%: remove a surviving node (keep at least two alive).
            40..=59 => {
                if alive_nodes > 2 {
                    if let Some(v) = pick_node(rng, &node_removed) {
                        if d.remove_node(v).is_ok() {
                            node_removed[v.index()] = true;
                            alive_nodes -= 1;
                        }
                    }
                }
            }
            // 15%: add a unit node wired to a surviving anchor.
            60..=74 => {
                if let Some(anchor) = pick_node(rng, &node_removed) {
                    if let Ok(v) = d.add_node(1) {
                        added_nodes.push(v);
                        let _ = d.add_net(1.0, vec![anchor, v]);
                    }
                }
            }
            // 15%: reweight a surviving net.
            75..=89 => {
                if let Some(e) = pick_net(rng, &net_removed) {
                    let cap = h.net_capacity(e) * rng.random_range(0.5f64..2.0);
                    let _ = d.reweight_net(e, cap.max(1e-6));
                }
            }
            // 5%: remove a surviving net.
            90..=94 => {
                if let Some(e) = pick_net(rng, &net_removed) {
                    if d.remove_net(e).is_ok() {
                        net_removed[e.index()] = true;
                    }
                }
            }
            // 5%: add a net between two distinct surviving nodes (base
            // or freshly added).
            _ => {
                let a = pick_node(rng, &node_removed);
                let b = if !added_nodes.is_empty() && rng.random_bool(0.5) {
                    Some(added_nodes[rng.random_range(0..added_nodes.len())])
                } else {
                    pick_node(rng, &node_removed)
                };
                if let (Some(a), Some(b)) = (a, b) {
                    if a != b {
                        let _ = d.add_net(1.0, vec![a, b]);
                    }
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [NodeId::new(i), NodeId::new(i + 1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn generated_scripts_always_apply() {
        let h = chain(40);
        for seed in 0..50u64 {
            for rate in [0.01, 0.05, 0.2, 0.5] {
                let mut rng = StdRng::seed_from_u64(seed);
                let d = random_delta(&h, rate, &mut rng);
                assert!(!d.is_empty());
                let applied = d
                    .apply(&h)
                    .unwrap_or_else(|e| panic!("seed {seed} rate {rate}: {e}"));
                assert!(applied.hypergraph.num_nodes() >= 2);
            }
        }
    }

    #[test]
    fn clustered_scripts_stay_in_one_neighborhood() {
        let h = chain(100);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = random_delta_clustered(&h, 0.03, &mut rng);
            let applied = d.apply(&h).unwrap();
            // 3 edits drawn from a BFS pool of 12 around one seed node: on
            // a chain, every directly changed node sits in one short span.
            let changed: Vec<usize> = (0..100)
                .filter(|&i| {
                    applied.report.node_map[i].is_none()
                        || applied
                            .report
                            .touched_nodes
                            .iter()
                            .any(|v| applied.report.node_map[i] == Some(*v))
                })
                .collect();
            let width = changed.last().unwrap_or(&0) - changed.first().unwrap_or(&0);
            assert!(
                width <= 24,
                "seed {seed}: touched span {width} is not clustered ({changed:?})"
            );
        }
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let h = chain(24);
        let d1 = random_delta(&h, 0.2, &mut StdRng::seed_from_u64(9));
        let d2 = random_delta(&h, 0.2, &mut StdRng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }
}
