//! The incremental solve driver: warm metric + salvaged construction,
//! and the [`EcoSession`] that chains edits across calls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use htp_core::construct::{
    construct_partition_budgeted, construct_partition_salvaged, SalvageReport,
};
use htp_core::injector::{compute_spreading_metric_warm, InjectionStats, WarmStart};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::{Budget, CoreError, Interrupt, RunOutcome};
use htp_model::{cost, validate, HierarchicalPartition, TreeSpec};
use htp_netlist::Hypergraph;

use crate::delta::{NetlistDelta, TouchedReport};
use crate::error::EcoError;

/// Policy knobs of the incremental solver that the cold partitioner's
/// [`PartitionerParams`] do not cover.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmPolicy {
    /// When the one-hop touched closure covers more than this fraction
    /// of the edited netlist's nodes, the edit is not local: carried
    /// lengths would anchor the metric in the pre-edit basin while most
    /// of the instance changed underneath it. The solve then falls back
    /// to cold metrics — but still offers the prior partition's subtrees
    /// to the construction portfolio, so surviving structure is reused
    /// either way.
    pub cold_fallback_fraction: f64,
    /// Netlists smaller than this always take the cold path. On tiny
    /// instances a from-scratch metric costs about as much as a warm
    /// re-pricing, while the stochastic injector's metric-to-metric
    /// variance is at its worst — carrying the pre-edit basin risks real
    /// quality for no real speedup.
    pub min_warm_nodes: usize,
}

impl Default for WarmPolicy {
    fn default() -> Self {
        // Below ~a quarter of the instance, warm re-pricing reliably
        // tracks the edit; past it, the pre-edit basin starts to cost
        // more quality than the locality saves (differential test,
        // `warm_solves_certify_within_five_percent_of_cold`). The node
        // floor matches the injector's own small-instance threshold for
        // the adaptive probe schedule.
        WarmPolicy {
            cold_fallback_fraction: 0.25,
            min_warm_nodes: 256,
        }
    }
}

/// Result of one incremental (warm) solve.
#[derive(Clone, Debug)]
pub struct WarmRun {
    /// The certified-quality partition of the edited netlist.
    pub partition: HierarchicalPartition,
    /// Its interconnection cost.
    pub cost: f64,
    /// The (re-)converged per-net lengths — the warm seed for the *next*
    /// edit in the chain.
    pub lengths: Vec<f64>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Metric-phase statistics (rounds, injections, probes).
    pub stats: InjectionStats,
    /// What subtree salvage reused, for the best construction.
    pub salvage: SalvageReport,
    /// `false` when the [`WarmPolicy`] routed this solve through cold
    /// metrics because the edit touched too much of the netlist.
    pub warm: bool,
}

/// [`WarmRun`] without the bulky fields — what [`EcoSession::apply`]
/// hands back after folding the rest into the session state.
#[derive(Clone, Copy, Debug)]
pub struct EcoReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Cost of the new incumbent partition.
    pub cost: f64,
    /// Directly perturbed nodes (pre-expansion).
    pub changed_nodes: usize,
    /// Nodes re-probed by the warm metric run.
    pub touched_nodes: usize,
    /// Nets live for re-pricing.
    pub touched_nets: usize,
    /// Metric-phase statistics.
    pub stats: InjectionStats,
    /// Subtree-salvage summary for the winning construction.
    pub salvage: SalvageReport,
    /// Whether the warm path ran (`false`: cold-fallback policy fired).
    pub warm: bool,
}

/// Runs the incremental pipeline: first the [`WarmPolicy`] locality gate
/// (a touched closure past `cold_fallback_fraction` routes to the cold
/// fallback — fresh metrics, prior subtrees still offered to
/// construction); then, like the cold solver's outer loop,
/// `params.iterations` metric+construct rounds — but each round's metric
/// is warm-started from the prior lengths (only `report.touched_nodes`
/// live for re-pricing), so a round costs a local re-convergence instead
/// of a from-scratch one. Multiple warm rounds matter for quality, not
/// just speed: the stochastic injector's metric-to-metric variance is
/// what the cold solver's best-of-`iterations` exploits, and a single
/// warm metric would forfeit that.
///
/// Each round constructs both *salvaged* attempts (replaying untouched
/// prior subtrees) and plain attempts from its warm metric; the best
/// partition across all rounds wins, and that round's converged lengths
/// become the next edit's warm seed.
///
/// The outcome mapping mirrors `FlowPartitioner::run_with_budget`: an
/// interrupted metric still constructs (unbudgeted salvage), stops
/// iterating, and yields [`RunOutcome::Degraded`]; an explicit cancel is
/// [`RunOutcome::Cancelled`]; contained probe faults degrade an
/// otherwise-complete run. Reported stats aggregate every round.
///
/// # Errors
///
/// [`EcoError::PriorMismatch`] when the prior state does not fit;
/// [`EcoError::Core`] when no construction produced a feasible partition.
#[allow(clippy::too_many_arguments)]
pub fn warm_partition<R: Rng + ?Sized>(
    new_h: &Hypergraph,
    spec: &TreeSpec,
    params: &PartitionerParams,
    policy: &WarmPolicy,
    prior_partition: &HierarchicalPartition,
    prior_lengths: &[f64],
    report: &TouchedReport,
    rng: &mut R,
    budget: &Budget,
) -> Result<WarmRun, EcoError> {
    if prior_lengths.len() != report.net_map.len() {
        return Err(EcoError::PriorMismatch {
            what: "prior lengths are not sized to the prior netlist's nets",
        });
    }
    if prior_partition.num_nodes() != report.node_map.len() {
        return Err(EcoError::PriorMismatch {
            what: "prior partition is not sized to the prior netlist's nodes",
        });
    }
    if new_h.num_nodes() == 0 {
        return Err(EcoError::Core(CoreError::EmptyNetlist));
    }

    // The edit-locality gate: a non-local edit (too much of the netlist
    // in the touched closure) is better served by fresh metrics. Decided
    // before any rng use, so the fallback consumes the stream exactly as
    // a from-scratch run would.
    let touched_fraction = report.touched_nodes.len() as f64 / new_h.num_nodes() as f64;
    if new_h.num_nodes() < policy.min_warm_nodes || touched_fraction > policy.cold_fallback_fraction
    {
        return cold_fallback(new_h, spec, params, prior_partition, report, rng, budget);
    }

    let carry = report.carry_lengths(prior_lengths, new_h.num_nets());
    let touched_mask = report.touched_mask(new_h.num_nodes());
    let unlimited = Budget::unlimited();

    // Best across every round, with the lengths of the metric that
    // produced it (the next edit's warm seed).
    let mut best: Option<(HierarchicalPartition, f64, SalvageReport, Vec<f64>)> = None;
    let mut last_err = CoreError::EmptyNetlist;
    let mut interrupt: Option<Interrupt> = None;
    let mut metric_irq: Option<Interrupt> = None;
    let mut faulted = false;
    let mut agg = InjectionStats {
        converged: true,
        ..InjectionStats::default()
    };
    let attempts = params.constructions_per_metric.max(1);

    let rounds = params.iterations.max(1);
    let all_nodes: Vec<_> = new_h.nodes().collect();
    'rounds: for round in 0..rounds {
        // Every round re-prices the same touched frontier from the same
        // carried lengths, but with a fresh slice of the rng stream — an
        // independent sample of the stochastic injector. The final round
        // probes the *full* node set: satisfied constraints retire after
        // one cheap probe, while any far constraint an edit invalidated
        // (a new near-zero-length net can shorten distances well outside
        // the touched closure) gets caught and re-injected — so at least
        // one metric in the portfolio is fully re-validated against the
        // edited netlist.
        let active: &[_] = if round + 1 == rounds {
            &all_nodes
        } else {
            &report.touched_nodes
        };
        let (metric, stats) = compute_spreading_metric_warm(
            new_h,
            spec,
            params.flow,
            rng,
            budget,
            &WarmStart {
                lengths: &carry,
                active,
            },
        );
        let round_irq = stats.interrupt;
        faulted |= stats.panicked_probes > 0 || stats.oracle_faults > 0;
        agg.injections += stats.injections;
        agg.rounds += stats.rounds;
        agg.converged &= stats.converged;
        agg.probes += stats.probes;
        agg.wasted_probes += stats.wasted_probes;
        agg.panicked_probes += stats.panicked_probes;
        agg.deferrals += stats.deferrals;
        agg.oracle_faults += stats.oracle_faults;
        agg.probe_time += stats.probe_time;
        agg.commit_time += stats.commit_time;

        // As in the cold partitioner: constructions from an interrupted
        // metric are salvage work and run unbudgeted.
        let construct_budget = if round_irq.is_some() {
            &unlimited
        } else {
            budget
        };

        // Construction portfolio: salvaged attempts (replay untouched
        // prior subtrees, carve only the perturbed remainder) *and*
        // plain attempts from the warm metric. Salvage gives speed and
        // stability; the plain attempts keep quality parity with a cold
        // run when the prior structure is a poor fit for the edited
        // instance. Construction is a small fraction of the metric
        // phase's cost, so doubling the attempts barely dents the warm
        // speedup.
        for attempt in 0..attempts * 2 {
            let salvaged = attempt < attempts;
            let built = if salvaged {
                construct_partition_salvaged(
                    new_h,
                    spec,
                    &metric,
                    rng,
                    construct_budget,
                    prior_partition,
                    &report.node_map,
                    &touched_mask,
                )
            } else {
                construct_partition_budgeted(new_h, spec, &metric, rng, construct_budget)
                    .map(|p| (p, SalvageReport::default()))
            };
            match built {
                Ok((p, salvage)) => {
                    if let Err(e) = validate::validate(new_h, spec, &p) {
                        last_err = CoreError::Model(e);
                        continue;
                    }
                    let c = cost::partition_cost(new_h, spec, &p);
                    if best.as_ref().is_none_or(|(_, b, _, _)| c < *b) {
                        best = Some((p, c, salvage, metric.lengths().to_vec()));
                    }
                }
                Err(CoreError::Interrupted(irq)) => {
                    interrupt = Some(irq);
                    break 'rounds;
                }
                Err(e) => last_err = e,
            }
        }

        if round_irq.is_some() {
            metric_irq = round_irq;
            break;
        }
    }
    agg.interrupt = interrupt.or(metric_irq);

    match best {
        Some((partition, cost, salvage, lengths)) => {
            let outcome = match agg.interrupt {
                None => {
                    if faulted {
                        RunOutcome::Degraded
                    } else {
                        RunOutcome::Complete
                    }
                }
                Some(Interrupt::Cancelled) => RunOutcome::Cancelled,
                Some(_) => RunOutcome::Degraded,
            };
            Ok(WarmRun {
                partition,
                cost,
                lengths,
                outcome,
                stats: agg,
                salvage,
                warm: true,
            })
        }
        None => match interrupt {
            Some(irq) => Err(EcoError::Core(CoreError::Interrupted(irq))),
            None => Err(EcoError::Core(last_err)),
        },
    }
}

/// The non-local-edit path: a full cold solve, with the prior partition's
/// subtrees still offered to the construction portfolio afterwards. Runs
/// off the same rng stream a from-scratch solve would, so (given the same
/// seed) it can only match or beat one.
fn cold_fallback<R: Rng + ?Sized>(
    new_h: &Hypergraph,
    spec: &TreeSpec,
    params: &PartitionerParams,
    prior_partition: &HierarchicalPartition,
    report: &TouchedReport,
    rng: &mut R,
    budget: &Budget,
) -> Result<WarmRun, EcoError> {
    let run = FlowPartitioner::try_new(*params)?.run_with_budget(new_h, spec, rng, budget)?;
    let mut agg = InjectionStats {
        converged: true,
        ..InjectionStats::default()
    };
    for rec in &run.result.history {
        agg.injections += rec.stats.injections;
        agg.rounds += rec.stats.rounds;
        agg.converged &= rec.stats.converged;
        agg.probes += rec.stats.probes;
        agg.wasted_probes += rec.stats.wasted_probes;
        agg.panicked_probes += rec.stats.panicked_probes;
        agg.deferrals += rec.stats.deferrals;
        agg.oracle_faults += rec.stats.oracle_faults;
        agg.probe_time += rec.stats.probe_time;
        agg.commit_time += rec.stats.commit_time;
        agg.interrupt = agg.interrupt.or(rec.stats.interrupt);
    }

    // Salvaged attempts against the winning cold metric: untouched prior
    // subtrees may still beat freshly carved ones.
    let touched_mask = report.touched_mask(new_h.num_nodes());
    let mut partition = run.result.partition;
    let mut best_cost = run.result.cost;
    let mut best_salvage = SalvageReport::default();
    for _ in 0..params.constructions_per_metric.max(1) {
        match construct_partition_salvaged(
            new_h,
            spec,
            &run.result.metric,
            rng,
            budget,
            prior_partition,
            &report.node_map,
            &touched_mask,
        ) {
            Ok((p, salvage)) => {
                if validate::validate(new_h, spec, &p).is_ok() {
                    let c = cost::partition_cost(new_h, spec, &p);
                    if c < best_cost {
                        partition = p;
                        best_cost = c;
                        best_salvage = salvage;
                    }
                }
            }
            Err(CoreError::Interrupted(_)) => break,
            Err(_) => {}
        }
    }

    Ok(WarmRun {
        partition,
        cost: best_cost,
        lengths: run.result.metric.lengths().to_vec(),
        outcome: run.outcome,
        stats: agg,
        salvage: best_salvage,
        warm: false,
    })
}

/// A chained incremental-repartitioning session: holds the current
/// netlist, its partition, and the converged metric lengths, and applies
/// [`NetlistDelta`]s against that state — each warm solve's output
/// becomes the next edit's warm seed.
#[derive(Clone, Debug)]
pub struct EcoSession {
    h: Hypergraph,
    spec: TreeSpec,
    params: PartitionerParams,
    policy: WarmPolicy,
    lengths: Vec<f64>,
    partition: HierarchicalPartition,
    cost: f64,
}

impl EcoSession {
    /// Starts a session with a cold from-scratch solve of `h`.
    ///
    /// # Errors
    ///
    /// [`EcoError::Core`] when the cold solve fails (invalid params,
    /// infeasible instance, …).
    pub fn bootstrap(
        h: Hypergraph,
        spec: TreeSpec,
        params: PartitionerParams,
        seed: u64,
    ) -> Result<Self, EcoError> {
        let result =
            FlowPartitioner::try_new(params)?.run(&h, &spec, &mut StdRng::seed_from_u64(seed))?;
        Ok(EcoSession {
            lengths: result.metric.lengths().to_vec(),
            partition: result.partition,
            cost: result.cost,
            h,
            spec,
            params,
            policy: WarmPolicy::default(),
        })
    }

    /// Resumes a session from an externally stored prior result (a state
    /// file or a server cache entry).
    ///
    /// # Errors
    ///
    /// [`EcoError::PriorMismatch`] when `lengths` or `partition` is not
    /// sized to `h`; [`EcoError::Core`] for invalid params.
    pub fn from_prior(
        h: Hypergraph,
        spec: TreeSpec,
        params: PartitionerParams,
        lengths: Vec<f64>,
        partition: HierarchicalPartition,
        cost: f64,
    ) -> Result<Self, EcoError> {
        FlowPartitioner::try_new(params)?;
        if lengths.len() != h.num_nets() {
            return Err(EcoError::PriorMismatch {
                what: "length vector is not sized to the netlist's nets",
            });
        }
        if partition.num_nodes() != h.num_nodes() {
            return Err(EcoError::PriorMismatch {
                what: "partition is not sized to the netlist's nodes",
            });
        }
        Ok(EcoSession {
            h,
            spec,
            params,
            policy: WarmPolicy::default(),
            lengths,
            partition,
            cost,
        })
    }

    /// Overrides the default [`WarmPolicy`].
    pub fn set_policy(&mut self, policy: WarmPolicy) {
        self.policy = policy;
    }

    /// Starts an edit script against the session's current netlist.
    pub fn delta(&self) -> NetlistDelta {
        NetlistDelta::for_graph(&self.h)
    }

    /// The session's current netlist.
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.h
    }

    /// The session's tree spec.
    pub fn spec(&self) -> &TreeSpec {
        &self.spec
    }

    /// The current incumbent partition.
    pub fn partition(&self) -> &HierarchicalPartition {
        &self.partition
    }

    /// The incumbent's cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The converged per-net lengths of the current netlist.
    pub fn lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// Applies an edit script incrementally: edits the netlist, warm
    /// starts the metric on the touched frontier, constructs with subtree
    /// salvage, and commits the result as the new session state.
    ///
    /// On error the session state is unchanged.
    ///
    /// # Errors
    ///
    /// Delta validation errors from [`NetlistDelta::apply`], plus
    /// [`EcoError::Core`] when the warm solve fails.
    pub fn apply(
        &mut self,
        delta: &NetlistDelta,
        seed: u64,
        budget: &Budget,
    ) -> Result<EcoReport, EcoError> {
        let applied = delta.apply(&self.h)?;
        let run = warm_partition(
            &applied.hypergraph,
            &self.spec,
            &self.params,
            &self.policy,
            &self.partition,
            &self.lengths,
            &applied.report,
            &mut StdRng::seed_from_u64(seed),
            budget,
        )?;
        let report = EcoReport {
            outcome: run.outcome,
            cost: run.cost,
            changed_nodes: applied.report.changed_nodes,
            touched_nodes: applied.report.touched_nodes.len(),
            touched_nets: applied.report.touched_nets.len(),
            stats: run.stats,
            salvage: run.salvage,
            warm: run.warm,
        };
        self.h = applied.hypergraph;
        self.lengths = run.lengths;
        self.partition = run.partition;
        self.cost = run.cost;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::{HypergraphBuilder, NodeId};

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [NodeId::new(i), NodeId::new(i + 1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    fn quick_params() -> PartitionerParams {
        PartitionerParams {
            iterations: 2,
            constructions_per_metric: 2,
            ..PartitionerParams::default()
        }
    }

    #[test]
    fn session_chains_edits_and_stays_valid() {
        let h = chain(16);
        let spec = TreeSpec::full_tree(16, 2, 2, 1.25, 1.0).unwrap();
        let mut s = EcoSession::bootstrap(h, spec, quick_params(), 7).unwrap();
        for round in 0..3u64 {
            let mut d = s.delta();
            let v = d.add_node(1).unwrap();
            let anchor = NodeId::new(round as usize);
            d.add_net(1.0, vec![anchor, v]).unwrap();
            let report = s.apply(&d, 100 + round, &Budget::unlimited()).unwrap();
            assert_eq!(report.outcome, RunOutcome::Complete);
            assert!(report.touched_nodes >= 2);
            validate::validate(s.hypergraph(), s.spec(), s.partition()).unwrap();
            assert_eq!(s.cost(), report.cost);
        }
        assert_eq!(s.hypergraph().num_nodes(), 19);
    }

    #[test]
    fn failed_apply_leaves_the_session_untouched() {
        let h = chain(8);
        let spec = TreeSpec::full_tree(8, 2, 2, 1.25, 1.0).unwrap();
        let mut s = EcoSession::bootstrap(h, spec, quick_params(), 1).unwrap();
        let before_cost = s.cost();
        let mut d = s.delta();
        d.remove_node(NodeId::new(3)).unwrap();
        d.remove_node(NodeId::new(3)).unwrap(); // double removal: typed error
        let err = s.apply(&d, 2, &Budget::unlimited()).unwrap_err();
        assert_eq!(err, EcoError::NodeAlreadyRemoved { node: 3 });
        assert_eq!(s.cost(), before_cost);
        assert_eq!(s.hypergraph().num_nodes(), 8);
    }

    #[test]
    fn from_prior_rejects_mismatched_state() {
        let h = chain(8);
        let spec = TreeSpec::full_tree(8, 2, 2, 1.25, 1.0).unwrap();
        let s = EcoSession::bootstrap(h.clone(), spec.clone(), quick_params(), 1).unwrap();
        let err = EcoSession::from_prior(
            h,
            spec,
            quick_params(),
            vec![1.0; 3], // wrong net count
            s.partition().clone(),
            s.cost(),
        )
        .unwrap_err();
        assert!(matches!(err, EcoError::PriorMismatch { .. }));
    }
}
