//! Typed errors for delta validation and incremental solves.

use std::fmt;

use htp_core::CoreError;
use htp_netlist::NetlistError;

/// Everything that can go wrong building, validating, or applying an
/// incremental edit.
#[derive(Debug, Clone, PartialEq)]
pub enum EcoError {
    /// The delta was recorded against a netlist with different node/net
    /// counts than the one `apply` was handed.
    BaseMismatch {
        /// Node count the delta was recorded against.
        expected_nodes: usize,
        /// Net count the delta was recorded against.
        expected_nets: usize,
        /// Node count of the netlist handed to `apply`.
        got_nodes: usize,
        /// Net count of the netlist handed to `apply`.
        got_nets: usize,
    },
    /// An edit referenced a node id that neither the base netlist nor a
    /// preceding `add_node` defines.
    UnknownNode {
        /// The out-of-range node index.
        node: usize,
    },
    /// An edit referenced a net id that neither the base netlist nor a
    /// preceding `add_net` defines.
    UnknownNet {
        /// The out-of-range net index.
        net: usize,
    },
    /// An edit referenced a node a preceding op already removed.
    NodeAlreadyRemoved {
        /// The doubly-removed node index.
        node: usize,
    },
    /// An edit referenced a net a preceding op already removed.
    NetAlreadyRemoved {
        /// The doubly-removed net index.
        net: usize,
    },
    /// A node was added or resized to size zero (sizes must be ≥ 1).
    ZeroSize {
        /// The offending node index.
        node: usize,
    },
    /// A net capacity was not finite and positive.
    BadCapacity {
        /// The offending capacity value.
        capacity: f64,
    },
    /// An explicitly added net ended up with fewer than two distinct
    /// surviving pins (after node removals in the same delta).
    DegenerateNet {
        /// Distinct surviving pins of the added net.
        distinct_pins: usize,
    },
    /// Applying the delta removed every node.
    EmptyResult,
    /// A prior state handed to the session does not fit its netlist
    /// (wrong length vector or partition node count).
    PriorMismatch {
        /// What did not line up.
        what: &'static str,
    },
    /// Rebuilding the edited netlist failed (rendered
    /// [`NetlistError`]; the source error wraps `io::Error` and is not
    /// `Clone`/`PartialEq`).
    Netlist(String),
    /// The incremental solve itself failed.
    Core(CoreError),
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::BaseMismatch {
                expected_nodes,
                expected_nets,
                got_nodes,
                got_nets,
            } => write!(
                f,
                "delta was recorded against {expected_nodes} nodes / {expected_nets} nets \
                 but applied to {got_nodes} nodes / {got_nets} nets"
            ),
            EcoError::UnknownNode { node } => write!(f, "edit references unknown node {node}"),
            EcoError::UnknownNet { net } => write!(f, "edit references unknown net {net}"),
            EcoError::NodeAlreadyRemoved { node } => {
                write!(f, "node {node} was already removed by an earlier edit")
            }
            EcoError::NetAlreadyRemoved { net } => {
                write!(f, "net {net} was already removed by an earlier edit")
            }
            EcoError::ZeroSize { node } => {
                write!(f, "node {node} would have size zero (sizes must be >= 1)")
            }
            EcoError::BadCapacity { capacity } => {
                write!(f, "net capacity {capacity} is not finite and positive")
            }
            EcoError::DegenerateNet { distinct_pins } => write!(
                f,
                "added net has {distinct_pins} distinct surviving pins (needs >= 2)"
            ),
            EcoError::EmptyResult => write!(f, "the delta removes every node"),
            EcoError::PriorMismatch { what } => {
                write!(f, "prior state does not fit the netlist: {what}")
            }
            EcoError::Netlist(e) => write!(f, "rebuilding the edited netlist failed: {e}"),
            EcoError::Core(e) => write!(f, "incremental solve failed: {e}"),
        }
    }
}

impl std::error::Error for EcoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcoError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for EcoError {
    fn from(e: NetlistError) -> Self {
        EcoError::Netlist(e.to_string())
    }
}

impl From<CoreError> for EcoError {
    fn from(e: CoreError) -> Self {
        EcoError::Core(e)
    }
}
