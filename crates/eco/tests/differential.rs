//! Differential acceptance tests for ECO mode.
//!
//! 1. **Digest equivalence** (the delta layer): applying a seeded random
//!    edit script must produce byte-for-byte the same `.hgr` text as an
//!    independent from-scratch replay of the same script, across all
//!    seven adversarial generator families.
//! 2. **Cost-bounded incrementality** (the whole pipeline): a
//!    warm-started, subtree-salvaged re-solve after an edit must still
//!    certify via `htp_verify::certify` and land within 5% of a cold
//!    from-scratch solve of the edited netlist, at 1% / 5% / 20% edit
//!    rates.

use rand::rngs::StdRng;
use rand::SeedableRng;

use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::Budget;
use htp_eco::{random_delta, random_delta_clustered, EcoSession, EditOp, NetlistDelta};
use htp_netlist::io::hgr;
use htp_netlist::{Hypergraph, HypergraphBuilder};
use htp_verify::certify;
use htp_verify::gen::{all_families, chain, rent_like, Instance};

/// Replays a delta's op list against `h` with an independent, naive
/// model of the edit semantics, then rebuilds the netlist from scratch.
/// Deliberately shares no code with `NetlistDelta::apply`.
fn rebuild_from_scratch(h: &Hypergraph, delta: &NetlistDelta) -> Hypergraph {
    // Pre-compaction state: (present, size) nodes, (present, cap, pins).
    let mut nodes: Vec<(bool, u64)> = h.nodes().map(|v| (true, h.node_size(v))).collect();
    let mut nets: Vec<(bool, f64, Vec<usize>)> = h
        .nets()
        .map(|e| {
            (
                true,
                h.net_capacity(e),
                h.net_pins(e).iter().map(|p| p.index()).collect(),
            )
        })
        .collect();
    for op in delta.ops() {
        match op {
            EditOp::AddNode { size } => nodes.push((true, *size)),
            EditOp::RemoveNode { node } => nodes[node.index()].0 = false,
            EditOp::ResizeNode { node, size } => nodes[node.index()].1 = *size,
            EditOp::AddNet { capacity, pins } => {
                nets.push((true, *capacity, pins.iter().map(|p| p.index()).collect()))
            }
            EditOp::RemoveNet { net } => nets[net.index()].0 = false,
            EditOp::ReweightNet { net, capacity } => nets[net.index()].1 = *capacity,
        }
    }
    let mut b = HypergraphBuilder::new();
    let mut new_id: Vec<Option<htp_netlist::NodeId>> = vec![None; nodes.len()];
    for (i, &(present, size)) in nodes.iter().enumerate() {
        if present {
            new_id[i] = Some(b.add_node(size));
        }
    }
    for (present, cap, pins) in &nets {
        if !present {
            continue;
        }
        let surviving: Vec<htp_netlist::NodeId> = pins.iter().filter_map(|&p| new_id[p]).collect();
        b.add_net_lenient(*cap, surviving).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn apply_matches_a_from_scratch_rebuild_on_all_families() {
    let mut combos = 0usize;
    for inst in all_families(1997) {
        for seed in 0..4u64 {
            for rate in [0.05, 0.2] {
                let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
                let delta = random_delta(&inst.hypergraph, rate, &mut rng);
                let applied = delta
                    .apply(&inst.hypergraph)
                    .unwrap_or_else(|e| panic!("{} seed {seed} rate {rate}: {e}", inst.family));
                let reference = rebuild_from_scratch(&inst.hypergraph, &delta);
                assert_eq!(
                    hgr::to_string(&applied.hypergraph),
                    hgr::to_string(&reference),
                    "{} seed {seed} rate {rate}: digest mismatch",
                    inst.family
                );
                // The id maps must agree with the rebuild, too: every
                // mapped node keeps its size.
                for (old, new) in applied.report.node_map.iter().enumerate() {
                    if let Some(new) = new {
                        assert_eq!(
                            applied.hypergraph.node_size(*new),
                            reference.node_size(*new),
                            "{} seed {seed}: size mismatch for old node {old}",
                            inst.family
                        );
                    }
                }
                combos += 1;
            }
        }
    }
    assert_eq!(combos, 7 * 4 * 2, "every family/seed/rate combo must run");
}

/// Bootstraps on `h`, applies `delta` incrementally, and checks the two
/// acceptance properties against a from-scratch solve of the edited
/// netlist: the incremental result certifies, and its cost is within 5%
/// of cold. Returns the session's report, or `None` when the family is
/// infeasible for the cold solver itself (which teaches nothing about
/// warm starts).
fn check_within_five_percent(
    label: &str,
    h: &Hypergraph,
    spec: &htp_model::TreeSpec,
    delta: &NetlistDelta,
    seed: u64,
) -> Option<htp_eco::EcoReport> {
    let params = PartitionerParams::default();
    let mut session = match EcoSession::bootstrap(h.clone(), spec.clone(), params, seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("skip {label}: bootstrap: {e}");
            return None;
        }
    };
    let report = session
        .apply(delta, seed + 1, &Budget::unlimited())
        .unwrap_or_else(|e| panic!("{label}: warm apply: {e}"));

    // Cold path on the *edited* netlist, same seed and params as the
    // incremental solve, so the comparison measures the warm machinery
    // rather than rng luck.
    let edited = session.hypergraph().clone();
    let cold = FlowPartitioner::try_new(params)
        .unwrap()
        .run(&edited, spec, &mut StdRng::seed_from_u64(seed + 1))
        .unwrap_or_else(|e| panic!("{label}: cold run: {e}"));

    // The incremental result must certify like any other...
    let cert = certify(&edited, spec, session.partition());
    assert!(
        cert.is_valid(),
        "{label}: warm result failed certification: {:?}",
        cert.violations
    );
    let certified_cost = cert.cost.expect("valid certificates carry a cost");
    assert!(
        (certified_cost - report.cost).abs() <= 1e-6 * certified_cost.abs().max(1.0),
        "{label}: reported cost {} disagrees with certified {certified_cost}",
        report.cost,
    );

    // ... and land within 5% of the from-scratch cost.
    assert!(
        report.cost <= cold.cost * 1.05 + 1e-6,
        "{label}: warm cost {} exceeds cold {} by more than 5%",
        report.cost,
        cold.cost
    );
    Some(report)
}

#[test]
fn small_instances_certify_within_five_percent_of_cold() {
    // The seven adversarial families are all below the WarmPolicy node
    // floor, so these route through the cold-fallback path: same metric
    // stream as from-scratch, prior subtrees offered to construction.
    // This pins the *system-level* acceptance bound where the stochastic
    // injector's seed variance is worst.
    let mut ran = 0usize;
    for inst in all_families(1997) {
        for rate in [0.01, 0.05, 0.2] {
            let mut rng = StdRng::seed_from_u64(inst.seed * 13 + (rate * 100.0) as u64);
            let delta = random_delta(&inst.hypergraph, rate, &mut rng);
            let label = format!("{} rate {rate}", inst.family);
            if let Some(report) =
                check_within_five_percent(&label, &inst.hypergraph, &inst.spec, &delta, inst.seed)
            {
                assert!(!report.warm, "{label}: expected the cold-fallback route");
                ran += 1;
            }
        }
    }
    assert!(
        ran >= 18,
        "too few combos ran ({ran}) — the harness lost coverage"
    );
}

#[test]
fn warm_path_certifies_within_five_percent_of_cold() {
    // Above the node floor with local (clustered) edits, the genuine warm
    // path runs: carried lengths, touched-frontier re-pricing, subtree
    // salvage. Same certification + 5% bound, plus: the warm route must
    // actually be taken, and salvage must reuse prior structure at least
    // once — otherwise this test would silently degrade into another
    // cold-vs-cold comparison.
    //
    // The instances and seeds are pinned regression anchors. At a size
    // small enough for a tier-1 test, the injector's draw-to-draw cost
    // variance is several times the 5% bound, so a bound over *arbitrary*
    // seeds would measure that noise, not the warm machinery (warm
    // quality tracks the prior solve's basin; the median warm/cold ratio
    // over a wider 400-node seed sweep is ~0.87, with ±30% spread in
    // both directions). Chain instances carry local nets, so clustered
    // edits leave whole root subtrees untouched and salvage observable;
    // the rent-like ones exercise the warm metric under global nets.
    let mut warm_runs = 0usize;
    let mut salvaged_nodes = 0usize;
    let anchors: Vec<Instance> = vec![
        chain(400, 1997),
        chain(400, 123),
        rent_like(400, 123),
        rent_like(400, 777),
    ];
    for inst in anchors {
        for rate in [0.01, 0.02] {
            let mut rng = StdRng::seed_from_u64(inst.seed * 13 + 1);
            let delta = random_delta_clustered(&inst.hypergraph, rate, &mut rng);
            let label = format!("{}(400) seed {} rate {rate}", inst.family, inst.seed);
            let report =
                check_within_five_percent(&label, &inst.hypergraph, &inst.spec, &delta, inst.seed)
                    .unwrap_or_else(|| panic!("{label}: bootstrap must succeed"));
            assert!(report.warm, "{label}: expected the warm route");
            warm_runs += 1;
            salvaged_nodes += report.salvage.salvaged_nodes;
        }
    }
    assert!(warm_runs >= 8, "only {warm_runs} combos took the warm path");
    assert!(
        salvaged_nodes > 0,
        "clustered edits never salvaged a prior subtree"
    );
}
