//! Error type for the LP machinery.

use std::error::Error;
use std::fmt;

/// Errors raised while building or solving linear programs.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// The restricted LP was reported infeasible — impossible for (P1)
    /// (d = large is always feasible), so it indicates a malformed row.
    Infeasible,
    /// The restricted LP is unbounded — impossible for (P1) with
    /// non-negative objective coefficients; indicates a malformed program.
    Unbounded,
    /// Dimensions of a constraint row disagree with the variable count.
    DimensionMismatch {
        /// Columns supplied.
        got: usize,
        /// Columns expected.
        expected: usize,
    },
    /// A coefficient was NaN or infinite.
    BadCoefficient,
    /// The simplex hit its anti-cycling iteration cap without certifying an
    /// optimum.
    Stalled,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { got, expected } => {
                write!(f, "constraint row has {got} columns, expected {expected}")
            }
            LpError::BadCoefficient => write!(f, "coefficient is NaN or infinite"),
            LpError::Stalled => write!(f, "simplex stalled before certifying an optimum"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        let e = LpError::DimensionMismatch {
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
