//! Separation oracle: violating shortest-path trees as LP rows.
//!
//! For a fixed tree `S(v, k)` with parent structure, Equation 6 of the
//! paper rewrites the left-hand side of a spreading constraint as
//! `Σ_e d(e)·δ(S(v,k), e)`, where `δ(S(v,k), e)` is the total node size of
//! the subtree hanging below net `e`. Since shortest-path distances are
//! never longer than tree-path distances, the tree-linearized constraint is
//! implied by the true constraint — adding it to a restricted LP keeps that
//! LP a *relaxation* of (P1), which is what makes the cutting-plane lower
//! bound valid.

use htp_core::sptree::TreeGrower;
use htp_core::SpreadingMetric;
use htp_model::{gfn, TreeSpec};
use htp_netlist::{Hypergraph, NodeId};

/// One linearized spreading constraint: `Σ_e coeffs[e]·d(e) >= rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstraintRow {
    /// δ coefficients, one per net (dense).
    pub coeffs: Vec<f64>,
    /// The bound `g(s(S(v, k)))`.
    pub rhs: f64,
    /// The source node the tree was grown from (for diagnostics).
    pub source: NodeId,
}

/// Grows the shortest-path tree from `source` under `metric` and returns a
/// row for the **most violated** prefix (largest `g − lhs`), or `None` if
/// every prefix satisfies its constraint within `tolerance`.
pub fn most_violated_row(
    h: &Hypergraph,
    spec: &TreeSpec,
    metric: &SpreadingMetric,
    source: NodeId,
    tolerance: f64,
) -> Option<ConstraintRow> {
    let steps: Vec<_> = TreeGrower::new(h, metric, source).collect();

    // Find the prefix with the worst shortfall.
    let mut size = 0u64;
    let mut lhs = 0.0;
    let mut worst: Option<(usize, f64)> = None;
    for (k, step) in steps.iter().enumerate() {
        size += h.node_size(step.node);
        lhs += step.dist * h.node_size(step.node) as f64;
        let shortfall = gfn::spreading_bound(spec, size) - lhs;
        if shortfall > tolerance && worst.is_none_or(|(_, w)| shortfall > w) {
            worst = Some((k, shortfall));
        }
    }
    let (k, _) = worst?;
    Some(row_for_prefix(h, spec, &steps[..=k], source))
}

/// Builds the δ row for an explicit tree prefix (settle order, source
/// first).
fn row_for_prefix(
    h: &Hypergraph,
    spec: &TreeSpec,
    prefix: &[htp_core::sptree::TreeStep],
    source: NodeId,
) -> ConstraintRow {
    // subtree[u] accumulates the node sizes hanging at-or-below u; walking
    // the prefix in reverse settle order sees every child before its
    // parent.
    let mut subtree = vec![0u64; h.num_nodes()];
    let mut coeffs = vec![0.0; h.num_nets()];
    let mut size = 0u64;
    for step in prefix {
        subtree[step.node.index()] = h.node_size(step.node);
        size += h.node_size(step.node);
    }
    for step in prefix.iter().rev() {
        if let (Some(e), Some(parent)) = (step.via_net, step.parent) {
            coeffs[e.index()] += subtree[step.node.index()] as f64;
            subtree[parent.index()] += subtree[step.node.index()];
        }
    }
    ConstraintRow {
        coeffs,
        rhs: gfn::spreading_bound(spec, size),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::HypergraphBuilder;

    /// Path of 5 unit nodes; C_0 = 2 so prefixes of 3+ need spreading.
    fn fixture() -> (Hypergraph, TreeSpec) {
        let mut b = HypergraphBuilder::with_unit_nodes(5);
        for i in 0..4u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        (
            b.build().unwrap(),
            TreeSpec::new(vec![(2, 2, 1.0), (5, 2, 1.0)]).unwrap(),
        )
    }

    #[test]
    fn zero_metric_yields_a_row_with_subtree_weights() {
        let (h, spec) = fixture();
        let m = SpreadingMetric::zeros(h.num_nets());
        let row = most_violated_row(&h, &spec, &m, NodeId(0), 1e-9).expect("violated");
        // Worst prefix is the whole path: g(5) = 2·3 = 6.
        assert_eq!(row.rhs, 6.0);
        // From node 0, the tree is the path itself: δ of net i (between
        // node i and i+1) is the 4-i nodes hanging beyond it.
        assert_eq!(row.coeffs, vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(row.source, NodeId(0));
    }

    #[test]
    fn row_lhs_matches_distance_sum() {
        // Equation 6: Σ dist·s == Σ δ·d for the tree's own metric.
        let (h, spec) = fixture();
        let m = SpreadingMetric::from_lengths(vec![0.3, 0.7, 0.1, 0.2]);
        // Force a full-tree row by using a huge bound: grow from node 2.
        let steps: Vec<_> = TreeGrower::new(&h, &m, NodeId(2)).collect();
        let row = row_for_prefix(&h, &spec, &steps, NodeId(2));
        let lhs_by_delta: f64 = row
            .coeffs
            .iter()
            .enumerate()
            .map(|(e, &delta)| delta * m.length(htp_netlist::NetId::new(e)))
            .sum();
        let lhs_by_dist: f64 = steps.iter().map(|s| s.dist).sum();
        assert!((lhs_by_delta - lhs_by_dist).abs() < 1e-9);
    }

    #[test]
    fn feasible_metric_yields_no_row() {
        let (h, spec) = fixture();
        // Generous lengths: everything is well spread.
        let m = SpreadingMetric::from_lengths(vec![10.0; 4]);
        for v in h.nodes() {
            assert!(
                most_violated_row(&h, &spec, &m, v, 1e-9).is_none(),
                "source {v}"
            );
        }
    }

    #[test]
    fn violated_row_is_violated_by_the_current_metric() {
        let (h, spec) = fixture();
        let m = SpreadingMetric::from_lengths(vec![0.1; 4]);
        let row = most_violated_row(&h, &spec, &m, NodeId(4), 1e-9).unwrap();
        let lhs: f64 = row
            .coeffs
            .iter()
            .enumerate()
            .map(|(e, &delta)| delta * m.length(htp_netlist::NetId::new(e)))
            .sum();
        assert!(
            lhs < row.rhs,
            "the returned row must cut off the current point"
        );
    }
}
