//! Linear-programming machinery for the spreading-metric formulation (P1).
//!
//! The paper's linear program
//!
//! ```text
//! (P1)  min  Σ_e c(e)·d(e)
//!       s.t. Σ_{u∈S} dist(v,u)·s(u) >= g(s(S))   for all S ⊆ V, v ∈ S
//!            d(e) >= 0
//! ```
//!
//! has exponentially many constraints, but each constraint is *linear in
//! `d` once a shortest-path tree is fixed* (Equation 6 of the paper:
//! `Σ_u dist(v,u)·s(u) = Σ_e d(e)·δ(S(v,k), e)`). This crate solves (P1)
//! exactly on small instances by **row generation**:
//!
//! * [`simplex`] — a dense two-phase primal simplex for
//!   `min c·x, A·x >= b, x >= 0`.
//! * [`separation`] — turns violating shortest-path trees (found with
//!   `htp-core`'s oracle) into constraint rows `Σ_e δ·d(e) >= g`.
//! * [`cutting`] — the loop: solve the restricted LP, separate, add rows,
//!   repeat. Every restricted optimum is a relaxation optimum and therefore
//!   a **valid lower bound** on the cost of any hierarchical tree partition
//!   (Lemma 2); at convergence the bound equals the (P1) optimum over the
//!   paper's constraint family (5).

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod cutting;
pub mod duality;
pub mod error;
pub mod problem;
pub mod separation;
pub mod simplex;

pub use error::LpError;
pub use problem::{LinearProgram, LpOutcome};
