//! The dual of the restricted (P1) — a maximum-flow problem.
//!
//! The paper derives Algorithm 2 from LP duality: assigning a dual
//! variable `f(S(v,k))` to every tree constraint of (P1) yields a program
//! that maximizes total flow over shortest-path trees subject to net
//! capacities — which is exactly why *injecting flow on violated trees*
//! pushes the primal toward feasibility. This module makes that dual
//! explicit for any restricted LP in this crate's standard form
//!
//! ```text
//! primal: min c·x   s.t. A·x >= b, x >= 0
//! dual:   max b·y   s.t. Aᵀ·y <= c, y >= 0
//! ```
//!
//! and checks strong duality with the same simplex, providing an
//! independent certificate for every cutting-plane bound: the dual
//! solution is a concrete tree flow whose value *equals* the primal lower
//! bound.

use crate::simplex::solve;
use crate::{LinearProgram, LpError, LpOutcome};

/// Builds the dual program of `lp`, expressed again in this crate's
/// `min`/`>=` standard form (so the same solver applies): the dual
/// objective is negated, and its `<=` rows are flipped.
///
/// The returned program's optimal *objective* is therefore the negation of
/// the dual optimum; [`solve_dual`] undoes the negation.
///
/// # Errors
///
/// Propagates [`LpError`] from program construction (cannot happen for a
/// well-formed input).
pub fn dual_of(lp: &LinearProgram) -> Result<LinearProgram, LpError> {
    let m = lp.num_constraints();
    let n = lp.num_variables();
    // Variables: y (one per primal constraint). Objective: min (−b)·y.
    let objective: Vec<f64> = lp.rhs().iter().map(|&b| -b).collect();
    let mut dual = LinearProgram::new(objective)?;
    // Rows: for each primal variable j, Σ_i A[i][j]·y_i <= c_j, i.e.
    // Σ_i (−A[i][j])·y_i >= −c_j.
    for j in 0..n {
        let row: Vec<f64> = (0..m).map(|i| -lp.rows()[i][j]).collect();
        dual.add_ge_constraint(row, -lp.objective()[j])?;
    }
    Ok(dual)
}

/// Solves the dual of `lp`, returning `(dual_optimum, y)`.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] when the dual is infeasible (the primal
/// is unbounded) and [`LpError::Unbounded`] when the dual is unbounded (the
/// primal is infeasible).
pub fn solve_dual(lp: &LinearProgram) -> Result<(f64, Vec<f64>), LpError> {
    let dual = dual_of(lp)?;
    match solve(&dual) {
        LpOutcome::Optimal { x, objective } => Ok((-objective, x)),
        LpOutcome::Infeasible => Err(LpError::Infeasible),
        LpOutcome::Unbounded => Err(LpError::Unbounded),
        LpOutcome::Stalled => Err(LpError::Stalled),
    }
}

/// Verifies strong duality for `lp` within `tol`: solves both programs and
/// returns the common optimum. Returns `None` if either side fails to
/// produce an optimum or the optima disagree.
pub fn verify_strong_duality(lp: &LinearProgram, tol: f64) -> Option<f64> {
    let primal = match solve(lp) {
        LpOutcome::Optimal { objective, .. } => objective,
        _ => return None,
    };
    let (dual, _) = solve_dual(lp).ok()?;
    ((primal - dual).abs() <= tol * (1.0 + primal.abs())).then_some(primal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lp(c: Vec<f64>, rows: Vec<(Vec<f64>, f64)>) -> LinearProgram {
        let mut p = LinearProgram::new(c).unwrap();
        for (row, b) in rows {
            p.add_ge_constraint(row, b).unwrap();
        }
        p
    }

    #[test]
    fn textbook_pair() {
        // min 2x + 3y s.t. x + 2y >= 8, 3x + y >= 9 (optimum 13).
        let p = lp(
            vec![2.0, 3.0],
            vec![(vec![1.0, 2.0], 8.0), (vec![3.0, 1.0], 9.0)],
        );
        let (dual_opt, y) = solve_dual(&p).unwrap();
        assert!((dual_opt - 13.0).abs() < 1e-7, "dual {dual_opt}");
        // Dual feasibility: Aᵀy <= c.
        assert!(y[0] + 3.0 * y[1] <= 2.0 + 1e-7);
        assert!(2.0 * y[0] + y[1] <= 3.0 + 1e-7);
        assert_eq!(verify_strong_duality(&p, 1e-7), Some(13.0));
    }

    #[test]
    fn unbounded_primal_has_infeasible_dual() {
        // min -x s.t. x >= 1 is unbounded; its dual must be infeasible.
        let p = lp(vec![-1.0], vec![(vec![1.0], 1.0)]);
        assert!(matches!(solve_dual(&p), Err(LpError::Infeasible)));
        assert_eq!(verify_strong_duality(&p, 1e-7), None);
    }

    #[test]
    fn trivial_program_dualizes_to_zero() {
        let p = lp(vec![1.0, 1.0], vec![]);
        let (dual_opt, y) = solve_dual(&p).unwrap();
        assert_eq!(dual_opt, 0.0);
        assert!(y.is_empty());
    }

    #[test]
    fn duality_certifies_a_cutting_plane_bound() {
        use crate::cutting::{lower_bound, CuttingPlaneParams};
        use htp_model::TreeSpec;
        use htp_netlist::{HypergraphBuilder, NodeId};

        // Rebuild the restricted LP the cutting plane converged on for a
        // small path instance and check its dual matches the bound.
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        for i in 0..3u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let r = lower_bound(&h, &spec, CuttingPlaneParams::default()).unwrap();
        assert!(r.converged);

        // Re-run one separation sweep at the zero metric to regenerate a
        // valid restricted program, then strengthen it with rows separated
        // at the final metric (none exist: it is feasible), and verify the
        // primal/dual agreement on what we do have.
        let zero = htp_core::SpreadingMetric::zeros(h.num_nets());
        let mut p =
            LinearProgram::new(h.nets().map(|e| h.net_capacity(e)).collect::<Vec<_>>()).unwrap();
        for v in h.nodes() {
            if let Some(row) = crate::separation::most_violated_row(&h, &spec, &zero, v, 1e-9) {
                p.add_ge_constraint(row.coeffs, row.rhs).unwrap();
            }
        }
        let common = verify_strong_duality(&p, 1e-6).expect("strong duality holds");
        // This one-round restriction is itself a valid lower bound, so it
        // cannot exceed the converged bound.
        assert!(common <= r.lower_bound + 1e-6);
        assert!(common > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// Strong duality on random feasible, bounded covering LPs.
        #[test]
        fn strong_duality_on_random_lps(
            c in proptest::collection::vec(0.1f64..5.0, 1..4),
            raw_rows in proptest::collection::vec(
                (proptest::collection::vec(0.1f64..4.0, 4), 0.5f64..8.0), 1..5),
        ) {
            let n = c.len();
            let mut p = LinearProgram::new(c).unwrap();
            for (row, b) in raw_rows {
                p.add_ge_constraint(row[..n].to_vec(), b).unwrap();
            }
            prop_assert!(verify_strong_duality(&p, 1e-6).is_some());
        }
    }
}
