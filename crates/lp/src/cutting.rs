//! Cutting-plane (row-generation) solving of (P1) and the Lemma 2 lower
//! bound.
//!
//! Starting from the empty restricted LP, each round solves
//! `min Σ c(e)·d(e)` over the rows generated so far, then asks the
//! separation oracle for violated spreading constraints at the current
//! optimum. Since every restricted LP is a relaxation of (P1), **every
//! round's optimum is already a valid lower bound** on the cost of any
//! feasible hierarchical tree partition; at convergence the bound is the
//! (P1) optimum over the paper's constraint family (5).

use htp_core::constraint::check_feasibility;
use htp_core::SpreadingMetric;
use htp_model::TreeSpec;
use htp_netlist::Hypergraph;

use crate::separation::most_violated_row;
use crate::simplex::solve;
use crate::{LinearProgram, LpError, LpOutcome};

/// Parameters of the cutting-plane loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CuttingPlaneParams {
    /// Maximum solve/separate rounds.
    pub max_rounds: usize,
    /// Constraint-violation slack.
    pub tolerance: f64,
    /// At most this many new rows per round (the most violated ones),
    /// bounding the growth of the dense restricted LP.
    pub rows_per_round: usize,
}

impl Default for CuttingPlaneParams {
    fn default() -> Self {
        CuttingPlaneParams {
            max_rounds: 60,
            tolerance: 1e-7,
            rows_per_round: 24,
        }
    }
}

/// Result of the cutting-plane computation.
#[derive(Clone, Debug)]
pub struct LowerBoundResult {
    /// The best (largest) valid lower bound found: the final restricted
    /// LP's optimum.
    pub lower_bound: f64,
    /// The final fractional metric.
    pub metric: SpreadingMetric,
    /// `true` when no spreading constraint was violated at the final
    /// metric, i.e. `lower_bound` is the exact (P1) optimum over the
    /// constraint family (5).
    pub converged: bool,
    /// Rounds executed.
    pub rounds: usize,
    /// Constraint rows generated in total.
    pub constraints: usize,
}

/// Computes a Lemma 2 lower bound on the cost of every feasible
/// hierarchical tree partition of `h` under `spec`.
///
/// Intended for small instances (the LP is dense); complexity grows with
/// the number of generated rows.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] or [`LpError::Unbounded`] only if the
/// generated program is malformed — structurally impossible for (P1).
pub fn lower_bound(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: CuttingPlaneParams,
) -> Result<LowerBoundResult, LpError> {
    let objective: Vec<f64> = h.nets().map(|e| h.net_capacity(e)).collect();
    let mut lp = LinearProgram::new(objective)?;
    let mut metric = SpreadingMetric::zeros(h.num_nets());
    let mut bound = 0.0;
    let mut rounds = 0;
    let mut converged = false;

    while rounds < params.max_rounds {
        rounds += 1;
        // Separate at the current point: one candidate row per source
        // node, keeping only the most violated ones.
        let mut candidates: Vec<(f64, crate::separation::ConstraintRow)> = h
            .nodes()
            .filter_map(|v| {
                most_violated_row(h, spec, &metric, v, params.tolerance).map(|row| {
                    let lhs: f64 = row
                        .coeffs
                        .iter()
                        .enumerate()
                        .map(|(e, &c)| c * metric.length(htp_netlist::NetId::new(e)))
                        .sum();
                    (row.rhs - lhs, row)
                })
            })
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("shortfalls are not NaN"));
        candidates.truncate(params.rows_per_round);
        let added = candidates.len();
        for (_, row) in candidates {
            // A tiny per-row *downward* perturbation of the right-hand side
            // breaks the heavy degeneracy of near-duplicate tree rows (which
            // otherwise stalls the simplex). Relaxing rhs can only lower
            // the restricted optimum, so the bound stays valid.
            let jitter = 1e-9 * (1.0 + lp.num_constraints() as f64) * (1.0 + row.rhs.abs());
            lp.add_ge_constraint(row.coeffs, row.rhs - jitter)?;
        }
        if added == 0 {
            converged = true;
            break;
        }
        match solve(&lp) {
            LpOutcome::Optimal { x, objective } => {
                metric = SpreadingMetric::from_lengths(x.into_iter().map(|d| d.max(0.0)).collect());
                bound = objective;
            }
            LpOutcome::Infeasible => return Err(LpError::Infeasible),
            LpOutcome::Unbounded => return Err(LpError::Unbounded),
            // The solver gave up on this restriction; the previous round's
            // optimum is still a valid bound, so stop here.
            LpOutcome::Stalled => break,
        }
    }
    if !converged {
        // One last check so `converged` is meaningful at the round cap.
        converged = check_feasibility(h, spec, &metric, params.tolerance).feasible;
    }
    Ok(LowerBoundResult {
        lower_bound: bound,
        metric,
        converged,
        rounds,
        constraints: lp.num_constraints(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_core::lower_bound::verify_lemma1;
    use htp_model::{cost, validate, HierarchicalPartition};
    use htp_netlist::{HypergraphBuilder, NodeId};

    /// Path of 4 unit nodes, C_0 = 2: the optimum cuts the middle net only,
    /// cost 2.
    fn path4() -> (Hypergraph, TreeSpec) {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        for i in 0..3u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        (
            b.build().unwrap(),
            TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap(),
        )
    }

    #[test]
    fn path_bound_is_tight() {
        let (h, spec) = path4();
        let r = lower_bound(&h, &spec, CuttingPlaneParams::default()).unwrap();
        assert!(r.converged, "rounds {}", r.rounds);
        // The optimal partition {0,1}|{2,3} costs 2 and its induced metric
        // is LP-feasible, so the LP optimum is at most 2; spreading
        // constraints force at least 2 here (g(3) = 2 from either end).
        assert!(
            (r.lower_bound - 2.0).abs() < 1e-6,
            "bound {}",
            r.lower_bound
        );
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        assert!((cost::partition_cost(&h, &spec, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bound_never_exceeds_any_valid_partition_cost() {
        // A 2-cluster instance: check the bound against several partitions.
        let mut b = HypergraphBuilder::with_unit_nodes(8);
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (2, 3),
            (0, 3),
            (4, 5),
            (5, 6),
            (6, 7),
            (4, 7),
        ] {
            b.add_net(1.0, [NodeId(x), NodeId(y)]).unwrap();
        }
        b.add_net(1.0, [NodeId(3), NodeId(4)]).unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let r = lower_bound(&h, &spec, CuttingPlaneParams::default()).unwrap();
        assert!(r.converged);

        for assignment in [
            vec![0, 0, 0, 0, 1, 1, 1, 1], // planted: cost 2
            vec![0, 1, 0, 1, 0, 1, 0, 1], // scrambled
            vec![0, 0, 1, 1, 0, 0, 1, 1],
        ] {
            let p = HierarchicalPartition::from_leaf_assignment(1, &assignment).unwrap();
            validate::validate(&h, &spec, &p).unwrap();
            let c = cost::partition_cost(&h, &spec, &p);
            assert!(
                r.lower_bound <= c + 1e-6,
                "bound {} exceeds partition cost {c}",
                r.lower_bound
            );
        }
        // And here the bound certifies the planted optimum.
        assert!(
            (r.lower_bound - 2.0).abs() < 1e-6,
            "bound {}",
            r.lower_bound
        );
    }

    #[test]
    fn converged_metric_is_feasible_for_p1() {
        let (h, spec) = path4();
        let r = lower_bound(&h, &spec, CuttingPlaneParams::default()).unwrap();
        let report = htp_core::constraint::check_feasibility(&h, &spec, &r.metric, 1e-6);
        assert!(report.feasible, "shortfall {}", report.worst_shortfall);
    }

    #[test]
    fn lemma1_metric_bounds_the_lp_from_above() {
        // LP optimum <= objective of any feasible point, in particular the
        // induced metric of a feasible partition (Lemma 1 + Lemma 2 sandwich).
        let (h, spec) = path4();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        let (report, obj) = verify_lemma1(&h, &spec, &p, 1e-9);
        assert!(report.feasible);
        let r = lower_bound(&h, &spec, CuttingPlaneParams::default()).unwrap();
        assert!(r.lower_bound <= obj + 1e-6);
    }

    #[test]
    fn loose_spec_gives_zero_bound() {
        let (h, _) = path4();
        let spec = TreeSpec::new(vec![(10, 2, 1.0), (20, 2, 1.0)]).unwrap();
        let r = lower_bound(&h, &spec, CuttingPlaneParams::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.lower_bound, 0.0);
        assert_eq!(r.constraints, 0);
    }
}
