//! LP model: `min c·x` subject to `A·x >= b`, `x >= 0`.

use crate::LpError;

/// A linear program in the form this crate solves:
/// `min c·x` subject to `A·x >= b` and `x >= 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
}

impl LinearProgram {
    /// A program over `objective.len()` variables with no constraints yet.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::BadCoefficient`] for non-finite objective entries.
    pub fn new(objective: Vec<f64>) -> Result<Self, LpError> {
        if objective.iter().any(|c| !c.is_finite()) {
            return Err(LpError::BadCoefficient);
        }
        Ok(LinearProgram {
            objective,
            rows: Vec::new(),
            rhs: Vec::new(),
        })
    }

    /// Adds the constraint `row · x >= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] or [`LpError::BadCoefficient`].
    pub fn add_ge_constraint(&mut self, row: Vec<f64>, rhs: f64) -> Result<(), LpError> {
        if row.len() != self.objective.len() {
            return Err(LpError::DimensionMismatch {
                got: row.len(),
                expected: self.objective.len(),
            });
        }
        if row.iter().any(|c| !c.is_finite()) || !rhs.is_finite() {
            return Err(LpError::BadCoefficient);
        }
        self.rows.push(row);
        self.rhs.push(rhs);
        Ok(())
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Right-hand sides.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Returns `true` if `x >= 0` satisfies every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.iter().all(|&v| v >= -tol)
            && self
                .rows
                .iter()
                .zip(&self.rhs)
                .all(|(row, &b)| row.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() >= b - tol)
    }
}

/// Outcome of solving a [`LinearProgram`].
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal {
        /// The optimal point.
        x: Vec<f64>,
        /// The optimal objective value.
        objective: f64,
    },
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
    /// The solver hit its anti-cycling iteration cap; the program is
    /// feasible but no optimum (and hence no valid bound) was certified.
    Stalled,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut lp = LinearProgram::new(vec![1.0, 2.0]).unwrap();
        lp.add_ge_constraint(vec![1.0, 1.0], 4.0).unwrap();
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective_value(&[3.0, 1.0]), 5.0);
        assert!(lp.is_feasible(&[3.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[-1.0, 6.0], 1e-9));
    }

    #[test]
    fn rejects_bad_rows() {
        let mut lp = LinearProgram::new(vec![1.0]).unwrap();
        assert!(matches!(
            lp.add_ge_constraint(vec![1.0, 2.0], 0.0),
            Err(LpError::DimensionMismatch {
                got: 2,
                expected: 1
            })
        ));
        assert!(matches!(
            lp.add_ge_constraint(vec![f64::NAN], 0.0),
            Err(LpError::BadCoefficient)
        ));
        assert!(LinearProgram::new(vec![f64::INFINITY]).is_err());
    }
}
