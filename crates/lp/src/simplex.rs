//! Dense two-phase primal simplex.
//!
//! Solves `min c·x` subject to `A·x >= b`, `x >= 0` by converting to
//! equality form with surplus variables, running a phase-1 simplex on
//! artificial variables to find a basic feasible solution, then a phase-2
//! simplex on the real objective. Bland's rule guarantees termination on
//! degenerate instances. Everything is dense and `O(m²·n)` per phase —
//! built for the small row-generated programs of (P1), not for scale.

use crate::{LinearProgram, LpOutcome};

const EPS: f64 = 1e-9;

struct Tableau {
    /// `m` rows over all columns (structural + surplus + artificial).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
}

/// Result of one simplex phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseResult {
    Optimal,
    Unbounded,
    /// The iteration cap was hit (numerical cycling); the tableau holds a
    /// feasible but not provably optimal basis.
    Stalled,
}

impl Tableau {
    /// One simplex phase minimizing `cost` (length = column count).
    /// Only the first `allowed_cols` columns may *enter* the basis — phase 2
    /// passes the structural+surplus count so retired artificials can never
    /// come back.
    ///
    /// Degeneracy is handled with the lexicographic ratio test (each
    /// candidate row is compared by `(rhs, row) / pivot` lexicographically),
    /// which prevents cycling; a generous iteration cap remains as a last
    /// line of defence against floating-point pathologies.
    fn minimize(&mut self, cost: &[f64], allowed_cols: usize) -> PhaseResult {
        let max_iters = 2_000 + 200 * (self.rows.len() + allowed_cols);
        for _ in 0..max_iters {
            // Reduced costs r_j = c_j - c_B · column_j.
            let m = self.rows.len();
            let mut entering = None;
            for j in 0..allowed_cols {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut r = cost[j];
                for i in 0..m {
                    r -= cost[self.basis[i]] * self.rows[i][j];
                }
                if r < -EPS {
                    entering = Some(j); // Bland: smallest improving index
                    break;
                }
            }
            let Some(j) = entering else {
                return PhaseResult::Optimal;
            };

            // Lexicographic ratio test.
            let mut leaving: Option<usize> = None;
            for i in 0..m {
                if self.rows[i][j] <= EPS {
                    continue;
                }
                match leaving {
                    None => leaving = Some(i),
                    Some(l) => {
                        if self.lex_less(i, l, j) {
                            leaving = Some(i);
                        }
                    }
                }
            }
            let Some(i) = leaving else {
                return PhaseResult::Unbounded;
            };
            self.pivot(i, j);
        }
        PhaseResult::Stalled
    }

    /// Lexicographic comparison of candidate leaving rows `a` and `b` for
    /// entering column `j`: compares `(rhs, row) / pivot` entry by entry.
    fn lex_less(&self, a: usize, b: usize, j: usize) -> bool {
        let pa = self.rows[a][j];
        let pb = self.rows[b][j];
        let ra = self.rhs[a] / pa;
        let rb = self.rhs[b] / pb;
        if (ra - rb).abs() > EPS {
            return ra < rb;
        }
        for col in 0..self.rows[a].len() {
            let va = self.rows[a][col] / pa;
            let vb = self.rows[b][col] / pb;
            if (va - vb).abs() > EPS {
                return va < vb;
            }
        }
        false // identical up to tolerance; keep the incumbent
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.rows[row][col];
        for a in &mut self.rows[row] {
            *a /= p;
        }
        self.rhs[row] /= p;
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let f = self.rows[i][col];
            if f.abs() <= EPS {
                self.rows[i][col] = 0.0;
                continue;
            }
            for j in 0..self.rows[i].len() {
                let delta = f * self.rows[row][j];
                self.rows[i][j] -= delta;
            }
            self.rhs[i] -= f * self.rhs[row];
            self.rows[i][col] = 0.0;
        }
        self.basis[row] = col;
    }
}

/// Solves the linear program.
///
/// Returns [`LpOutcome::Optimal`] with a vertex solution,
/// [`LpOutcome::Infeasible`], or [`LpOutcome::Unbounded`].
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    let n = lp.num_variables();
    let m = lp.num_constraints();
    if m == 0 {
        // x = 0 is optimal for any c >= 0; negative c makes it unbounded.
        if lp.objective().iter().any(|&c| c < -EPS) {
            return LpOutcome::Unbounded;
        }
        return LpOutcome::Optimal {
            x: vec![0.0; n],
            objective: 0.0,
        };
    }

    // Columns: structural (n) + surplus (m) + artificial (<= m, appended).
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut artificial_cols: Vec<usize> = Vec::new();

    // First lay out structural + surplus columns.
    for i in 0..m {
        let flip = lp.rhs()[i] < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        let mut row = vec![0.0; n + m];
        for (rj, &a) in row.iter_mut().zip(lp.rows()[i].iter()) {
            *rj = sign * a;
        }
        // Surplus: A·x - s = b  becomes  -A·x + s = -b when flipped.
        row[n + i] = -sign;
        rows.push(row);
        rhs.push(sign * lp.rhs()[i]);
        basis.push(usize::MAX); // fixed below
    }
    // Surplus columns with +1 coefficient can start basic; the rest need an
    // artificial.
    for i in 0..m {
        if rows[i][n + i] > 0.5 {
            basis[i] = n + i;
        }
    }
    let needed: Vec<usize> = (0..m).filter(|&i| basis[i] == usize::MAX).collect();
    let total = n + m + needed.len();
    for row in &mut rows {
        row.resize(total, 0.0);
    }
    for (k, &i) in needed.iter().enumerate() {
        let col = n + m + k;
        rows[i][col] = 1.0;
        basis[i] = col;
        artificial_cols.push(col);
    }

    let mut t = Tableau { rows, rhs, basis };

    // Phase 1: minimize the artificial sum.
    if !artificial_cols.is_empty() {
        let mut cost = vec![0.0; total];
        for &c in &artificial_cols {
            cost[c] = 1.0;
        }
        match t.minimize(&cost, total) {
            PhaseResult::Optimal => {}
            PhaseResult::Unbounded => unreachable!("phase 1 is bounded below by 0"),
            PhaseResult::Stalled => return LpOutcome::Stalled,
        }
        let phase1: f64 = (0..m)
            .filter(|&i| artificial_cols.contains(&t.basis[i]))
            .map(|i| t.rhs[i])
            .sum();
        if phase1 > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any residual artificial out of the basis.
        for i in 0..m {
            if artificial_cols.contains(&t.basis[i]) {
                if let Some(j) = (0..n + m).find(|&j| t.rows[i][j].abs() > EPS) {
                    t.pivot(i, j);
                }
                // A row with no structural pivot is redundant; its rhs is 0
                // (phase 1 succeeded), so leaving the artificial basic at
                // value 0 is harmless for phase 2 as long as its column
                // cost is 0.
            }
        }
    }

    // Phase 2: the real objective (zero cost on surplus and artificials).
    let mut cost = vec![0.0; total];
    cost[..n].copy_from_slice(lp.objective());
    match t.minimize(&cost, n + m) {
        PhaseResult::Optimal => {}
        PhaseResult::Unbounded => return LpOutcome::Unbounded,
        PhaseResult::Stalled => return LpOutcome::Stalled,
    }

    let mut x = vec![0.0; n];
    for i in 0..m {
        if t.basis[i] < n {
            x[t.basis[i]] = t.rhs[i];
        }
    }
    let objective = lp.objective_value(&x);
    LpOutcome::Optimal { x, objective }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearProgram;
    use proptest::prelude::*;

    fn lp(c: Vec<f64>, rows: Vec<(Vec<f64>, f64)>) -> LinearProgram {
        let mut lp = LinearProgram::new(c).unwrap();
        for (row, b) in rows {
            lp.add_ge_constraint(row, b).unwrap();
        }
        lp
    }

    fn optimal(outcome: LpOutcome) -> (Vec<f64>, f64) {
        match outcome {
            LpOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_covering_lp() {
        // min x + 2y s.t. x + y >= 4, x <= 3 (i.e. -x >= -3).
        let p = lp(
            vec![1.0, 2.0],
            vec![(vec![1.0, 1.0], 4.0), (vec![-1.0, 0.0], -3.0)],
        );
        let (x, obj) = optimal(solve(&p));
        assert!((obj - 5.0).abs() < 1e-7, "obj {obj}");
        assert!((x[0] - 3.0).abs() < 1e-7 && (x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn zero_constraints_zero_solution() {
        let p = lp(vec![3.0, 1.0], vec![]);
        let (x, obj) = optimal(solve(&p));
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(obj, 0.0);
    }

    #[test]
    fn unbounded_without_constraints() {
        let p = lp(vec![-1.0], vec![]);
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn unbounded_with_constraints() {
        // min -x s.t. x >= 1: can push x to infinity.
        let p = lp(vec![-1.0], vec![(vec![1.0], 1.0)]);
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_system() {
        // x >= 5 and -x >= -2 (x <= 2).
        let p = lp(vec![1.0], vec![(vec![1.0], 5.0), (vec![-1.0], -2.0)]);
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn degenerate_constraints_terminate() {
        // Multiple identical tight constraints (Bland's rule must not cycle).
        let p = lp(
            vec![1.0, 1.0],
            vec![
                (vec![1.0, 1.0], 2.0),
                (vec![1.0, 1.0], 2.0),
                (vec![2.0, 2.0], 4.0),
                (vec![1.0, 0.0], 0.0),
            ],
        );
        let (_, obj) = optimal(solve(&p));
        assert!((obj - 2.0).abs() < 1e-7);
    }

    #[test]
    fn diet_style_lp() {
        // min 2x + 3y s.t. x + 2y >= 8, 3x + y >= 9.
        // Optimum at intersection: x = 2, y = 3 -> 13.
        let p = lp(
            vec![2.0, 3.0],
            vec![(vec![1.0, 2.0], 8.0), (vec![3.0, 1.0], 9.0)],
        );
        let (x, obj) = optimal(solve(&p));
        assert!((obj - 13.0).abs() < 1e-7, "obj {obj}");
        assert!((x[0] - 2.0).abs() < 1e-7 && (x[1] - 3.0).abs() < 1e-7);
    }

    /// Brute-force optimum by enumerating all vertices (intersections of
    /// `n` tight constraints among rows and axes). Only for tiny LPs.
    fn brute_force(p: &LinearProgram) -> Option<f64> {
        let n = p.num_variables();
        assert!(n == 2, "oracle written for 2 variables");
        let mut candidates: Vec<Vec<f64>> = vec![vec![0.0, 0.0]];
        // All pairs of tight hyperplanes among constraints and axes.
        let mut planes: Vec<(Vec<f64>, f64)> = p
            .rows()
            .iter()
            .zip(p.rhs())
            .map(|(r, &b)| (r.clone(), b))
            .collect();
        planes.push((vec![1.0, 0.0], 0.0));
        planes.push((vec![0.0, 1.0], 0.0));
        for i in 0..planes.len() {
            for j in i + 1..planes.len() {
                let (a1, b1) = (&planes[i].0, planes[i].1);
                let (a2, b2) = (&planes[j].0, planes[j].1);
                let det = a1[0] * a2[1] - a1[1] * a2[0];
                if det.abs() < 1e-9 {
                    continue;
                }
                let x0 = (b1 * a2[1] - a1[1] * b2) / det;
                let x1 = (a1[0] * b2 - b1 * a2[0]) / det;
                candidates.push(vec![x0, x1]);
            }
        }
        candidates
            .into_iter()
            .filter(|x| p.is_feasible(x, 1e-7))
            .map(|x| p.objective_value(&x))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(60))]
        #[test]
        fn matches_vertex_enumeration_on_random_2d_lps(
            c in proptest::collection::vec(0.1f64..5.0, 2),
            rows in proptest::collection::vec(
                (proptest::collection::vec(0.1f64..4.0, 2), 0.5f64..8.0), 1..5),
        ) {
            // Positive coefficients everywhere -> feasible and bounded.
            let mut p = LinearProgram::new(c).unwrap();
            for (row, b) in rows {
                p.add_ge_constraint(row, b).unwrap();
            }
            let (x, obj) = optimal(solve(&p));
            prop_assert!(p.is_feasible(&x, 1e-6), "simplex point infeasible: {:?}", x);
            let brute = brute_force(&p).expect("oracle finds a feasible vertex");
            prop_assert!((obj - brute).abs() < 1e-5,
                "simplex {} vs brute force {}", obj, brute);
        }
    }
}
