//! The HTP ↔ min-cost tree partitioning equivalence: on a fixed hierarchy,
//! the span-based HTP objective equals the Steiner routing cost of the same
//! assignment on the corresponding routed tree. This links the paper's
//! formulation to Vijayan's (reference \[16\]) and cross-validates both cost
//! evaluators against each other.

use htp_model::{cost, HierarchicalPartition, TreeSpec};
use htp_netlist::gen::random::{random_hypergraph, RandomParams};
use htp_netlist::NodeId;
use htp_treepart::{Mapping, RoutedTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn mapping_of(p: &HierarchicalPartition) -> Mapping {
    Mapping::new(
        (0..p.num_nodes())
            .map(|v| p.leaf_of(NodeId::new(v)).0)
            .collect(),
    )
}

#[test]
fn hand_checked_case() {
    // 4 nodes, one net crossing the level-1 boundary.
    let mut b = htp_netlist::HypergraphBuilder::with_unit_nodes(4);
    b.add_net(1.0, [NodeId(1), NodeId(2)]).unwrap();
    let h = b.build().unwrap();
    let spec = TreeSpec::new(vec![(1, 2, 1.0), (2, 2, 2.0), (4, 2, 1.0)]).unwrap();
    let p = HierarchicalPartition::full_kary(2, 2, &[0, 1, 2, 3]).unwrap();
    let htp_cost = cost::partition_cost(&h, &spec, &p);
    assert_eq!(htp_cost, 6.0);

    let tree = RoutedTree::from_partition(&p, &spec);
    let routed = mapping_of(&p).total_cost(&h, &tree);
    assert_eq!(routed, htp_cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Equivalence on random hypergraphs and random balanced assignments
    /// over a height-2 binary hierarchy with non-uniform weights.
    #[test]
    fn span_cost_equals_routing_cost(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hypergraph(
            RandomParams { nodes: 16, nets: 28, min_net_size: 2, max_net_size: 5 },
            &mut rng,
        );
        let spec = TreeSpec::new(vec![(6, 2, 1.0), (10, 2, 3.0), (16, 2, 1.0)]).unwrap();
        let assignment: Vec<usize> =
            (0..16).map(|_| rng.random_range(0..4)).collect();
        let p = HierarchicalPartition::full_kary(2, 2, &assignment).unwrap();

        let htp_cost = cost::partition_cost(&h, &spec, &p);
        let tree = RoutedTree::from_partition(&p, &spec);
        let routed = mapping_of(&p).total_cost(&h, &tree);
        prop_assert!(
            (htp_cost - routed).abs() < 1e-9,
            "span {htp_cost} vs routed {routed}"
        );
    }

    /// The equivalence also survives level gaps (a flat multiway partition
    /// inside a deeper spec).
    #[test]
    fn equivalence_with_level_gaps(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hypergraph(
            RandomParams { nodes: 12, nets: 20, min_net_size: 2, max_net_size: 3 },
            &mut rng,
        );
        let spec = TreeSpec::new(vec![(5, 4, 2.0), (8, 4, 1.0), (12, 4, 0.5)]).unwrap();
        // Leaves hang directly under a level-2 root: levels 0 and 1 share
        // blocks, and the routed tree collapses w_0 + w_1 onto one edge.
        let assignment: Vec<usize> = (0..12).map(|_| rng.random_range(0..3)).collect();
        let p = HierarchicalPartition::from_leaf_assignment(2, &assignment).unwrap();

        let htp_cost = cost::partition_cost(&h, &spec, &p);
        let tree = RoutedTree::from_partition(&p, &spec);
        let routed = mapping_of(&p).total_cost(&h, &tree);
        prop_assert!(
            (htp_cost - routed).abs() < 1e-9,
            "span {htp_cost} vs routed {routed}"
        );
    }
}
