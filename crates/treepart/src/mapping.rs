//! Node→vertex mappings and their routing cost.

use htp_netlist::{Hypergraph, NetId, NodeId};

use crate::RoutedTree;

/// A mapping of netlist nodes onto tree vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    /// `vertex_of[v.index()]` — host vertex of each node.
    vertex_of: Vec<u32>,
}

/// A violated mapping constraint.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MappingViolation {
    /// A node references a vertex outside the tree.
    VertexOutOfRange { node: u32, vertex: u32 },
    /// A vertex holds more size than its capacity.
    OverCapacity {
        vertex: u32,
        size: u64,
        capacity: u64,
    },
}

impl Mapping {
    /// Wraps raw vertex indices.
    pub fn new(vertex_of: Vec<u32>) -> Self {
        Mapping { vertex_of }
    }

    /// The vertex hosting node `v`.
    pub fn vertex_of(&self, v: NodeId) -> usize {
        self.vertex_of[v.index()] as usize
    }

    /// Moves node `v` to `vertex`.
    pub fn relocate(&mut self, v: NodeId, vertex: usize) {
        self.vertex_of[v.index()] = vertex as u32;
    }

    /// Number of mapped nodes.
    pub fn num_nodes(&self) -> usize {
        self.vertex_of.len()
    }

    /// Total node size hosted on each vertex.
    pub fn loads(&self, h: &Hypergraph, tree: &RoutedTree) -> Vec<u64> {
        let mut loads = vec![0u64; tree.num_vertices()];
        for v in h.nodes() {
            loads[self.vertex_of(v)] += h.node_size(v);
        }
        loads
    }

    /// Checks range and capacity constraints (`capacities[t]` bounds the
    /// size directly hosted on vertex `t`).
    pub fn violations(
        &self,
        h: &Hypergraph,
        tree: &RoutedTree,
        capacities: &[u64],
    ) -> Vec<MappingViolation> {
        let mut out = Vec::new();
        for v in h.nodes() {
            let t = self.vertex_of[v.index()];
            if t as usize >= tree.num_vertices() {
                out.push(MappingViolation::VertexOutOfRange {
                    node: v.0,
                    vertex: t,
                });
            }
        }
        if out.is_empty() {
            for (t, &size) in self.loads(h, tree).iter().enumerate() {
                if size > capacities[t] {
                    out.push(MappingViolation::OverCapacity {
                        vertex: t as u32,
                        size,
                        capacity: capacities[t],
                    });
                }
            }
        }
        out
    }

    /// Routing cost of net `e`: `c(e) ·` Steiner weight of its hosts.
    pub fn net_cost(&self, h: &Hypergraph, tree: &RoutedTree, e: NetId) -> f64 {
        let hosts: Vec<usize> = h.net_pins(e).iter().map(|&v| self.vertex_of(v)).collect();
        h.net_capacity(e) * tree.steiner_weight(&hosts)
    }

    /// Total routing cost `Σ_e c(e) · steiner(e)`.
    pub fn total_cost(&self, h: &Hypergraph, tree: &RoutedTree) -> f64 {
        h.nets().map(|e| self.net_cost(h, tree, e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::HypergraphBuilder;

    /// Star tree: root 0 with three leaves at weights 1, 2, 3.
    fn star() -> RoutedTree {
        RoutedTree::new(
            vec![None, Some(0), Some(0), Some(0)],
            vec![0.0, 1.0, 2.0, 3.0],
        )
    }

    fn pair_net() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        b.add_net(2.0, [NodeId(0), NodeId(1)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cost_is_capacity_times_steiner() {
        let tree = star();
        let h = pair_net();
        let m = Mapping::new(vec![1, 3]);
        // Route leaf1 -> root -> leaf3: weight 4, capacity 2 -> 8.
        assert_eq!(m.net_cost(&h, &tree, NetId(0)), 8.0);
        assert_eq!(m.total_cost(&h, &tree), 8.0);
        // Same vertex: zero.
        let m = Mapping::new(vec![2, 2]);
        assert_eq!(m.total_cost(&h, &tree), 0.0);
    }

    #[test]
    fn relocation_updates_cost() {
        let tree = star();
        let h = pair_net();
        let mut m = Mapping::new(vec![1, 3]);
        m.relocate(NodeId(1), 1);
        assert_eq!(m.total_cost(&h, &tree), 0.0);
        assert_eq!(m.vertex_of(NodeId(1)), 1);
    }

    #[test]
    fn violations_catch_overloads_and_ranges() {
        let tree = star();
        let h = pair_net();
        let m = Mapping::new(vec![1, 1]);
        let caps = vec![10, 1, 10, 10];
        let v = m.violations(&h, &tree, &caps);
        assert_eq!(
            v,
            vec![MappingViolation::OverCapacity {
                vertex: 1,
                size: 2,
                capacity: 1
            }]
        );
        let m = Mapping::new(vec![9, 1]);
        assert!(matches!(
            m.violations(&h, &tree, &caps)[0],
            MappingViolation::VertexOutOfRange { vertex: 9, .. }
        ));
    }

    #[test]
    fn internal_vertices_may_host_nodes() {
        // Vijayan's formulation allows nodes anywhere, including the root.
        let tree = star();
        let h = pair_net();
        let m = Mapping::new(vec![0, 2]);
        assert_eq!(m.total_cost(&h, &tree), 2.0 * 2.0);
    }
}
