//! Constructing and improving tree mappings.
//!
//! Vijayan's paper gives an exact algorithm for special cases and
//! heuristics in general; here we provide the practical pair every fixed
//! tree needs: a randomized capacity-respecting construction and a
//! steepest-descent relocation pass (move one node to the vertex that most
//! reduces its nets' routing cost, capacities permitting).

use rand::seq::SliceRandom;
use rand::Rng;

use htp_netlist::{Hypergraph, NodeId};

use crate::{Mapping, RoutedTree};

/// Error raised when a netlist cannot be placed on a tree at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementError {
    /// Total size that had to be placed.
    pub total_size: u64,
    /// Sum of vertex capacities.
    pub total_capacity: u64,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "netlist of size {} exceeds the tree's total capacity {}",
            self.total_size, self.total_capacity
        )
    }
}

impl std::error::Error for PlacementError {}

/// Randomly places every node on a vertex with remaining capacity
/// (first-fit over a shuffled vertex order per node).
///
/// # Errors
///
/// Returns [`PlacementError`] when the total size exceeds the total
/// capacity (first-fit then cannot succeed for unit-dominated sizes).
pub fn random_placement<R: Rng + ?Sized>(
    h: &Hypergraph,
    tree: &RoutedTree,
    capacities: &[u64],
    rng: &mut R,
) -> Result<Mapping, PlacementError> {
    assert_eq!(capacities.len(), tree.num_vertices(), "capacity per vertex");
    let total_size = h.total_size();
    let total_capacity: u64 = capacities.iter().sum();
    if total_size > total_capacity {
        return Err(PlacementError {
            total_size,
            total_capacity,
        });
    }
    let mut remaining: Vec<u64> = capacities.to_vec();
    let mut vertex_of = vec![0u32; h.num_nodes()];
    let mut order: Vec<usize> = (0..tree.num_vertices()).collect();
    let mut nodes: Vec<NodeId> = h.nodes().collect();
    nodes.shuffle(rng);
    for v in nodes {
        order.shuffle(rng);
        let s = h.node_size(v);
        let slot = order
            .iter()
            .copied()
            .find(|&t| remaining[t] >= s)
            .or_else(|| {
                // Fall back to the single largest remaining slot.
                (0..tree.num_vertices()).max_by_key(|&t| remaining[t])
            })
            .ok_or(PlacementError {
                total_size,
                total_capacity,
            })?;
        if remaining[slot] < s {
            return Err(PlacementError {
                total_size,
                total_capacity,
            });
        }
        remaining[slot] -= s;
        vertex_of[v.index()] = slot as u32;
    }
    Ok(Mapping::new(vertex_of))
}

/// Result of an improvement run.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// The improved mapping.
    pub mapping: Mapping,
    /// Cost before.
    pub cost_before: f64,
    /// Cost after (`<= cost_before`).
    pub cost_after: f64,
    /// Relocations applied.
    pub moves: usize,
}

/// Steepest-descent relocation: passes over all nodes, moving each to its
/// best-cost vertex under the capacities, until a pass makes no move or
/// `max_passes` is reached.
pub fn relocate_improve(
    h: &Hypergraph,
    tree: &RoutedTree,
    capacities: &[u64],
    start: &Mapping,
    max_passes: usize,
) -> OptimizeResult {
    let mut mapping = start.clone();
    let cost_before = mapping.total_cost(h, tree);
    let mut loads = mapping.loads(h, tree);
    let mut moves = 0;

    for _ in 0..max_passes {
        let mut moved_this_pass = false;
        for v in h.nodes() {
            let current = mapping.vertex_of(v);
            let size = h.node_size(v);
            // Cost of v's nets as a function of v's host.
            let local = |m: &Mapping| -> f64 {
                h.node_nets(v).iter().map(|&e| m.net_cost(h, tree, e)).sum()
            };
            let before = local(&mapping);
            let mut best = (current, before);
            for t in 0..tree.num_vertices() {
                if t == current || loads[t] + size > capacities[t] {
                    continue;
                }
                mapping.relocate(v, t);
                let cost = local(&mapping);
                if cost < best.1 - 1e-12 {
                    best = (t, cost);
                }
            }
            mapping.relocate(v, best.0);
            if best.0 != current {
                loads[current] -= size;
                loads[best.0] += size;
                moves += 1;
                moved_this_pass = true;
            }
        }
        if !moved_this_pass {
            break;
        }
    }
    let cost_after = mapping.total_cost(h, tree);
    OptimizeResult {
        mapping,
        cost_before,
        cost_after,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two leaves under a root, heavy edges.
    fn vee() -> RoutedTree {
        RoutedTree::new(vec![None, Some(0), Some(0)], vec![0.0, 1.0, 1.0])
    }

    #[test]
    fn random_placement_respects_capacities() {
        let mut b = HypergraphBuilder::new();
        for s in [3, 2, 2, 1] {
            b.add_node(s);
        }
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let h = b.build().unwrap();
        let tree = vee();
        let caps = vec![3, 4, 4];
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_placement(&h, &tree, &caps, &mut rng).unwrap();
            assert!(m.violations(&h, &tree, &caps).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn impossible_placement_errors() {
        let h = HypergraphBuilder::with_unit_nodes(10).build().unwrap();
        let tree = vee();
        let mut rng = StdRng::seed_from_u64(0);
        let err = random_placement(&h, &tree, &[2, 2, 2], &mut rng).unwrap_err();
        assert_eq!(err.total_size, 10);
        assert_eq!(err.total_capacity, 6);
    }

    #[test]
    fn relocation_pulls_connected_nodes_together() {
        // Two cliques placed adversarially across the two leaves.
        let mut b = HypergraphBuilder::with_unit_nodes(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_net(1.0, [NodeId(base + i), NodeId(base + j)])
                        .unwrap();
                }
            }
        }
        let h = b.build().unwrap();
        let tree = vee();
        let caps = vec![0, 5, 5];
        // Interleaved start: clique members alternate leaves.
        let start = Mapping::new(vec![1, 2, 1, 2, 2, 1, 2, 1]);
        let r = relocate_improve(&h, &tree, &caps, &start, 10);
        assert!(r.cost_after < r.cost_before);
        assert_eq!(r.cost_after, 0.0, "each clique fits one leaf");
        assert!(r.mapping.violations(&h, &tree, &caps).is_empty());
    }

    #[test]
    fn optimum_start_is_left_alone() {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let h = b.build().unwrap();
        let tree = vee();
        let start = Mapping::new(vec![1, 1]);
        let r = relocate_improve(&h, &tree, &[2, 2, 2], &start, 5);
        assert_eq!(r.moves, 0);
        assert_eq!(r.cost_after, 0.0);
    }
}
