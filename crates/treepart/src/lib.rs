//! Min-cost tree partitioning — Vijayan's formulation (the paper's
//! reference \[16\]).
//!
//! Vijayan generalized min-cut partitioning to tree structures: map the
//! nodes of a hypergraph onto the vertices of a **fixed routed tree** `T`
//! with weighted edges, subject to per-vertex capacities, minimizing the
//! cost of globally routing every net on `T` — each net pays its capacity
//! times the weight of the minimal (Steiner) subtree of `T` spanning the
//! vertices that host its pins.
//!
//! Hierarchical tree partitioning is the flexible-hierarchy sibling of this
//! problem, and the two objectives coincide on a fixed hierarchy: a
//! hierarchical partition's span cost equals the routing cost on its tree
//! when the edge from a level-`l` vertex to its parent carries weight
//! `Σ_{l <= i < parent_level} w_i` (verified in this crate's tests and in
//! the workspace integration suite).
//!
//! Modules:
//!
//! * [`tree`] — routed trees: distances, LCAs, Steiner subtree weights, and
//!   the conversion from a [`htp_model::HierarchicalPartition`].
//! * [`mapping`] — node→vertex assignments, their routing cost, and
//!   validation.
//! * [`optimize`] — greedy construction and move-based improvement.

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod mapping;
pub mod optimize;
pub mod tree;

pub use mapping::Mapping;
pub use tree::RoutedTree;
