//! Routed trees: the fixed target structure of min-cost tree partitioning.

use htp_model::{HierarchicalPartition, TreeSpec};

/// A rooted tree with non-negative edge weights (each non-root vertex
/// carries the weight of the edge to its parent).
///
/// Vertices are dense indices; vertex 0 need not be the root.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedTree {
    parent: Vec<Option<u32>>,
    up_weight: Vec<f64>,
    children: Vec<Vec<u32>>,
    depth: Vec<u32>,
    /// Distance from the root along tree edges.
    root_dist: Vec<f64>,
    /// Euler/DFS discovery order of each vertex, for Steiner evaluation.
    tour_pos: Vec<u32>,
    root: u32,
}

impl RoutedTree {
    /// Builds a tree from parent pointers (`None` exactly once, at the
    /// root) and per-vertex up-edge weights (ignored for the root).
    ///
    /// # Panics
    ///
    /// Panics if the arrays disagree in length, there is not exactly one
    /// root, a weight is negative/NaN, or the structure contains a cycle.
    pub fn new(parent: Vec<Option<u32>>, up_weight: Vec<f64>) -> Self {
        assert_eq!(parent.len(), up_weight.len(), "arrays must align");
        let n = parent.len();
        assert!(n > 0, "tree needs at least one vertex");
        assert!(
            up_weight.iter().all(|w| *w >= 0.0),
            "edge weights must be non-negative"
        );
        let roots: Vec<usize> = (0..n).filter(|&v| parent[v].is_none()).collect();
        assert_eq!(
            roots.len(),
            1,
            "exactly one root required, got {}",
            roots.len()
        );
        let root = roots[0] as u32;

        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = *p {
                assert!((p as usize) < n, "parent out of range");
                children[p as usize].push(v as u32);
            }
        }

        // Iterative DFS computes depth, root distance, tour order, and
        // detects unreachable vertices (cycles).
        let mut depth = vec![u32::MAX; n];
        let mut root_dist = vec![f64::INFINITY; n];
        let mut tour_pos = vec![u32::MAX; n];
        let mut stack = vec![root];
        depth[root as usize] = 0;
        root_dist[root as usize] = 0.0;
        let mut counter = 0;
        while let Some(v) = stack.pop() {
            tour_pos[v as usize] = counter;
            counter += 1;
            for &c in children[v as usize].iter().rev() {
                depth[c as usize] = depth[v as usize] + 1;
                root_dist[c as usize] = root_dist[v as usize] + up_weight[c as usize];
                stack.push(c);
            }
        }
        assert!(
            depth.iter().all(|&d| d != u32::MAX),
            "tree contains a cycle or disconnected vertex"
        );

        RoutedTree {
            parent,
            up_weight,
            children,
            depth,
            root_dist,
            tour_pos,
            root,
        }
    }

    /// A complete `k`-ary tree of the given height whose level-`l` up-edges
    /// carry weight `Σ_{l <= i < l+1} w_i = w_l` from `spec` — the routed
    /// tree on which HTP span cost equals routing cost.
    pub fn full_kary_from_spec(spec: &TreeSpec, k: usize, height: usize) -> Self {
        assert!(height >= 1 && k >= 2, "need height >= 1 and k >= 2");
        assert!(height <= spec.root_level(), "spec too shallow for the tree");
        let mut parent = vec![None];
        let mut up_weight = vec![0.0];
        let mut frontier = vec![(0u32, height)];
        while let Some((p, level)) = frontier.pop() {
            if level == 0 {
                continue;
            }
            for _ in 0..k {
                let id = parent.len() as u32;
                parent.push(Some(p));
                up_weight.push(spec.weight(level - 1));
                frontier.push((id, level - 1));
            }
        }
        RoutedTree::new(parent, up_weight)
    }

    /// The routed tree of a hierarchical partition: same vertices, with the
    /// up-edge of a vertex at level `l` whose parent sits at level `lp`
    /// carrying `Σ_{l <= i < lp} w_i` (level gaps collapse the skipped
    /// weights onto one edge).
    pub fn from_partition(p: &HierarchicalPartition, spec: &TreeSpec) -> Self {
        let n = p.num_vertices();
        let mut parent = vec![None; n];
        let mut up_weight = vec![0.0; n];
        for q in p.vertices() {
            if let Some(par) = p.parent(q) {
                parent[q.index()] = Some(par.0);
                let lo = p.level(q);
                let hi = p.level(par);
                up_weight[q.index()] = (lo..hi).map(|l| spec.weight(l)).sum();
            }
        }
        RoutedTree::new(parent, up_weight)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// The root vertex.
    pub fn root(&self) -> usize {
        self.root as usize
    }

    /// Parent of a vertex.
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v].map(|p| p as usize)
    }

    /// Children of a vertex.
    pub fn children(&self, v: usize) -> &[u32] {
        &self.children[v]
    }

    /// Weight of the edge from `v` to its parent (0 for the root).
    pub fn up_weight(&self, v: usize) -> f64 {
        self.up_weight[v]
    }

    /// Depth of a vertex (root = 0).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v] as usize
    }

    /// Lowest common ancestor of two vertices.
    pub fn lca(&self, mut a: usize, mut b: usize) -> usize {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("deeper vertex has a parent") as usize;
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("deeper vertex has a parent") as usize;
        }
        while a != b {
            a = self.parent[a].expect("non-root on the walk") as usize;
            b = self.parent[b].expect("non-root on the walk") as usize;
        }
        a
    }

    /// Weighted tree distance between two vertices.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let l = self.lca(a, b);
        self.root_dist[a] + self.root_dist[b] - 2.0 * self.root_dist[l]
    }

    /// Total edge weight of the minimal subtree spanning `terminals`
    /// (0 for fewer than two distinct terminals).
    ///
    /// Uses the classic tour-order identity: with terminals sorted by DFS
    /// discovery order `t_1..t_k`, the Steiner weight is
    /// `(Σ dist(t_i, t_{i+1}) + dist(t_k, t_1)) / 2`.
    pub fn steiner_weight(&self, terminals: &[usize]) -> f64 {
        let mut ts: Vec<usize> = terminals.to_vec();
        ts.sort_unstable();
        ts.dedup();
        if ts.len() < 2 {
            return 0.0;
        }
        ts.sort_by_key(|&v| self.tour_pos[v]);
        let mut total = 0.0;
        for i in 0..ts.len() {
            let next = ts[(i + 1) % ts.len()];
            total += self.distance(ts[i], next);
        }
        total / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A caterpillar: 0 - 1 - 2 with leaves 3 (on 1) and 4 (on 2).
    fn caterpillar() -> RoutedTree {
        RoutedTree::new(
            vec![None, Some(0), Some(1), Some(1), Some(2)],
            vec![0.0, 1.0, 2.0, 5.0, 3.0],
        )
    }

    #[test]
    fn distances_and_lcas() {
        let t = caterpillar();
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(4), 3);
        assert_eq!(t.lca(3, 4), 1);
        assert_eq!(t.distance(3, 4), 5.0 + 2.0 + 3.0);
        assert_eq!(t.distance(0, 0), 0.0);
        assert_eq!(t.distance(0, 2), 3.0);
    }

    #[test]
    fn steiner_weights() {
        let t = caterpillar();
        assert_eq!(t.steiner_weight(&[]), 0.0);
        assert_eq!(t.steiner_weight(&[3]), 0.0);
        assert_eq!(t.steiner_weight(&[3, 3]), 0.0, "duplicates collapse");
        assert_eq!(t.steiner_weight(&[3, 4]), 10.0);
        // {0, 3, 4}: edges 1(up 1.0), 3(5.0), 2(2.0), 4(3.0) -> 11.
        assert_eq!(t.steiner_weight(&[0, 3, 4]), 11.0);
        // All vertices: every edge once.
        assert_eq!(t.steiner_weight(&[0, 1, 2, 3, 4]), 11.0);
    }

    #[test]
    fn full_kary_from_spec_has_level_weights() {
        let spec = TreeSpec::new(vec![(2, 2, 1.5), (4, 2, 4.0), (8, 2, 1.0)]).unwrap();
        let t = RoutedTree::full_kary_from_spec(&spec, 2, 2);
        assert_eq!(t.num_vertices(), 7);
        // Depth-1 vertices sit at level 1: up-weight w_1 = 4; depth-2
        // leaves have w_0 = 1.5.
        for v in 0..7 {
            match t.depth(v) {
                0 => assert_eq!(t.up_weight(v), 0.0),
                1 => assert_eq!(t.up_weight(v), 4.0),
                2 => assert_eq!(t.up_weight(v), 1.5),
                d => panic!("unexpected depth {d}"),
            }
        }
    }

    #[test]
    fn from_partition_collapses_level_gaps() {
        use htp_model::PartitionBuilder;
        use htp_netlist::NodeId;
        // root(3) -> a(1) -> leaf(0): the a-edge spans levels 1..3.
        let mut b = PartitionBuilder::new(1, 3);
        let a = b.add_child(b.root(), 1).unwrap();
        let leaf = b.add_child(a, 0).unwrap();
        b.assign(NodeId(0), leaf).unwrap();
        let p = b.build().unwrap();
        let spec =
            TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 2.0), (16, 2, 4.0), (32, 2, 1.0)]).unwrap();
        let t = RoutedTree::from_partition(&p, &spec);
        assert_eq!(t.up_weight(a.index()), 2.0 + 4.0, "levels 1 and 2 collapse");
        assert_eq!(t.up_weight(leaf.index()), 1.0);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_panic() {
        let _ = RoutedTree::new(vec![None, None], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let _ = RoutedTree::new(vec![None, Some(2), Some(1)], vec![0.0, 1.0, 1.0]);
    }
}
