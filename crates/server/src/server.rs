//! The partitioning job server.
//!
//! One listener thread accepts connections (non-blocking, polling), one
//! handler thread per connection speaks the framed protocol, and a fixed
//! worker pool executes partition jobs ordered by (priority, admission
//! order). The failure discipline, in order of application:
//!
//! 1. **Malformed input** is a typed [`Reply::Error`] — parsing happens
//!    in the connection thread, before admission, and never panics.
//! 2. **Certified cache**: a digest hit is re-certified against the
//!    freshly parsed netlist before being served; a corrupt entry is
//!    invalidated and the job recomputed.
//! 3. **Admission control**: once `queue depth × median job cost`
//!    exceeds the watermark, jobs are shed with a typed
//!    [`Reply::Overloaded`] instead of queuing into a death spiral.
//! 4. **Per-job panic isolation**: the whole pipeline runs under
//!    `catch_unwind`; a poisoned job never takes down the daemon.
//! 5. **Retry with decayed budget**: a job that comes back degraded or
//!    panicked gets one retry at `retry_decay ×` its deadline; the
//!    better of the two attempts is served.
//! 6. **Graceful drain**: [`Server::drain`] stops admissions and the
//!    accept loop, lets in-flight and queued jobs finish, and past the
//!    drain deadline cancels them cooperatively — every accepted job is
//!    still answered (with outcome `cancelled` at worst).

use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use htp_cluster::pipeline::solve_budgeted;
use htp_cluster::vcycle::{vcycle_partition_with_budget, VCycleParams};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::runtime::{Budget, CancelToken, RunOutcome};
use htp_core::SpreadingMetric;
use htp_eco::{warm_partition, TouchedReport, WarmPolicy};
use htp_model::{io as tree_io, HierarchicalPartition, TreeSpec};
use htp_netlist::{io::hgr, Hypergraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{job_digest, CacheEntry, ResultCache};
use crate::json::Json;
use crate::protocol::{
    write_frame, JobRequest, Reply, Request, ResultReply, StatsReply, MAX_FRAME,
};

#[cfg(feature = "fault-injection")]
use crate::fault::ServerFaultPlan;

/// Assumed per-job cost for admission control before any job has
/// finished (milliseconds).
const DEFAULT_ESTIMATE_MS: u64 = 150;

/// How many recent job durations feed the admission-control median.
const DURATION_WINDOW: usize = 64;

/// Relative tolerance when cross-checking a served cost against the
/// independently re-certified one.
const COST_RTOL: f64 = 1e-6;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs (min 1).
    pub workers: usize,
    /// Flow-engine threads per job.
    pub threads_per_job: usize,
    /// Admission watermark: shed when `queue depth × median job ms`
    /// exceeds this.
    pub watermark_ms: u64,
    /// Compute deadline for jobs that do not name one.
    pub default_deadline_ms: u64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// How long [`Server::drain`] lets jobs finish before cancelling
    /// them cooperatively.
    pub drain_deadline_ms: u64,
    /// Budget decay factor for the one-shot retry, in `(0, 1]`.
    pub retry_decay: f64,
    /// When set, the certified cache is persisted here on a graceful
    /// drain and reloaded (with per-entry re-certification) on startup,
    /// so warm-start state survives a daemon restart.
    pub cache_path: Option<String>,
    /// Scripted server-layer faults (tests only).
    #[cfg(feature = "fault-injection")]
    pub faults: ServerFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            threads_per_job: 1,
            watermark_ms: 30_000,
            default_deadline_ms: 10_000,
            cache_capacity: 64,
            drain_deadline_ms: 5_000,
            retry_decay: 0.5,
            cache_path: None,
            #[cfg(feature = "fault-injection")]
            faults: ServerFaultPlan::default(),
        }
    }
}

/// What [`Server::drain`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// `true` when the drain deadline passed and in-flight jobs had to
    /// be cancelled cooperatively (they were still answered).
    pub forced: bool,
    /// Jobs admitted over the server's lifetime.
    pub accepted: u64,
    /// Jobs answered (any outcome or typed error). Equal to `accepted`
    /// after a clean drain.
    pub answered: u64,
}

/// Poison-tolerant mutex lock: a panicking holder must not wedge the
/// daemon, and every structure here is valid at rest.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One admitted job, as the workers see it.
struct JobPayload {
    h: Hypergraph,
    spec: TreeSpec,
    digest: u128,
    seed: u64,
    deadline_ms: Option<u64>,
    multilevel: bool,
    // The job's raw inputs, kept so the cache entry stays
    // self-describing (diff base for warm resubmissions, persistence).
    hgr: String,
    height: usize,
    arity: usize,
    slack: f64,
    /// Prior state for an incremental solve, when the client named a
    /// cached predecessor via `warm_digest`.
    warm: Option<WarmContext>,
}

/// The prior state a warm resubmission solves from.
struct WarmContext {
    prior_partition: HierarchicalPartition,
    prior_lengths: Vec<f64>,
    report: TouchedReport,
}

struct QueuedJob {
    priority: i64,
    seq: u64,
    payload: JobPayload,
    reply: mpsc::Sender<Reply>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first; FIFO among equals.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    answered: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    cache_corruptions: AtomicU64,
    retries: AtomicU64,
    panics_contained: AtomicU64,
    warm_starts: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    queue: Mutex<BinaryHeap<QueuedJob>>,
    queue_cv: Condvar,
    in_flight: AtomicUsize,
    next_seq: AtomicU64,
    cache: Mutex<ResultCache>,
    durations: Mutex<VecDeque<u64>>,
    counters: Counters,
    draining: AtomicBool,
    stop: AtomicBool,
    drain_token: CancelToken,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

struct JobSuccess {
    partition: HierarchicalPartition,
    cost: f64,
    outcome: RunOutcome,
    /// Converged per-net lengths, when the producing route had them
    /// (the warm solver); recomputed from the partition otherwise.
    lengths: Option<Vec<f64>>,
    /// Whether the incremental solver's genuine warm path produced this
    /// (as opposed to a cold solve, or the warm policy's cold fallback).
    warm: bool,
}

enum AttemptFailure {
    Panicked,
    Error(String),
}

type Attempt = Result<JobSuccess, AttemptFailure>;

impl Shared {
    fn new(cfg: ServerConfig) -> Self {
        let cache = ResultCache::new(cfg.cache_capacity);
        Shared {
            cfg,
            queue: Mutex::new(BinaryHeap::new()),
            queue_cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
            cache: Mutex::new(cache),
            durations: Mutex::new(VecDeque::with_capacity(DURATION_WINDOW)),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            drain_token: CancelToken::new(),
            connections: Mutex::new(Vec::new()),
        }
    }

    fn median_job_ms(&self) -> u64 {
        let durations = lock(&self.durations);
        if durations.is_empty() {
            return DEFAULT_ESTIMATE_MS;
        }
        let mut sorted: Vec<u64> = durations.iter().copied().collect();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    fn note_duration(&self, ms: u64) {
        let mut durations = lock(&self.durations);
        if durations.len() == DURATION_WINDOW {
            durations.pop_front();
        }
        durations.push_back(ms);
    }

    fn stats_snapshot(&self) -> StatsReply {
        let queued = lock(&self.queue).len() as u64;
        StatsReply {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_corruptions: self.counters.cache_corruptions.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            panics_contained: self.counters.panics_contained.load(Ordering::Relaxed),
            warm_starts: self.counters.warm_starts.load(Ordering::Relaxed),
            queue_depth: queued + self.in_flight.load(Ordering::Relaxed) as u64,
            draining: self.draining.load(Ordering::Acquire),
        }
    }

    // ---- Request handling (connection threads). -------------------------

    fn handle_frame(self: &Arc<Self>, frame: &[u8]) -> Reply {
        let text = match std::str::from_utf8(frame) {
            Ok(t) => t,
            Err(_) => {
                return Reply::Error {
                    message: "frame is not valid utf-8".into(),
                }
            }
        };
        let doc = match Json::parse(text) {
            Ok(v) => v,
            Err(e) => {
                return Reply::Error {
                    message: format!("malformed json: {e}"),
                }
            }
        };
        let request = match Request::from_json(&doc) {
            Ok(r) => r,
            Err(e) => {
                return Reply::Error {
                    message: e.to_string(),
                }
            }
        };
        match request {
            Request::Ping => Reply::Pong,
            Request::Stats => Reply::Stats(self.stats_snapshot()),
            Request::Partition(job) => self.handle_partition(*job),
        }
    }

    fn handle_partition(&self, req: JobRequest) -> Reply {
        // Parse before anything else: malformed jobs are typed errors no
        // matter the server state, and parsing cannot panic.
        let h = match hgr::from_str(&req.hgr) {
            Ok(h) => h,
            Err(e) => {
                return Reply::Error {
                    message: format!("bad hgr netlist: {e}"),
                }
            }
        };
        let spec = match TreeSpec::full_tree(h.total_size(), req.height, req.arity, req.slack, 1.0)
        {
            Ok(s) => s,
            Err(e) => {
                return Reply::Error {
                    message: format!("bad tree spec: {e}"),
                }
            }
        };
        if self.draining.load(Ordering::Acquire) {
            return Reply::Draining;
        }

        // Certified cache: hits never touch the queue.
        let digest = job_digest(
            &req.hgr,
            req.height,
            req.arity,
            req.slack,
            req.seed,
            req.multilevel,
        );
        // Bind the lookup first: an `if let` on the locked expression
        // would hold the cache guard for the whole block and deadlock on
        // the `invalidate` below.
        let cached = lock(&self.cache).get(digest);
        if let Some(entry) = cached {
            match certified_cache_reply(&h, &spec, &entry) {
                Some(reply) => {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return reply;
                }
                None => {
                    lock(&self.cache).invalidate(digest);
                    self.counters
                        .cache_corruptions
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // A resubmission naming a cached predecessor takes the
        // incremental path: diff the two netlists and hand the prior
        // partition + converged lengths to the warm solver. An unknown or
        // unusable predecessor silently degrades to a cold solve — the
        // hint is an optimization, never a correctness input. Flat route
        // only: the V-cycle has no warm entry point.
        let warm = if req.multilevel {
            None
        } else {
            req.warm_digest
                .as_deref()
                .and_then(|hex| u128::from_str_radix(hex, 16).ok())
                .and_then(|prior| lock(&self.cache).get(prior))
                .and_then(|entry| warm_context(&h, &entry))
        };
        if warm.is_some() {
            self.counters.warm_starts.fetch_add(1, Ordering::Relaxed);
        }

        // Admission control, then enqueue under the same lock so the
        // measured depth stays consistent with the decision.
        let rx = {
            let mut queue = lock(&self.queue);
            let depth = queue.len() + self.in_flight.load(Ordering::Relaxed);
            let estimated_ms = depth as u64 * self.median_job_ms();
            if estimated_ms > self.cfg.watermark_ms {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Reply::Overloaded {
                    queue_depth: depth as u64,
                    estimated_ms,
                };
            }
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = mpsc::channel();
            queue.push(QueuedJob {
                priority: req.priority,
                seq,
                payload: JobPayload {
                    h,
                    spec,
                    digest,
                    seed: req.seed,
                    deadline_ms: req.deadline_ms,
                    multilevel: req.multilevel,
                    hgr: req.hgr,
                    height: req.height,
                    arity: req.arity,
                    slack: req.slack,
                    warm,
                },
                reply: tx,
            });
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            rx
        };
        self.queue_cv.notify_one();
        match rx.recv() {
            Ok(reply) => reply,
            Err(_) => Reply::Error {
                message: "internal: worker dropped the job".into(),
            },
        }
    }

    // ---- Job execution (worker threads). --------------------------------

    fn execute(&self, payload: &JobPayload, seq: u64) -> Reply {
        let start = Instant::now();
        let base_ms = payload
            .deadline_ms
            .unwrap_or(self.cfg.default_deadline_ms)
            .max(1);
        let mut retried = false;
        let mut attempt = self.run_attempt(payload, seq, 0, base_ms);
        let retry_worthwhile = match &attempt {
            Ok(s) => matches!(
                s.outcome,
                RunOutcome::Degraded | RunOutcome::DeadlineExceeded
            ),
            Err(AttemptFailure::Panicked) => true,
            Err(AttemptFailure::Error(_)) => false,
        };
        if retry_worthwhile && !self.draining.load(Ordering::Acquire) {
            retried = true;
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            let decay = self.cfg.retry_decay.clamp(0.05, 1.0);
            let decayed_ms = ((base_ms as f64 * decay).round() as u64).max(1);
            let second = self.run_attempt(payload, seq, 1, decayed_ms);
            attempt = prefer(attempt, second);
        }
        let job_ms = start.elapsed().as_millis() as u64;
        self.note_duration(job_ms);
        match attempt {
            Ok(success) => self.serve_fresh(payload, seq, success, retried, job_ms),
            Err(AttemptFailure::Panicked) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Reply::Error {
                    message: "job panicked on every attempt; the worker contained it and \
                              the daemon is unaffected"
                        .into(),
                }
            }
            Err(AttemptFailure::Error(message)) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Reply::Error { message }
            }
        }
    }

    #[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
    fn run_attempt(
        &self,
        payload: &JobPayload,
        seq: u64,
        attempt: u32,
        deadline_ms: u64,
    ) -> Attempt {
        #[allow(unused_mut)]
        let mut budget = Budget::unlimited()
            .with_deadline(Duration::from_millis(deadline_ms))
            .with_cancel_token(self.drain_token.clone());
        #[cfg(feature = "fault-injection")]
        if self.cfg.faults.should_expire(seq, attempt) {
            budget = budget.with_faults(htp_core::runtime::FaultPlan::new().expire_at_round(1));
        }
        let threads = self.cfg.threads_per_job.max(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            if self.cfg.faults.should_panic(seq, attempt) {
                panic!("fault injection: scripted worker panic");
            }
            let mut rng = StdRng::seed_from_u64(payload.seed);
            if payload.multilevel {
                let mut params = VCycleParams::default();
                params.partitioner.flow.threads = threads;
                params.refine.threads = threads;
                vcycle_partition_with_budget(&payload.h, &payload.spec, params, &mut rng, &budget)
                    .map(|r| JobSuccess {
                        partition: r.partition,
                        cost: r.cost,
                        outcome: r.outcome,
                        lengths: None,
                        warm: false,
                    })
                    .map_err(|e| e.to_string())
            } else if let Some(ctx) = &payload.warm {
                let mut params = PartitionerParams::default();
                params.flow.threads = threads;
                warm_partition(
                    &payload.h,
                    &payload.spec,
                    &params,
                    &WarmPolicy::default(),
                    &ctx.prior_partition,
                    &ctx.prior_lengths,
                    &ctx.report,
                    &mut rng,
                    &budget,
                )
                .map(|run| JobSuccess {
                    partition: run.partition,
                    cost: run.cost,
                    outcome: run.outcome,
                    lengths: Some(run.lengths),
                    warm: run.warm,
                })
                .map_err(|e| e.to_string())
            } else {
                let mut params = PartitionerParams::default();
                params.flow.threads = threads;
                FlowPartitioner::try_new(params)
                    .map_err(|e| e.to_string())
                    .and_then(|partitioner| {
                        solve_budgeted(&partitioner, &payload.h, &payload.spec, &mut rng, &budget)
                            .map_err(|e| e.to_string())
                    })
                    .map(|(partition, outcome)| {
                        let cost =
                            htp_model::cost::partition_cost(&payload.h, &payload.spec, &partition);
                        JobSuccess {
                            partition,
                            cost,
                            outcome,
                            lengths: None,
                            warm: false,
                        }
                    })
            }
        }));
        match outcome {
            Ok(Ok(success)) => Ok(success),
            Ok(Err(e)) => Err(AttemptFailure::Error(e)),
            Err(_) => {
                self.counters
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                Err(AttemptFailure::Panicked)
            }
        }
    }

    #[cfg_attr(not(feature = "fault-injection"), allow(unused_variables))]
    fn serve_fresh(
        &self,
        payload: &JobPayload,
        seq: u64,
        success: JobSuccess,
        retried: bool,
        job_ms: u64,
    ) -> Reply {
        // Every served result passes the clean-room certifier first; a
        // result that fails is a bug, reported as an error rather than
        // handed to the client as truth.
        let cert = htp_verify::certificate::certify(&payload.h, &payload.spec, &success.partition);
        let priced_ok = cert
            .cost
            .is_some_and(|c| (c - success.cost).abs() <= COST_RTOL * c.abs().max(1.0));
        if !cert.is_valid() || !priced_ok {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            return Reply::Error {
                message: "internal: computed result failed independent re-certification".into(),
            };
        }
        let outcome = match success.outcome {
            RunOutcome::Complete => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                "complete"
            }
            RunOutcome::Degraded | RunOutcome::DeadlineExceeded => {
                self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                "degraded"
            }
            _ => {
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                "cancelled"
            }
        };
        // Only complete results are worth remembering: a degraded
        // partition would poison every future duplicate.
        if success.outcome == RunOutcome::Complete {
            // Routes without converged lengths (multilevel, cold-solve)
            // still get a usable warm seed: the per-net cost the realized
            // partition charges, which the warm solver treats as carried
            // lengths to re-price from.
            let lengths = success.lengths.clone().unwrap_or_else(|| {
                SpreadingMetric::from_partition(&payload.h, &payload.spec, &success.partition)
                    .lengths()
                    .to_vec()
            });
            let mut cache = lock(&self.cache);
            cache.put(
                payload.digest,
                CacheEntry {
                    tree: tree_io::to_string(&success.partition),
                    cost: success.cost,
                    hgr: payload.hgr.clone(),
                    height: payload.height,
                    arity: payload.arity,
                    slack: payload.slack,
                    lengths,
                },
            );
            #[cfg(feature = "fault-injection")]
            if self.cfg.faults.should_corrupt_cache(seq) {
                if let Some(entry) = cache.most_recent_mut() {
                    entry.cost += 1.0; // silent bit rot, caught by certify
                }
            }
        }
        Reply::Result(Box::new(ResultReply {
            outcome: outcome.into(),
            cost: success.cost,
            assignment: assignment_text(&payload.h, &success.partition),
            cached: false,
            certified: true,
            retried,
            warm: success.warm,
            job_ms,
        }))
    }
}

/// Builds the prior state a warm resubmission needs out of a cache
/// entry. `None` (cold solve) when the entry cannot be reconstructed —
/// the warm hint must never be able to fail a job.
fn warm_context(new_h: &Hypergraph, entry: &CacheEntry) -> Option<WarmContext> {
    let old_h = hgr::from_str(&entry.hgr).ok()?;
    let prior_partition = tree_io::from_str(&entry.tree).ok()?;
    if prior_partition.num_nodes() != old_h.num_nodes() {
        return None;
    }
    let prior_lengths = if entry.lengths.len() == old_h.num_nets() {
        entry.lengths.clone()
    } else {
        let spec = TreeSpec::full_tree(
            old_h.total_size(),
            entry.height,
            entry.arity,
            entry.slack,
            1.0,
        )
        .ok()?;
        SpreadingMetric::from_partition(&old_h, &spec, &prior_partition)
            .lengths()
            .to_vec()
    };
    let report = htp_eco::diff(&old_h, new_h);
    Some(WarmContext {
        prior_partition,
        prior_lengths,
        report,
    })
}

/// `true` when a persisted cache entry still certifies against its own
/// recorded inputs — the acceptance gate for reloading a snapshot.
fn entry_certifies(entry: &CacheEntry) -> bool {
    let Ok(h) = hgr::from_str(&entry.hgr) else {
        return false;
    };
    let Ok(spec) = TreeSpec::full_tree(h.total_size(), entry.height, entry.arity, entry.slack, 1.0)
    else {
        return false;
    };
    certified_cache_reply(&h, &spec, entry).is_some()
}

/// Re-certifies a cache entry against the freshly parsed inputs; `None`
/// means the entry is corrupt (unparsable, invalid, or mispriced) and
/// must be recomputed.
fn certified_cache_reply(h: &Hypergraph, spec: &TreeSpec, entry: &CacheEntry) -> Option<Reply> {
    let partition = tree_io::from_str(&entry.tree).ok()?;
    let cert = htp_verify::certificate::certify(h, spec, &partition);
    if !cert.is_valid() {
        return None;
    }
    let certified_cost = cert.cost?;
    if (certified_cost - entry.cost).abs() > COST_RTOL * certified_cost.abs().max(1.0) {
        return None;
    }
    Some(Reply::Result(Box::new(ResultReply {
        outcome: "complete".into(),
        cost: entry.cost,
        assignment: assignment_text(h, &partition),
        cached: true,
        certified: true,
        retried: false,
        warm: false,
        job_ms: 0,
    })))
}

/// The CLI's `--out` format: one `<node> <leaf-rank>` line per node,
/// leaves ranked densely in canonical left-to-right tree order (the
/// order `htp verify` assumes when reconstructing the tree).
fn assignment_text(h: &Hypergraph, p: &HierarchicalPartition) -> String {
    use std::fmt::Write as _;
    let leaves = p.leaves_in_order();
    let mut rank = vec![usize::MAX; p.num_vertices()];
    for (i, q) in leaves.iter().enumerate() {
        rank[q.index()] = i;
    }
    let mut out = String::with_capacity(h.num_nodes() * 8);
    for v in h.nodes() {
        let leaf = p.leaf_of(v);
        let _ = writeln!(out, "{} {}", v.index(), rank[leaf.index()]);
    }
    out
}

/// Picks the better of two attempts: success beats failure, a more
/// complete outcome beats a less complete one, and lower cost breaks
/// ties.
fn prefer(first: Attempt, second: Attempt) -> Attempt {
    match (first, second) {
        (Ok(a), Ok(b)) => {
            let rank = |s: &JobSuccess| match s.outcome {
                RunOutcome::Complete => 0u8,
                RunOutcome::Degraded => 1,
                RunOutcome::DeadlineExceeded => 2,
                _ => 3,
            };
            if (rank(&b), b.cost) < (rank(&a), a.cost) {
                Ok(b)
            } else {
                Ok(a)
            }
        }
        (Ok(a), Err(_)) => Ok(a),
        (Err(_), Ok(b)) => Ok(b),
        (Err(a), Err(_)) => Err(a),
    }
}

// ---- Threads. -----------------------------------------------------------

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop() {
                    // Claim in-flight status under the queue lock so the
                    // drain loop can never observe "queue empty, nothing
                    // in flight" while a job is between the two states.
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    break Some(job);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(job) = job else { return };
        let reply = shared.execute(&job.payload, job.seq);
        shared.counters.answered.fetch_add(1, Ordering::Relaxed);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        // A vanished client is not an error; the result simply has no
        // audience.
        let _ = job.reply.send(reply);
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.stop.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || handle_connection(&conn_shared, stream));
                lock(&shared.connections).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        let frame = match read_frame_patient(&mut stream, &shared.stop) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let reply = shared.handle_frame(&frame);
        let payload = reply.to_json().to_string();
        if write_frame(&mut stream, payload.as_bytes()).is_err() {
            return;
        }
    }
}

/// Reads one frame from a stream with a read timeout installed, tracking
/// partial progress across timeouts so a slow frame never desyncs the
/// protocol. Returns `Ok(None)` on clean close or when `stop` is set
/// while idle between frames (plus a short grace mid-frame).
fn read_frame_patient(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    if !read_exact_patient(stream, &mut header, stop, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_patient(stream, &mut payload, stop, false)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        ));
    }
    Ok(Some(payload))
}

fn read_exact_patient(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    idle_ok: bool,
) -> io::Result<bool> {
    let mut filled = 0usize;
    let mut stop_strikes = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && idle_ok {
                    Ok(false)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    // Shutting down: bail once idle, and even mid-frame
                    // after a short grace so drain can finish joining.
                    if filled == 0 && idle_ok {
                        return Ok(false);
                    }
                    stop_strikes += 1;
                    if stop_strikes >= 5 {
                        return Ok(false);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

// ---- The public handle. -------------------------------------------------

/// A running partitioning job server.
pub struct Server {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `cfg.addr` and starts the listener and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn serve(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(cfg));
        // Reload a persisted cache snapshot, keeping only entries that
        // still certify against their own recorded inputs. A missing or
        // unreadable snapshot just means a cold cache — never a failed
        // startup.
        if let Some(path) = shared.cfg.cache_path.clone() {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(doc) = Json::parse(&text) {
                    lock(&shared.cache).restore_from_json(&doc, entry_certifies);
                }
            }
        }
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let worker_shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(worker_shared))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let listener_thread = std::thread::spawn(move || accept_loop(accept_shared, listener));
        Ok(Server {
            shared,
            listener: Some(listener_thread),
            workers,
            addr,
        })
    }

    /// The bound address (useful with `addr = 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live counter snapshot.
    pub fn stats(&self) -> StatsReply {
        self.shared.stats_snapshot()
    }

    /// Gracefully drains and shuts down: stop accepting, answer every
    /// accepted job (cancelling cooperatively past the drain deadline),
    /// then join all threads.
    pub fn drain(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + Duration::from_millis(self.shared.cfg.drain_deadline_ms);
        let mut forced = false;
        loop {
            let backlog = {
                let queue = lock(&self.shared.queue);
                queue.len() + self.shared.in_flight.load(Ordering::SeqCst)
            };
            if backlog == 0 {
                break;
            }
            if !forced && Instant::now() >= deadline {
                // Past the drain deadline: cancel cooperatively. Jobs
                // still finish (salvage path) and get answered.
                forced = true;
                self.shared.drain_token.cancel();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let connections = std::mem::take(&mut *lock(&self.shared.connections));
        for conn in connections {
            let _ = conn.join();
        }
        // Persist the (now quiescent) cache atomically: write a sibling
        // temp file, then rename over the target, so a crash mid-write
        // can never leave a torn snapshot where a good one stood.
        if let Some(path) = &self.shared.cfg.cache_path {
            let doc = lock(&self.shared.cache).to_json().to_string();
            let tmp = format!("{path}.tmp");
            if std::fs::write(&tmp, doc).is_ok() {
                let _ = std::fs::rename(&tmp, path);
            }
        }
        DrainReport {
            forced,
            accepted: self.shared.counters.accepted.load(Ordering::Relaxed),
            answered: self.shared.counters.answered.load(Ordering::Relaxed),
        }
    }
}
