//! The wire protocol: length-prefixed JSON frames and the typed
//! request/reply vocabulary.
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Frames are capped at
//! [`MAX_FRAME`] so a corrupt or hostile length prefix cannot make the
//! server allocate unboundedly. Requests and replies are tagged unions
//! over a `"type"` member; unknown fields are ignored, so the vocabulary
//! can grow without breaking old clients.

use std::io::{self, Read, Write};

use crate::json::{obj, Json};

/// Hard cap on a single frame's payload (64 MiB — comfortably above any
/// realistic netlist, far below an allocation attack).
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame (blocking).
///
/// # Errors
///
/// Propagates I/O errors; `UnexpectedEof` when the peer closed between
/// frames; `InvalidData` for an oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// One partition job as submitted over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// The netlist, in hMETIS `.hgr` text.
    pub hgr: String,
    /// Tree height for the full-tree spec.
    pub height: usize,
    /// Tree arity for the full-tree spec.
    pub arity: usize,
    /// Capacity slack for the full-tree spec.
    pub slack: f64,
    /// RNG seed; fixed seed + fixed netlist = identical result.
    pub seed: u64,
    /// Per-job compute deadline in milliseconds (`None` = server
    /// default).
    pub deadline_ms: Option<u64>,
    /// Scheduling priority: higher runs first among queued jobs.
    pub priority: i64,
    /// Route the job through the multilevel V-cycle instead of flat FLOW.
    pub multilevel: bool,
    /// Digest (32 hex chars) of a previously served job this one is a
    /// small edit of. On a cache miss the server diffs the two netlists
    /// and warm-starts from the prior entry's partition and lengths
    /// instead of solving from scratch. Unknown digests fall back to a
    /// cold solve; flat-route only.
    pub warm_digest: Option<String>,
}

impl Default for JobRequest {
    fn default() -> Self {
        JobRequest {
            hgr: String::new(),
            height: 4,
            arity: 2,
            slack: 1.10,
            seed: 1997,
            deadline_ms: None,
            priority: 0,
            multilevel: false,
            warm_digest: None,
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// A partition job.
    Partition(Box<JobRequest>),
}

/// Counter snapshot returned by [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs answered with outcome `complete`.
    pub completed: u64,
    /// Jobs answered with outcome `degraded`.
    pub degraded: u64,
    /// Jobs answered with outcome `cancelled`.
    pub cancelled: u64,
    /// Jobs answered with a typed error.
    pub failed: u64,
    /// Jobs refused by admission control.
    pub shed: u64,
    /// Results served from the certified cache.
    pub cache_hits: u64,
    /// Cache entries rejected by re-certification and recomputed.
    pub cache_corruptions: u64,
    /// Second attempts after a degraded or panicked first attempt.
    pub retries: u64,
    /// Worker panics contained by the per-job isolation.
    pub panics_contained: u64,
    /// Jobs that took the incremental (warm-started) path.
    pub warm_starts: u64,
    /// Jobs currently queued or running.
    pub queue_depth: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

/// A served partition result.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultReply {
    /// `complete`, `degraded`, or `cancelled`.
    pub outcome: String,
    /// Exact interconnection cost of the served partition.
    pub cost: f64,
    /// `<node> <leaf>` assignment lines (the CLI's `--out` format).
    pub assignment: String,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Whether the result passed independent re-certification.
    pub certified: bool,
    /// Whether a decayed-budget second attempt ran.
    pub retried: bool,
    /// Whether the result came out of the incremental (warm-started)
    /// solver rather than a from-scratch one.
    pub warm: bool,
    /// Wall-clock the job spent computing (0 for cache hits).
    pub job_ms: u64,
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// A served partition.
    Result(Box<ResultReply>),
    /// Admission control refused the job.
    Overloaded {
        /// Jobs queued or running at refusal time.
        queue_depth: u64,
        /// Estimated backlog in milliseconds that tripped the watermark.
        estimated_ms: u64,
    },
    /// The server is draining and accepts no new work.
    Draining,
    /// The job failed with a typed error.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// A malformed message (bad JSON, missing tag, or wrong field types).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// What was wrong with the message.
    pub what: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.what)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(what: impl Into<String>) -> ProtocolError {
    ProtocolError { what: what.into() }
}

impl Request {
    /// Encodes the request as a JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => obj(vec![("type", Json::Str("ping".into()))]),
            Request::Stats => obj(vec![("type", Json::Str("stats".into()))]),
            Request::Partition(job) => {
                let mut members = vec![
                    ("type", Json::Str("partition".into())),
                    ("hgr", Json::Str(job.hgr.clone())),
                    ("height", Json::Num(job.height as f64)),
                    ("arity", Json::Num(job.arity as f64)),
                    ("slack", Json::Num(job.slack)),
                    ("seed", Json::Num(job.seed as f64)),
                    ("priority", Json::Num(job.priority as f64)),
                    ("multilevel", Json::Bool(job.multilevel)),
                ];
                if let Some(ms) = job.deadline_ms {
                    members.push(("deadline_ms", Json::Num(ms as f64)));
                }
                if let Some(digest) = &job.warm_digest {
                    members.push(("warm_digest", Json::Str(digest.clone())));
                }
                obj(members)
            }
        }
    }

    /// Decodes a request from parsed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the tag is missing/unknown or a
    /// field has the wrong type.
    pub fn from_json(v: &Json) -> Result<Request, ProtocolError> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `type` tag"))?;
        match tag {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "partition" => {
                let defaults = JobRequest::default();
                let job =
                    JobRequest {
                        hgr: v
                            .get("hgr")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("partition request needs a string `hgr`"))?
                            .to_owned(),
                        height: usize_field(v, "height", defaults.height)?,
                        arity: usize_field(v, "arity", defaults.arity)?,
                        slack: match v.get("slack") {
                            Some(x) => x.as_f64().ok_or_else(|| bad("`slack` must be a number"))?,
                            None => defaults.slack,
                        },
                        seed: u64_field(v, "seed", defaults.seed)?,
                        deadline_ms: match v.get("deadline_ms") {
                            Some(x) => Some(x.as_u64().ok_or_else(|| {
                                bad("`deadline_ms` must be a non-negative integer")
                            })?),
                            None => None,
                        },
                        priority: match v.get("priority") {
                            Some(x) => x
                                .as_i64()
                                .ok_or_else(|| bad("`priority` must be an integer"))?,
                            None => defaults.priority,
                        },
                        multilevel: match v.get("multilevel") {
                            Some(x) => x
                                .as_bool()
                                .ok_or_else(|| bad("`multilevel` must be a boolean"))?,
                            None => defaults.multilevel,
                        },
                        warm_digest: match v.get("warm_digest") {
                            Some(x) => Some(
                                x.as_str()
                                    .ok_or_else(|| bad("`warm_digest` must be a string"))?
                                    .to_owned(),
                            ),
                            None => None,
                        },
                    };
                Ok(Request::Partition(Box::new(job)))
            }
            other => Err(bad(format!("unknown request type `{other}`"))),
        }
    }
}

impl Reply {
    /// Encodes the reply as a JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Reply::Pong => obj(vec![("type", Json::Str("pong".into()))]),
            Reply::Stats(s) => obj(vec![
                ("type", Json::Str("stats".into())),
                ("accepted", Json::Num(s.accepted as f64)),
                ("completed", Json::Num(s.completed as f64)),
                ("degraded", Json::Num(s.degraded as f64)),
                ("cancelled", Json::Num(s.cancelled as f64)),
                ("failed", Json::Num(s.failed as f64)),
                ("shed", Json::Num(s.shed as f64)),
                ("cache_hits", Json::Num(s.cache_hits as f64)),
                ("cache_corruptions", Json::Num(s.cache_corruptions as f64)),
                ("retries", Json::Num(s.retries as f64)),
                ("panics_contained", Json::Num(s.panics_contained as f64)),
                ("warm_starts", Json::Num(s.warm_starts as f64)),
                ("queue_depth", Json::Num(s.queue_depth as f64)),
                ("draining", Json::Bool(s.draining)),
            ]),
            Reply::Result(r) => obj(vec![
                ("type", Json::Str("result".into())),
                ("outcome", Json::Str(r.outcome.clone())),
                ("cost", Json::Num(r.cost)),
                ("assignment", Json::Str(r.assignment.clone())),
                ("cached", Json::Bool(r.cached)),
                ("certified", Json::Bool(r.certified)),
                ("retried", Json::Bool(r.retried)),
                ("warm", Json::Bool(r.warm)),
                ("job_ms", Json::Num(r.job_ms as f64)),
            ]),
            Reply::Overloaded {
                queue_depth,
                estimated_ms,
            } => obj(vec![
                ("type", Json::Str("overloaded".into())),
                ("queue_depth", Json::Num(*queue_depth as f64)),
                ("estimated_ms", Json::Num(*estimated_ms as f64)),
            ]),
            Reply::Draining => obj(vec![("type", Json::Str("draining".into()))]),
            Reply::Error { message } => obj(vec![
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Decodes a reply from parsed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the tag is missing/unknown or a
    /// field has the wrong type.
    pub fn from_json(v: &Json) -> Result<Reply, ProtocolError> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `type` tag"))?;
        match tag {
            "pong" => Ok(Reply::Pong),
            "stats" => Ok(Reply::Stats(StatsReply {
                accepted: u64_field(v, "accepted", 0)?,
                completed: u64_field(v, "completed", 0)?,
                degraded: u64_field(v, "degraded", 0)?,
                cancelled: u64_field(v, "cancelled", 0)?,
                failed: u64_field(v, "failed", 0)?,
                shed: u64_field(v, "shed", 0)?,
                cache_hits: u64_field(v, "cache_hits", 0)?,
                cache_corruptions: u64_field(v, "cache_corruptions", 0)?,
                retries: u64_field(v, "retries", 0)?,
                panics_contained: u64_field(v, "panics_contained", 0)?,
                warm_starts: u64_field(v, "warm_starts", 0)?,
                queue_depth: u64_field(v, "queue_depth", 0)?,
                draining: v.get("draining").and_then(Json::as_bool).unwrap_or(false),
            })),
            "result" => Ok(Reply::Result(Box::new(ResultReply {
                outcome: v
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("result reply needs a string `outcome`"))?
                    .to_owned(),
                cost: v
                    .get("cost")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("result reply needs a numeric `cost`"))?,
                assignment: v
                    .get("assignment")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
                certified: v.get("certified").and_then(Json::as_bool).unwrap_or(false),
                retried: v.get("retried").and_then(Json::as_bool).unwrap_or(false),
                warm: v.get("warm").and_then(Json::as_bool).unwrap_or(false),
                job_ms: u64_field(v, "job_ms", 0)?,
            }))),
            "overloaded" => Ok(Reply::Overloaded {
                queue_depth: u64_field(v, "queue_depth", 0)?,
                estimated_ms: u64_field(v, "estimated_ms", 0)?,
            }),
            "draining" => Ok(Reply::Draining),
            "error" => Ok(Reply::Error {
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_owned(),
            }),
            other => Err(bad(format!("unknown reply type `{other}`"))),
        }
    }
}

fn u64_field(v: &Json, key: &str, default: u64) -> Result<u64, ProtocolError> {
    match v.get(key) {
        Some(x) => x
            .as_u64()
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
        None => Ok(default),
    }
}

fn usize_field(v: &Json, key: &str, default: usize) -> Result<usize, ProtocolError> {
    u64_field(v, key, default as u64).map(|x| x as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "eof after the last frame");
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = buf.as_slice();
        let e = read_frame(&mut r).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Partition(Box::new(JobRequest {
                hgr: "3 2\n1 2\n2 3\n".into(),
                height: 3,
                arity: 4,
                slack: 1.25,
                seed: 7,
                deadline_ms: Some(50),
                priority: -2,
                multilevel: true,
                warm_digest: None,
            })),
            Request::Partition(Box::new(JobRequest {
                hgr: "3 2\n1 2\n2 3\n".into(),
                warm_digest: Some("00ff00ff00ff00ff00ff00ff00ff00ff".into()),
                ..JobRequest::default()
            })),
        ];
        for req in reqs {
            let text = req.to_json().to_string();
            let back = Request::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn partition_defaults_fill_missing_fields() {
        let v =
            crate::json::Json::parse("{\"type\":\"partition\",\"hgr\":\"1 1\\n1\\n\"}").unwrap();
        let Request::Partition(job) = Request::from_json(&v).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(job.height, 4);
        assert_eq!(job.arity, 2);
        assert_eq!(job.deadline_ms, None);
        assert!(!job.multilevel);
        assert_eq!(job.warm_digest, None);
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Pong,
            Reply::Stats(StatsReply {
                accepted: 5,
                shed: 1,
                cache_hits: 2,
                warm_starts: 3,
                draining: true,
                ..StatsReply::default()
            }),
            Reply::Result(Box::new(ResultReply {
                outcome: "degraded".into(),
                cost: 12.5,
                assignment: "0 0\n1 1\n".into(),
                cached: true,
                certified: true,
                retried: true,
                warm: true,
                job_ms: 48,
            })),
            Reply::Overloaded {
                queue_depth: 9,
                estimated_ms: 1800,
            },
            Reply::Draining,
            Reply::Error {
                message: "boom".into(),
            },
        ];
        for reply in replies {
            let text = reply.to_json().to_string();
            let back = Reply::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn malformed_messages_are_typed_errors() {
        for bad_doc in [
            "{}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"partition\"}",
            "{\"type\":\"partition\",\"hgr\":7}",
            "{\"type\":\"partition\",\"hgr\":\"x\",\"deadline_ms\":-3}",
        ] {
            let v = crate::json::Json::parse(bad_doc).unwrap();
            assert!(Request::from_json(&v).is_err(), "`{bad_doc}` must fail");
        }
        let v = crate::json::Json::parse("{\"type\":\"result\",\"outcome\":\"complete\"}").unwrap();
        assert!(Reply::from_json(&v).is_err(), "result without cost");
    }
}
