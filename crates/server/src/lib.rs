//! `htp-server` — a fault-tolerant, budget-scheduled partitioning job
//! server.
//!
//! Turns the flow-based hierarchical tree partitioner into a daemon:
//! clients submit netlists over a length-prefixed JSON socket protocol
//! ([`protocol`]), a priority worker pool maps per-job deadlines onto
//! the core [`Budget`](htp_core::runtime::Budget) machinery, and every
//! layer is built to degrade rather than die — panics are contained per
//! job, degraded jobs get one retry on a decayed budget, overload sheds
//! with a typed reply, results are served only after independent
//! re-certification, and shutdown drains gracefully with every accepted
//! job answered.
//!
//! The crate is organised as:
//!
//! - [`json`] — a hand-rolled JSON value, parser, and writer (the
//!   workspace is offline and carries no serde).
//! - [`protocol`] — frame codec plus the request/reply vocabulary.
//! - [`cache`] — the certified result cache and job digest.
//! - [`server`] — the daemon itself: admission, workers, drain.
//! - [`client`] — a minimal blocking client for the CLI and tests.
//! - `fault` (feature `fault-injection`) — scripted server-layer faults
//!   keyed by admission sequence.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

#[cfg(feature = "fault-injection")]
pub mod fault;

pub use client::Client;
pub use protocol::{JobRequest, Reply, Request, ResultReply, StatsReply};
pub use server::{DrainReport, Server, ServerConfig};
