//! A minimal blocking client for the job server.
//!
//! One connection, one outstanding request at a time — exactly what the
//! `htp submit` CLI and the tests need. The load-test harness opens
//! several `Client`s to get concurrency.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{read_frame, write_frame, ProtocolError, Reply, Request};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered with something outside the protocol.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A blocking connection to a running [`Server`](crate::Server).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects to `addr`, giving up after `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including the timeout).
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends `request` and blocks for the reply. Partition jobs block
    /// for as long as the job runs, so no read timeout is installed.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a reply outside the protocol.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let payload = request.to_json().to_string();
        write_frame(&mut self.stream, payload.as_bytes())?;
        let frame = read_frame(&mut self.stream)?;
        let text = std::str::from_utf8(&frame).map_err(|_| ProtocolError {
            what: "reply frame is not valid utf-8".into(),
        })?;
        let doc = Json::parse(text).map_err(|e| ProtocolError {
            what: format!("reply is not json: {e}"),
        })?;
        Ok(Reply::from_json(&doc)?)
    }
}
