//! Deterministic failure scripting for the server layer.
//!
//! Extends the core [`FaultPlan`](htp_core::runtime::FaultPlan) idea one
//! layer up: faults are keyed by *admission sequence number* (the 0-based
//! order in which jobs pass admission control), so a test can script
//! "the third admitted job's worker panics" or "corrupt the cache entry
//! the first job writes" and observe exactly the recovery path the
//! production code would take. Compiled only under the
//! `fault-injection` feature; release builds carry no trace of it.

use std::collections::BTreeSet;

/// A scripted set of server-layer faults, keyed by admission sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerFaultPlan {
    panic_first_attempt: BTreeSet<u64>,
    panic_every_attempt: BTreeSet<u64>,
    expire_first_attempt: BTreeSet<u64>,
    corrupt_cache_entry: BTreeSet<u64>,
}

impl ServerFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        ServerFaultPlan::default()
    }

    /// The first attempt of admitted job `seq` panics inside its worker;
    /// the retry runs clean.
    #[must_use]
    pub fn panic_job(mut self, seq: u64) -> Self {
        self.panic_first_attempt.insert(seq);
        self
    }

    /// Every attempt of admitted job `seq` panics — the job is poisoned
    /// and must surface as a typed error, never as a dead daemon.
    #[must_use]
    pub fn poison_job(mut self, seq: u64) -> Self {
        self.panic_every_attempt.insert(seq);
        self
    }

    /// The first attempt of admitted job `seq` runs under a budget whose
    /// deadline is forced to expire immediately (via the core
    /// fault-injection hook), exercising the degraded/retry path without
    /// wall-clock dependence.
    #[must_use]
    pub fn expire_job(mut self, seq: u64) -> Self {
        self.expire_first_attempt.insert(seq);
        self
    }

    /// Corrupt the cache entry written by admitted job `seq` right after
    /// insertion; the next hit must be caught by re-certification.
    #[must_use]
    pub fn corrupt_cache_entry_of(mut self, seq: u64) -> Self {
        self.corrupt_cache_entry.insert(seq);
        self
    }

    /// Should `attempt` (0-based) of job `seq` panic?
    pub fn should_panic(&self, seq: u64, attempt: u32) -> bool {
        self.panic_every_attempt.contains(&seq)
            || (attempt == 0 && self.panic_first_attempt.contains(&seq))
    }

    /// Should `attempt` (0-based) of job `seq` run under a force-expired
    /// budget?
    pub fn should_expire(&self, seq: u64, attempt: u32) -> bool {
        attempt == 0 && self.expire_first_attempt.contains(&seq)
    }

    /// Should the cache entry written by job `seq` be corrupted?
    pub fn should_corrupt_cache(&self, seq: u64) -> bool {
        self.corrupt_cache_entry.contains(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_attempt_aware() {
        let plan = ServerFaultPlan::new()
            .panic_job(1)
            .poison_job(2)
            .expire_job(3)
            .corrupt_cache_entry_of(4);
        assert!(plan.should_panic(1, 0));
        assert!(!plan.should_panic(1, 1), "retry of a panic_job runs clean");
        assert!(plan.should_panic(2, 0) && plan.should_panic(2, 1));
        assert!(plan.should_expire(3, 0));
        assert!(!plan.should_expire(3, 1));
        assert!(plan.should_corrupt_cache(4));
        assert!(!plan.should_panic(0, 0));
        assert!(!plan.should_corrupt_cache(0));
        assert_eq!(ServerFaultPlan::new(), ServerFaultPlan::default());
    }
}
