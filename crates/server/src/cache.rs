//! The certified result cache.
//!
//! Results are keyed by a digest of the job's semantic inputs (netlist
//! text, spec shape, seed, algorithm route) — deadlines and priorities
//! are scheduling concerns and deliberately excluded, so a resubmitted
//! job with a different deadline still hits. Entries store the
//! serialized partition tree plus its cost; the server re-certifies
//! every hit against the freshly parsed netlist before serving, so a
//! corrupt entry (bit rot, a bug, or the fault-injection harness) is
//! detected and recomputed rather than served.
//!
//! The store is a plain most-recently-used vector: capacities are tens
//! of entries, where the O(n) touch is cheaper than a linked-list LRU's
//! pointer chasing and far simpler to audit.
//!
//! Entries also carry the job's own inputs (netlist text, spec shape)
//! and the solve's converged per-net lengths. That turns the cache into
//! the server's warm-start store — a resubmission naming a prior digest
//! can diff its netlist against the entry's and take the incremental
//! path — and makes entries self-describing enough to persist across a
//! drain/restart cycle and re-certify on load.

use crate::json::{obj, Json};

/// One cached result.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// The partition tree, in [`htp_model::io`] text form.
    pub tree: String,
    /// The cost claimed when the entry was stored; re-certification
    /// cross-checks it.
    pub cost: f64,
    /// The job's netlist in `.hgr` text form — the diff base for warm
    /// resubmissions and the certification subject after a reload.
    pub hgr: String,
    /// Tree height of the job's spec.
    pub height: usize,
    /// Tree arity of the job's spec.
    pub arity: usize,
    /// Capacity slack of the job's spec.
    pub slack: f64,
    /// Converged per-net lengths — the warm-metric seed. Empty when the
    /// producing route had none worth keeping.
    pub lengths: Vec<f64>,
}

/// A bounded most-recently-used cache from job digest to result.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    // MRU first.
    entries: Vec<(u128, CacheEntry)>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Looks up `digest`, marking the entry most recently used.
    pub fn get(&mut self, digest: u128) -> Option<CacheEntry> {
        let idx = self.entries.iter().position(|(d, _)| *d == digest)?;
        let entry = self.entries.remove(idx);
        self.entries.insert(0, entry);
        Some(self.entries[0].1.clone())
    }

    /// Inserts (or replaces) the entry for `digest`, evicting the least
    /// recently used entry when full.
    pub fn put(&mut self, digest: u128, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        if let Some(idx) = self.entries.iter().position(|(d, _)| *d == digest) {
            self.entries.remove(idx);
        }
        self.entries.insert(0, (digest, entry));
        self.entries.truncate(self.capacity);
    }

    /// Drops the entry for `digest` (used when re-certification rejects
    /// it).
    pub fn invalidate(&mut self, digest: u128) {
        self.entries.retain(|(d, _)| *d != digest);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutable access to the most recently used entry (the
    /// fault-injection harness corrupts entries through this).
    #[cfg(feature = "fault-injection")]
    pub fn most_recent_mut(&mut self) -> Option<&mut CacheEntry> {
        self.entries.first_mut().map(|(_, e)| e)
    }

    /// Serializes the cache (MRU first) for persistence across a
    /// drain/restart cycle.
    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|(digest, e)| {
                obj(vec![
                    ("digest", Json::Str(format!("{digest:032x}"))),
                    ("tree", Json::Str(e.tree.clone())),
                    ("cost", Json::Num(e.cost)),
                    ("hgr", Json::Str(e.hgr.clone())),
                    ("height", Json::Num(e.height as f64)),
                    ("arity", Json::Num(e.arity as f64)),
                    ("slack", Json::Num(e.slack)),
                    (
                        "lengths",
                        Json::Arr(e.lengths.iter().map(|&d| Json::Num(d)).collect()),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("version", Json::Num(1.0)),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Rebuilds a cache from a persisted document, keeping only entries
    /// that `accept` vouches for (the server re-certifies each against
    /// its own netlist). Malformed entries are skipped, not fatal: a
    /// half-corrupt snapshot still warms whatever survives. Returns the
    /// number of entries restored.
    pub fn restore_from_json<F>(&mut self, doc: &Json, mut accept: F) -> usize
    where
        F: FnMut(&CacheEntry) -> bool,
    {
        let Some(Json::Arr(items)) = doc.get("entries") else {
            return 0;
        };
        let mut restored = 0usize;
        // The snapshot is MRU first; re-inserting in file order via `put`
        // would reverse it, so fill the backing vector directly.
        for item in items {
            if self.entries.len() >= self.capacity {
                break;
            }
            let Some((digest, entry)) = parse_entry(item) else {
                continue;
            };
            if self.entries.iter().any(|(d, _)| *d == digest) || !accept(&entry) {
                continue;
            }
            self.entries.push((digest, entry));
            restored += 1;
        }
        restored
    }
}

fn parse_entry(item: &Json) -> Option<(u128, CacheEntry)> {
    let digest = u128::from_str_radix(item.get("digest")?.as_str()?, 16).ok()?;
    let lengths = match item.get("lengths") {
        Some(Json::Arr(xs)) => xs.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>()?,
        _ => Vec::new(),
    };
    Some((
        digest,
        CacheEntry {
            tree: item.get("tree")?.as_str()?.to_owned(),
            cost: item.get("cost")?.as_f64()?,
            hgr: item.get("hgr")?.as_str()?.to_owned(),
            height: item.get("height")?.as_u64()? as usize,
            arity: item.get("arity")?.as_u64()? as usize,
            slack: item.get("slack")?.as_f64()?,
            lengths,
        },
    ))
}

/// Digests a job's semantic inputs into a 128-bit key: two FNV-1a-64
/// passes with distinct offset bases over the same canonical byte
/// string. Not cryptographic — collision resistance here guards against
/// accidents, not adversaries, and every hit is re-certified anyway.
pub fn job_digest(
    hgr: &str,
    height: usize,
    arity: usize,
    slack: f64,
    seed: u64,
    multilevel: bool,
) -> u128 {
    let mut canonical = Vec::with_capacity(hgr.len() + 64);
    canonical.extend_from_slice(hgr.as_bytes());
    canonical.push(0);
    canonical.extend_from_slice(
        format!(
            "h={height};k={arity};s={:016x};seed={seed};ml={multilevel}",
            slack.to_bits()
        )
        .as_bytes(),
    );
    let lo = fnv1a64(&canonical, 0xcbf2_9ce4_8422_2325);
    let hi = fnv1a64(&canonical, 0x6c62_272e_07bb_0142);
    (u128::from(hi) << 64) | u128::from(lo)
}

fn fnv1a64(bytes: &[u8], offset_basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = offset_basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            tree: tag.to_owned(),
            cost: tag.len() as f64,
            hgr: format!("net {tag}"),
            height: 4,
            arity: 2,
            slack: 1.1,
            lengths: vec![0.5, 1.5],
        }
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_entry() {
        let mut c = ResultCache::new(2);
        c.put(1, entry("a"));
        c.put(2, entry("b"));
        assert!(c.get(1).is_some()); // touch 1: now 2 is LRU
        c.put(3, entry("c"));
        assert!(c.get(2).is_none(), "2 was evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_replaces_and_invalidate_removes() {
        let mut c = ResultCache::new(4);
        c.put(7, entry("old"));
        c.put(7, entry("new"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(7).unwrap().tree, "new");
        c.invalidate(7);
        assert!(c.get(7).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.put(1, entry("a"));
        assert!(c.get(1).is_none());
    }

    #[test]
    fn persistence_round_trips_in_mru_order() {
        let mut c = ResultCache::new(4);
        c.put(1, entry("a"));
        c.put(2, entry("b"));
        c.put(3, entry("c"));
        let doc = c.to_json();
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        let mut back = ResultCache::new(4);
        assert_eq!(back.restore_from_json(&reparsed, |_| true), 3);
        // MRU order survives: 3 is still the freshest, so putting a new
        // entry into a size-3 view would evict 1 first.
        assert_eq!(back.entries[0].0, 3);
        assert_eq!(back.entries[2].0, 1);
        assert_eq!(back.get(2).unwrap(), entry("b"));
    }

    #[test]
    fn restore_respects_capacity_and_the_acceptor() {
        let mut c = ResultCache::new(8);
        for d in 0..4u128 {
            c.put(d, entry(&format!("e{d}")));
        }
        let doc = Json::parse(&c.to_json().to_string()).unwrap();
        let mut small = ResultCache::new(2);
        assert_eq!(small.restore_from_json(&doc, |_| true), 2);
        assert_eq!(small.len(), 2);
        let mut picky = ResultCache::new(8);
        assert_eq!(
            picky.restore_from_json(&doc, |e| e.tree == "e1"),
            1,
            "the acceptor filters entries"
        );
        assert_eq!(picky.get(1).unwrap().tree, "e1");
    }

    #[test]
    fn restore_skips_malformed_entries() {
        let doc = Json::parse(
            "{\"entries\":[{\"digest\":\"zz\"},{\"digest\":\"ff\",\"tree\":\"t\",\
             \"cost\":1.0,\"hgr\":\"h\",\"height\":2,\"arity\":2,\"slack\":1.1,\
             \"lengths\":[1.0]}]}",
        )
        .unwrap();
        let mut c = ResultCache::new(4);
        assert_eq!(c.restore_from_json(&doc, |_| true), 1);
        assert_eq!(c.get(0xff).unwrap().tree, "t");
    }

    #[test]
    fn digests_separate_every_semantic_input() {
        let base = job_digest("1 1\n1\n", 4, 2, 1.1, 1997, false);
        assert_eq!(base, job_digest("1 1\n1\n", 4, 2, 1.1, 1997, false));
        for other in [
            job_digest("1 1\n2\n", 4, 2, 1.1, 1997, false),
            job_digest("1 1\n1\n", 3, 2, 1.1, 1997, false),
            job_digest("1 1\n1\n", 4, 3, 1.1, 1997, false),
            job_digest("1 1\n1\n", 4, 2, 1.2, 1997, false),
            job_digest("1 1\n1\n", 4, 2, 1.1, 1998, false),
            job_digest("1 1\n1\n", 4, 2, 1.1, 1997, true),
        ] {
            assert_ne!(base, other);
        }
    }
}
