//! The certified result cache.
//!
//! Results are keyed by a digest of the job's semantic inputs (netlist
//! text, spec shape, seed, algorithm route) — deadlines and priorities
//! are scheduling concerns and deliberately excluded, so a resubmitted
//! job with a different deadline still hits. Entries store the
//! serialized partition tree plus its cost; the server re-certifies
//! every hit against the freshly parsed netlist before serving, so a
//! corrupt entry (bit rot, a bug, or the fault-injection harness) is
//! detected and recomputed rather than served.
//!
//! The store is a plain most-recently-used vector: capacities are tens
//! of entries, where the O(n) touch is cheaper than a linked-list LRU's
//! pointer chasing and far simpler to audit.

/// One cached result.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// The partition tree, in [`htp_model::io`] text form.
    pub tree: String,
    /// The cost claimed when the entry was stored; re-certification
    /// cross-checks it.
    pub cost: f64,
}

/// A bounded most-recently-used cache from job digest to result.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    // MRU first.
    entries: Vec<(u128, CacheEntry)>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Looks up `digest`, marking the entry most recently used.
    pub fn get(&mut self, digest: u128) -> Option<CacheEntry> {
        let idx = self.entries.iter().position(|(d, _)| *d == digest)?;
        let entry = self.entries.remove(idx);
        self.entries.insert(0, entry);
        Some(self.entries[0].1.clone())
    }

    /// Inserts (or replaces) the entry for `digest`, evicting the least
    /// recently used entry when full.
    pub fn put(&mut self, digest: u128, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        if let Some(idx) = self.entries.iter().position(|(d, _)| *d == digest) {
            self.entries.remove(idx);
        }
        self.entries.insert(0, (digest, entry));
        self.entries.truncate(self.capacity);
    }

    /// Drops the entry for `digest` (used when re-certification rejects
    /// it).
    pub fn invalidate(&mut self, digest: u128) {
        self.entries.retain(|(d, _)| *d != digest);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutable access to the most recently used entry (the
    /// fault-injection harness corrupts entries through this).
    #[cfg(feature = "fault-injection")]
    pub fn most_recent_mut(&mut self) -> Option<&mut CacheEntry> {
        self.entries.first_mut().map(|(_, e)| e)
    }
}

/// Digests a job's semantic inputs into a 128-bit key: two FNV-1a-64
/// passes with distinct offset bases over the same canonical byte
/// string. Not cryptographic — collision resistance here guards against
/// accidents, not adversaries, and every hit is re-certified anyway.
pub fn job_digest(
    hgr: &str,
    height: usize,
    arity: usize,
    slack: f64,
    seed: u64,
    multilevel: bool,
) -> u128 {
    let mut canonical = Vec::with_capacity(hgr.len() + 64);
    canonical.extend_from_slice(hgr.as_bytes());
    canonical.push(0);
    canonical.extend_from_slice(
        format!(
            "h={height};k={arity};s={:016x};seed={seed};ml={multilevel}",
            slack.to_bits()
        )
        .as_bytes(),
    );
    let lo = fnv1a64(&canonical, 0xcbf2_9ce4_8422_2325);
    let hi = fnv1a64(&canonical, 0x6c62_272e_07bb_0142);
    (u128::from(hi) << 64) | u128::from(lo)
}

fn fnv1a64(bytes: &[u8], offset_basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = offset_basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            tree: tag.to_owned(),
            cost: tag.len() as f64,
        }
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_entry() {
        let mut c = ResultCache::new(2);
        c.put(1, entry("a"));
        c.put(2, entry("b"));
        assert!(c.get(1).is_some()); // touch 1: now 2 is LRU
        c.put(3, entry("c"));
        assert!(c.get(2).is_none(), "2 was evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_replaces_and_invalidate_removes() {
        let mut c = ResultCache::new(4);
        c.put(7, entry("old"));
        c.put(7, entry("new"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(7).unwrap().tree, "new");
        c.invalidate(7);
        assert!(c.get(7).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.put(1, entry("a"));
        assert!(c.get(1).is_none());
    }

    #[test]
    fn digests_separate_every_semantic_input() {
        let base = job_digest("1 1\n1\n", 4, 2, 1.1, 1997, false);
        assert_eq!(base, job_digest("1 1\n1\n", 4, 2, 1.1, 1997, false));
        for other in [
            job_digest("1 1\n2\n", 4, 2, 1.1, 1997, false),
            job_digest("1 1\n1\n", 3, 2, 1.1, 1997, false),
            job_digest("1 1\n1\n", 4, 3, 1.1, 1997, false),
            job_digest("1 1\n1\n", 4, 2, 1.2, 1997, false),
            job_digest("1 1\n1\n", 4, 2, 1.1, 1998, false),
            job_digest("1 1\n1\n", 4, 2, 1.1, 1997, true),
        ] {
            assert_ne!(base, other);
        }
    }
}
