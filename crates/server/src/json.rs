//! A minimal JSON value, parser, and writer.
//!
//! The build environment vendors no serde, so the wire format is handled
//! by hand: a small recursive-descent parser over the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null) and a
//! writer that escapes everything the parser understands. Object key
//! order is preserved, which keeps frames byte-stable for a fixed input —
//! useful for tests and digests.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub what: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any syntax violation.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                what: "trailing characters after document",
                at: pos,
            });
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64` (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no NaN/Inf; null is the least-bad encoding.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Convenience constructor for an object literal.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(
    bytes: &[u8],
    pos: &mut usize,
    token: &[u8],
    what: &'static str,
) -> Result<(), JsonError> {
    if bytes.len() >= *pos + token.len() && &bytes[*pos..*pos + token.len()] == token {
        *pos += token.len();
        Ok(())
    } else {
        Err(JsonError { what, at: *pos })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            what: "unexpected end of input",
            at: *pos,
        }),
        Some(b'n') => expect(bytes, pos, b"null", "expected null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, b"true", "expected true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, b"false", "expected false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    what: "expected `,` or `]` in array",
                    at: *pos,
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError {
                what: "expected string key in object",
                at: *pos,
            });
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError {
                what: "expected `:` after object key",
                at: *pos,
            });
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => {
                return Err(JsonError {
                    what: "expected `,` or `}` in object",
                    at: *pos,
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let start = *pos;
    *pos += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    what: "unterminated string",
                    at: start,
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(JsonError {
                            what: "truncated \\u escape",
                            at: *pos,
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            what: "bad \\u escape",
                            at: *pos,
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            what: "bad \\u escape",
                            at: *pos,
                        })?;
                        // Surrogates would need pairing; the writer never
                        // emits them, so reject rather than mis-decode.
                        let c = char::from_u32(code).ok_or(JsonError {
                            what: "unpaired surrogate in \\u escape",
                            at: *pos,
                        })?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            what: "unknown escape",
                            at: *pos,
                        })
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                // Consume one UTF-8 scalar (the input came from a &str,
                // so sequences are well-formed; the length comes straight
                // from the leading byte).
                let step = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + step)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or(JsonError {
                        what: "invalid utf-8 in string",
                        at: *pos,
                    })?;
                out.push_str(chunk);
                *pos += step;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(JsonError {
            what: "expected a value",
            at: start,
        });
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(JsonError {
            what: "malformed number",
            at: start,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let doc = obj(vec![
            ("s", Json::Str("a \"quoted\"\nline\t\\x \u{1F600}".into())),
            ("n", Json::Num(-12.5)),
            ("i", Json::Num(42.0)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            (
                "a",
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Str("x".into()),
                    Json::Bool(false),
                ]),
            ),
            ("o", obj(vec![("k", Json::Num(7.0))])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\n\" , null ] } ").unwrap();
        let arr = v.get("k").unwrap();
        assert_eq!(
            arr,
            &Json::Arr(vec![Json::Num(1.0), Json::Str("A\n".into()), Json::Null])
        );
    }

    #[test]
    fn typed_accessors_are_strict() {
        let v = Json::parse("{\"x\": 3, \"y\": -1, \"f\": 1.5, \"s\": \"t\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("y").unwrap().as_u64(), None);
        assert_eq!(v.get("y").unwrap().as_i64(), Some(-1));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"k\" 1}",
            "{\"k\":1} trailing",
            "nul",
            "1.2.3",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must fail");
        }
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
