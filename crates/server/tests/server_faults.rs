//! Scripted server-layer fault injection: worker panics, poisoned jobs,
//! forced budget expiry, and cache corruption. Run with
//! `--features fault-injection`.

#![cfg(feature = "fault-injection")]

use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::io::hgr;
use htp_server::fault::ServerFaultPlan;
use htp_server::{Client, JobRequest, Reply, Request, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn netlist_text(nodes: usize, gen_seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    hgr::to_string(&h)
}

fn job(hgr_text: &str, seed: u64) -> Request {
    Request::Partition(Box::new(JobRequest {
        hgr: hgr_text.to_owned(),
        height: 3,
        seed,
        ..JobRequest::default()
    }))
}

fn serve_with(faults: ServerFaultPlan) -> Server {
    Server::serve(ServerConfig {
        faults,
        ..ServerConfig::default()
    })
    .expect("start the test server")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr()).expect("connect to the test server")
}

#[test]
fn a_panicking_worker_never_kills_the_daemon() {
    let server = serve_with(ServerFaultPlan::new().panic_job(0));
    let hgr_text = netlist_text(240, 41);
    let mut client = connect(&server);

    let reply = client.request(&job(&hgr_text, 1)).unwrap();
    let Reply::Result(result) = reply else {
        panic!("expected a retried result, got {reply:?}");
    };
    assert_eq!(
        result.outcome, "complete",
        "the clean retry after a contained panic completes"
    );
    assert!(result.retried, "the panicked first attempt forced a retry");
    assert!(result.certified);

    // The daemon survived the panic and keeps serving.
    assert!(matches!(
        client.request(&Request::Ping).unwrap(),
        Reply::Pong
    ));
    let stats = server.stats();
    assert_eq!(stats.panics_contained, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    let report = server.drain();
    assert!(!report.forced);
}

#[test]
fn a_poisoned_job_surfaces_as_a_typed_error() {
    let server = serve_with(ServerFaultPlan::new().poison_job(0));
    let hgr_text = netlist_text(240, 42);
    let mut client = connect(&server);

    let reply = client.request(&job(&hgr_text, 1)).unwrap();
    let Reply::Error { message } = reply else {
        panic!("expected a typed error, got {reply:?}");
    };
    assert!(
        message.contains("panicked"),
        "the error names the contained panic: {message}"
    );

    // Both attempts panicked; the daemon is unharmed.
    assert!(matches!(
        client.request(&Request::Ping).unwrap(),
        Reply::Pong
    ));
    let follow_up = client.request(&job(&hgr_text, 2)).unwrap();
    assert!(
        matches!(follow_up, Reply::Result(_)),
        "an unscripted job after the poisoned one runs fine"
    );
    let stats = server.stats();
    assert_eq!(stats.panics_contained, 2, "both attempts were contained");
    assert_eq!(stats.failed, 1);
    server.drain();
}

#[test]
fn cache_corruption_is_caught_by_recertification() {
    let server = serve_with(ServerFaultPlan::new().corrupt_cache_entry_of(0));
    let hgr_text = netlist_text(240, 43);
    let mut client = connect(&server);

    let first = client.request(&job(&hgr_text, 1)).unwrap();
    assert!(matches!(first, Reply::Result(ref r) if !r.cached));

    // The entry job 0 wrote was corrupted in place; the duplicate must
    // recompute instead of serving the rotten entry.
    let second = client.request(&job(&hgr_text, 1)).unwrap();
    let Reply::Result(second) = second else {
        panic!("expected a result");
    };
    assert!(
        !second.cached,
        "a corrupt cache entry is recomputed, never served"
    );
    assert!(second.certified);

    // The recomputation (admission seq 1) wrote a clean entry.
    let third = client.request(&job(&hgr_text, 1)).unwrap();
    let Reply::Result(third) = third else {
        panic!("expected a result");
    };
    assert!(third.cached, "the recomputed entry serves cleanly");

    let stats = server.stats();
    assert_eq!(stats.cache_corruptions, 1);
    assert_eq!(stats.cache_hits, 1);
    server.drain();
}

#[test]
fn forced_expiry_degrades_then_the_retry_completes() {
    let server = serve_with(ServerFaultPlan::new().expire_job(0));
    let hgr_text = netlist_text(240, 44);
    let mut client = connect(&server);

    let reply = client.request(&job(&hgr_text, 1)).unwrap();
    let Reply::Result(result) = reply else {
        panic!("expected a result, got {reply:?}");
    };
    assert_eq!(
        result.outcome, "complete",
        "the unexpired retry recovers a complete result"
    );
    assert!(
        result.retried,
        "the force-expired first attempt triggered a retry"
    );
    assert!(result.certified);

    let stats = server.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.degraded, 0, "the better attempt wins");
    server.drain();
}
