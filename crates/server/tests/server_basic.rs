//! End-to-end behaviour of the job server over real sockets: complete
//! jobs, certified cache hits, deadline degradation, load shedding,
//! graceful and forced drain, cache persistence across a restart, and
//! incremental (warm-started) resubmissions.

use std::time::{Duration, Instant};

use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::io::hgr;
use htp_server::cache::job_digest;
use htp_server::protocol::StatsReply;
use htp_server::{Client, JobRequest, Reply, Request, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn netlist_text(nodes: usize, gen_seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    hgr::to_string(&h)
}

fn job(hgr_text: &str, seed: u64) -> Request {
    Request::Partition(Box::new(JobRequest {
        hgr: hgr_text.to_owned(),
        height: 3,
        seed,
        ..JobRequest::default()
    }))
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr()).expect("connect to the test server")
}

fn stats_of(server: &Server) -> StatsReply {
    server.stats()
}

/// Polls the live counters until `pred` holds (the submitting threads
/// race the main thread, so tests synchronize on observed state).
fn wait_until(server: &Server, what: &str, pred: impl Fn(&StatsReply) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred(&stats_of(server)) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn a_submitted_job_comes_back_complete_and_certified() {
    let server = Server::serve(ServerConfig::default()).unwrap();
    let hgr_text = netlist_text(240, 11);
    let mut client = connect(&server);

    match client.request(&Request::Ping).unwrap() {
        Reply::Pong => {}
        other => panic!("ping answered {other:?}"),
    }
    let reply = client.request(&job(&hgr_text, 7)).unwrap();
    let Reply::Result(result) = reply else {
        panic!("expected a result, got {reply:?}");
    };
    assert_eq!(result.outcome, "complete");
    assert!(result.certified, "every served result is re-certified");
    assert!(!result.cached, "first submission cannot hit the cache");
    assert!(!result.retried);
    assert!(result.cost.is_finite() && result.cost >= 0.0);
    assert_eq!(
        result.assignment.lines().count(),
        240,
        "one assignment line per node"
    );
    drop(client);

    let report = server.drain();
    assert!(!report.forced, "an idle server drains cleanly");
    assert_eq!(report.accepted, 1);
    assert_eq!(report.answered, 1);
}

#[test]
fn duplicate_jobs_hit_the_certified_cache() {
    let server = Server::serve(ServerConfig::default()).unwrap();
    let hgr_text = netlist_text(240, 12);
    let mut client = connect(&server);

    let first = client.request(&job(&hgr_text, 3)).unwrap();
    let Reply::Result(first) = first else {
        panic!("expected a result, got {first:?}");
    };
    assert!(!first.cached);

    let second = client.request(&job(&hgr_text, 3)).unwrap();
    let Reply::Result(second) = second else {
        panic!("expected a result, got {second:?}");
    };
    assert!(second.cached, "identical semantic inputs hit the cache");
    assert!(
        second.certified,
        "cache hits are re-certified before serving"
    );
    assert_eq!(second.cost, first.cost);
    assert_eq!(second.assignment, first.assignment);

    // A different deadline is a scheduling concern, not a semantic one.
    let third = client.request(&Request::Partition(Box::new(JobRequest {
        hgr: hgr_text.clone(),
        height: 3,
        seed: 3,
        deadline_ms: Some(60_000),
        ..JobRequest::default()
    })));
    let Ok(Reply::Result(third)) = third else {
        panic!("expected a result");
    };
    assert!(third.cached, "deadline changes do not change the digest");

    let stats = stats_of(&server);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.accepted, 1, "cache hits never touch the queue");
    server.drain();
}

#[test]
fn an_impossible_deadline_degrades_but_still_answers() {
    let server = Server::serve(ServerConfig::default()).unwrap();
    let hgr_text = netlist_text(2000, 13);
    let mut client = connect(&server);

    let reply = client.request(&Request::Partition(Box::new(JobRequest {
        hgr: hgr_text,
        height: 4,
        seed: 5,
        deadline_ms: Some(1),
        ..JobRequest::default()
    })));
    let Ok(Reply::Result(result)) = reply else {
        panic!("expected a result");
    };
    assert_eq!(
        result.outcome, "degraded",
        "a 1ms deadline on a 2000-node netlist cannot complete"
    );
    assert!(
        result.certified,
        "even a degraded partition is certified valid"
    );
    assert!(result.retried, "degraded first attempts get one retry");
    assert_eq!(result.assignment.lines().count(), 2000);

    let stats = stats_of(&server);
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.retries, 1);
    server.drain();
}

#[test]
fn malformed_jobs_get_typed_errors_not_crashes() {
    let server = Server::serve(ServerConfig::default()).unwrap();
    let mut client = connect(&server);

    let reply = client.request(&job("this is not a netlist", 1)).unwrap();
    assert!(
        matches!(reply, Reply::Error { .. }),
        "garbage netlist text is a typed error"
    );
    // The daemon is still alive and serving.
    assert!(matches!(
        client.request(&Request::Ping).unwrap(),
        Reply::Pong
    ));
    let report = server.drain();
    assert_eq!(
        report.accepted, 0,
        "malformed jobs are rejected before admission"
    );
}

#[test]
fn overload_sheds_with_a_typed_reply() {
    let server = Server::serve(ServerConfig {
        workers: 1,
        watermark_ms: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    // Big multilevel job: occupies the single worker for a long time.
    let slow_hgr = netlist_text(12_000, 14);
    let slow_req = Request::Partition(Box::new(JobRequest {
        hgr: slow_hgr,
        height: 4,
        seed: 21,
        multilevel: true,
        ..JobRequest::default()
    }));
    let addr = server.local_addr();
    let slow_client = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&slow_req)
    });
    wait_until(&server, "the slow job to be admitted", |s| {
        s.queue_depth >= 1
    });

    let mut prober = connect(&server);
    let reply = prober.request(&job(&netlist_text(240, 15), 1)).unwrap();
    let Reply::Overloaded {
        queue_depth,
        estimated_ms,
    } = reply
    else {
        panic!("expected overload shedding, got {reply:?}");
    };
    assert!(queue_depth >= 1);
    assert!(estimated_ms > 1, "estimate exceeded the watermark");

    // The shed probe was never admitted; the slow job still completes.
    let slow_reply = slow_client.join().unwrap().unwrap();
    assert!(matches!(slow_reply, Reply::Result(_)));
    let stats = stats_of(&server);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.accepted, 1);
    let report = server.drain();
    assert_eq!(report.accepted, report.answered);
}

#[test]
fn the_cache_survives_a_drain_restart_cycle() {
    let mut path = std::env::temp_dir();
    path.push(format!("htp-server-cache-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = || ServerConfig {
        cache_path: Some(path.to_str().unwrap().to_owned()),
        ..ServerConfig::default()
    };
    let hgr_text = netlist_text(240, 19);

    // First life: compute and cache one result, then drain.
    let server = Server::serve(cfg()).unwrap();
    let Reply::Result(first) = connect(&server).request(&job(&hgr_text, 6)).unwrap() else {
        panic!("expected a result");
    };
    assert!(!first.cached);
    server.drain();
    assert!(path.exists(), "drain persisted the cache snapshot");

    // Second life: the same job is served from the reloaded cache
    // without touching the queue.
    let server = Server::serve(cfg()).unwrap();
    let Reply::Result(second) = connect(&server).request(&job(&hgr_text, 6)).unwrap() else {
        panic!("expected a result");
    };
    assert!(second.cached, "the reloaded entry serves the duplicate");
    assert!(second.certified);
    assert_eq!(second.cost, first.cost);
    assert_eq!(second.assignment, first.assignment);
    let stats = stats_of(&server);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.accepted, 0);
    server.drain();

    // Third life, after snapshot corruption: startup shrugs it off and
    // the job is simply recomputed.
    std::fs::write(&path, "not json at all").unwrap();
    let server = Server::serve(cfg()).unwrap();
    let Reply::Result(third) = connect(&server).request(&job(&hgr_text, 6)).unwrap() else {
        panic!("expected a result");
    };
    assert!(!third.cached, "a corrupt snapshot starts a cold cache");
    assert!(third.certified);
    server.drain();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_warm_resubmission_takes_the_incremental_path() {
    let server = Server::serve(ServerConfig::default()).unwrap();
    let hgr_text = netlist_text(240, 20);
    let mut client = connect(&server);

    let Reply::Result(first) = client.request(&job(&hgr_text, 3)).unwrap() else {
        panic!("expected a result");
    };
    assert_eq!(first.outcome, "complete");
    assert!(!first.warm, "a from-scratch solve is not warm");

    // Edit the netlist slightly (one node, one net) and resubmit naming
    // the prior digest: a cache miss, but not a cold solve.
    let h = hgr::from_str(&hgr_text).unwrap();
    let mut delta = htp_eco::NetlistDelta::for_graph(&h);
    let v = delta.add_node(1).unwrap();
    delta
        .add_net(1.0, vec![htp_netlist::NodeId::new(0), v])
        .unwrap();
    let edited_text = hgr::to_string(&delta.apply(&h).unwrap().hypergraph);
    let defaults = JobRequest::default();
    let prior_digest = job_digest(&hgr_text, 3, defaults.arity, defaults.slack, 3, false);
    let warm_req = Request::Partition(Box::new(JobRequest {
        hgr: edited_text.clone(),
        height: 3,
        seed: 3,
        warm_digest: Some(format!("{prior_digest:032x}")),
        ..JobRequest::default()
    }));
    let Reply::Result(second) = client.request(&warm_req).unwrap() else {
        panic!("expected a result");
    };
    assert_eq!(second.outcome, "complete");
    assert!(!second.cached, "an edited netlist cannot hit the cache");
    assert!(
        second.certified,
        "incremental results are certified like any other"
    );
    assert_eq!(
        second.assignment.lines().count(),
        241,
        "the result covers the edited netlist"
    );
    assert_eq!(stats_of(&server).warm_starts, 1);

    // An unknown predecessor digest degrades silently to a cold solve.
    let bogus_req = Request::Partition(Box::new(JobRequest {
        hgr: edited_text,
        height: 3,
        seed: 4,
        warm_digest: Some("f".repeat(32)),
        ..JobRequest::default()
    }));
    let Reply::Result(third) = client.request(&bogus_req).unwrap() else {
        panic!("expected a result");
    };
    assert_eq!(third.outcome, "complete");
    assert!(!third.warm);
    assert_eq!(
        stats_of(&server).warm_starts,
        1,
        "an unknown digest is not a warm start"
    );
    server.drain();
}

#[test]
fn drain_answers_every_accepted_job() {
    let server = Server::serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let hgr_text = netlist_text(2000, 16);
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let req = Request::Partition(Box::new(JobRequest {
                hgr: hgr_text.clone(),
                height: 4,
                seed: 100 + i,
                multilevel: true,
                ..JobRequest::default()
            }));
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.request(&req)
            })
        })
        .collect();
    wait_until(&server, "all three jobs to be admitted", |s| {
        s.accepted == 3
    });

    let report = server.drain();
    assert_eq!(report.accepted, 3);
    assert_eq!(
        report.answered, 3,
        "drain answers every accepted job before shutdown"
    );
    for client in clients {
        let reply = client.join().unwrap().unwrap();
        assert!(
            matches!(reply, Reply::Result(_)),
            "each accepted job got a real result, got {reply:?}"
        );
    }
}

#[test]
fn forced_drain_cancels_cooperatively_and_still_answers() {
    let server = Server::serve(ServerConfig {
        workers: 1,
        drain_deadline_ms: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let req = Request::Partition(Box::new(JobRequest {
        hgr: netlist_text(12_000, 17),
        height: 4,
        seed: 9,
        multilevel: true,
        ..JobRequest::default()
    }));
    let client = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&req)
    });
    wait_until(&server, "the job to be admitted", |s| s.queue_depth >= 1);

    let report = server.drain();
    assert!(report.forced, "a zero drain deadline forces cancellation");
    assert_eq!(report.accepted, 1);
    assert_eq!(report.answered, 1, "even a cancelled job is answered");
    let reply = client.join().unwrap().unwrap();
    let Reply::Result(result) = reply else {
        panic!("expected a (salvaged) result, got {reply:?}");
    };
    assert!(
        result.outcome == "cancelled" || result.outcome == "degraded",
        "a force-drained job is cancelled or degraded, got {}",
        result.outcome
    );
    assert!(
        result.certified,
        "the salvaged partition is still certified"
    );
}

#[test]
fn submissions_during_drain_get_a_draining_reply() {
    let server = Server::serve(ServerConfig::default()).unwrap();
    // Open the connection before draining: the accept loop stops first.
    let mut client = connect(&server);
    let hgr_text = netlist_text(240, 18);
    // Reach into the drain flag by starting the drain on another thread
    // while this connection stays open.
    let handle = std::thread::spawn(move || server.drain());
    // The drain flips `draining` almost immediately; retry until the
    // reply shows it (the connection itself stays serviced until the
    // stop flag).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.request(&job(&hgr_text, 30)) {
            Ok(Reply::Draining) => break,
            Ok(_) | Err(_) if Instant::now() >= deadline => {
                panic!("never observed a draining reply")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break, // connection already torn down: drain won
        }
    }
    let report = handle.join().unwrap();
    assert_eq!(report.accepted, report.answered);
}
