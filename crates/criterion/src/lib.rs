//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so the real `criterion` cannot
//! be fetched. This crate keeps the workspace's `[[bench]]` targets
//! compiling and *useful*: the same `criterion_group!`/`criterion_main!`
//! surface, benchmark groups, `bench_function`/`bench_with_input`, and a
//! [`Bencher::iter`] that measures wall-clock time and prints
//! median/mean/min per-iteration timings. No statistical regression
//! analysis, no HTML reports.
//!
//! Benchmarks can be filtered by substring: `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    last: Option<BenchStats>,
}

impl Bencher {
    /// Measures `f`; the harness prints per-iteration wall-clock
    /// statistics after the benchmark body returns.
    ///
    /// Warm-up runs calibrate how many iterations fit in ~20 ms; each
    /// sample then times that many iterations and reports the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find iters-per-sample so one sample
        // takes roughly 20 ms (at least 1 iteration).
        let calibration_start = Instant::now();
        black_box(f());
        let first = calibration_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters_per_sample = (target.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are not NaN"));
        self.last = Some(BenchStats {
            median: per_iter[per_iter.len() / 2],
            mean: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            min: per_iter[0],
            samples: self.samples,
            iters_per_sample,
        });
    }
}

/// Simple wall-clock statistics of one benchmark (seconds per iteration).
#[derive(Clone, Copy, Debug)]
pub struct BenchStats {
    /// Median time per iteration.
    pub median: f64,
    /// Mean time per iteration.
    pub mean: f64,
    /// Fastest observed time per iteration.
    pub min: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (calibrated).
    pub iters_per_sample: usize,
}

fn human(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.3} s ")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "need at least one sample");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion
            .run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None }
    }
}

impl Criterion {
    /// Reads a substring filter from the command line (`cargo bench -- X`),
    /// skipping harness flags like `--bench`.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Starts a benchmark group called `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, 100, |b| f(b));
        self
    }

    fn run_one(&self, full_name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: sample_size,
            last: None,
        };
        print!("{full_name:<48}");
        f(&mut bencher);
        match bencher.last {
            Some(s) => println!(
                "median {}  mean {}  min {}  ({} samples × {} iters)",
                human(s.median),
                human(s.mean),
                human(s.min),
                s.samples,
                s.iters_per_sample
            ),
            None => println!("(no measurement)"),
        }
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
