//! Criterion bench: alternative engines — heap FM vs bucket FM, spectral
//! seeding, and the cluster-coarsened pipeline vs flat FLOW.

use criterion::{criterion_group, criterion_main, Criterion};
use htp_baselines::fm::bipartition::{fm_bipartition, random_balanced_init, BisectionBounds};
use htp_baselines::fm::buckets::fm_bipartition_buckets;
use htp_baselines::spectral::{spectral_fm_bipartition, SpectralParams};
use htp_bench::{paper_spec, threads_from_env};
use htp_cluster::pipeline::{clustered_flow_partition, ClusteredFlowParams};
use htp_core::injector::FlowParams;
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fm_engines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let h = rent_circuit(
        RentParams {
            nodes: 1024,
            primary_inputs: 64,
            ..RentParams::default()
        },
        &mut rng,
    );
    let bounds = BisectionBounds::symmetric((h.total_size() * 11).div_ceil(20));
    let init = random_balanced_init(&h, bounds, &mut rng).unwrap();

    let mut group = c.benchmark_group("fm_engines");
    group.bench_function("heap", |b| {
        b.iter(|| black_box(fm_bipartition(&h, init.clone(), bounds, 8).unwrap()))
    });
    group.bench_function("buckets", |b| {
        b.iter(|| black_box(fm_bipartition_buckets(&h, init.clone(), bounds, 8).unwrap()))
    });
    group.bench_function("spectral_seed_plus_fm", |b| {
        b.iter(|| {
            black_box(spectral_fm_bipartition(&h, bounds, SpectralParams::default(), 8).unwrap())
        })
    });
    group.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let h = rent_circuit(
        RentParams {
            nodes: 700,
            primary_inputs: 48,
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = paper_spec(&h);

    // Both pipelines honour the shared HTP_THREADS knob; results are
    // bit-identical at any thread count, only the wall-clock moves.
    let partitioner = PartitionerParams {
        flow: FlowParams {
            threads: threads_from_env(),
            ..FlowParams::default()
        },
        ..PartitionerParams::default()
    };

    let mut group = c.benchmark_group("multilevel_vs_flat");
    group.sample_size(10);
    group.bench_function("flat_flow", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(13);
            black_box(
                FlowPartitioner::try_new(partitioner)
                    .unwrap()
                    .run(&h, &spec, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function("clustered_flow", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(13);
            let params = ClusteredFlowParams {
                partitioner,
                ..ClusteredFlowParams::default()
            };
            black_box(clustered_flow_partition(&h, &spec, params, &mut rng).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fm_engines, bench_multilevel);
criterion_main!(benches);
