//! Criterion bench: Algorithm 2 (spreading-metric computation), the runtime
//! bottleneck the paper's complexity analysis (Section 3.3) attributes the
//! whole algorithm's cost to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htp_bench::{paper_spec, threads_from_env};
use htp_core::injector::{compute_spreading_metric, FlowParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_metric(c: &mut Criterion) {
    let mut group = c.benchmark_group("spreading_metric");
    group.sample_size(10);
    for nodes in [128usize, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let h = rent_circuit(
            RentParams {
                nodes,
                primary_inputs: (nodes / 16).max(1),
                locality: 0.8,
                ..RentParams::default()
            },
            &mut rng,
        );
        let spec = paper_spec(&h);
        // HTP_THREADS steers this timing bench; the computed metric is
        // bit-identical at any thread count.
        let params = FlowParams {
            threads: threads_from_env(),
            ..FlowParams::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(compute_spreading_metric(&h, &spec, params, &mut rng))
            })
        });
    }
    group.finish();
}

/// Thread scaling of the speculative-parallel probe engine on a
/// rent:2000-class instance. The metric is bit-identical at every thread
/// count; only the wall-clock should move.
fn bench_metric_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("spreading_metric_threads");
    group.sample_size(10);
    let nodes = 2000usize;
    let mut rng = StdRng::seed_from_u64(1);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = paper_spec(&h);
    for threads in [1usize, 2, 4, 8] {
        let params = FlowParams {
            threads,
            ..FlowParams::default()
        };
        group.bench_with_input(BenchmarkId::new("rent2000", threads), &threads, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(compute_spreading_metric(&h, &spec, params, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metric, bench_metric_threads);
criterion_main!(benches);
