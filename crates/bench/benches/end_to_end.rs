//! Criterion bench: full runs of the three constructive algorithms — the
//! runtime counterpart of the paper's Table 2 CPU column.

use criterion::{criterion_group, criterion_main, Criterion};
use htp_baselines::gfm::{gfm_partition, GfmParams};
use htp_baselines::rfm::{rfm_partition, RfmParams};
use htp_bench::paper_spec;
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    // A c2670-at-1/4-scale workload keeps the bench minutes, not hours.
    let h = rent_circuit(
        RentParams {
            nodes: 360,
            primary_inputs: 24,
            locality: 0.82,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = paper_spec(&h);

    let mut group = c.benchmark_group("table2_runtime");
    group.sample_size(10);
    group.bench_function("gfm", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(gfm_partition(&h, &spec, GfmParams::default(), &mut rng).unwrap())
        })
    });
    group.bench_function("rfm", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(rfm_partition(&h, &spec, RfmParams::default(), &mut rng).unwrap())
        })
    });
    group.bench_function("flow_n1", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let params = PartitionerParams {
                iterations: 1,
                constructions_per_metric: 1,
                ..PartitionerParams::default()
            };
            black_box(
                FlowPartitioner::try_new(params)
                    .unwrap()
                    .run(&h, &spec, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
