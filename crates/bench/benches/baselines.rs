//! Criterion bench: the FM engine underneath GFM/RFM/HFM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htp_baselines::fm::bipartition::{fm_bipartition, random_balanced_init, BisectionBounds};
use htp_baselines::hfm::{improve, HfmParams};
use htp_bench::paper_spec;
use htp_model::HierarchicalPartition;
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_bipartition");
    for nodes in [256usize, 1024] {
        let mut rng = StdRng::seed_from_u64(6);
        let h = rent_circuit(
            RentParams {
                nodes,
                primary_inputs: (nodes / 16).max(1),
                ..RentParams::default()
            },
            &mut rng,
        );
        let bounds = BisectionBounds::symmetric((h.total_size() * 11).div_ceil(20));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let init = random_balanced_init(&h, bounds, &mut rng).unwrap();
                black_box(fm_bipartition(&h, init, bounds, 8).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_hfm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let h = rent_circuit(
        RentParams {
            nodes: 512,
            primary_inputs: 32,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = paper_spec(&h);
    // A deliberately mediocre starting point: round-robin into 16 leaves.
    let assignment: Vec<usize> = (0..h.num_nodes()).map(|v| v % 16).collect();
    let p = HierarchicalPartition::full_kary(4, 2, &assignment).unwrap();

    let mut group = c.benchmark_group("hierarchical_fm");
    group.sample_size(10);
    group.bench_function("improve_512", |b| {
        b.iter(|| black_box(improve(&h, &spec, &p, HfmParams::default()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fm, bench_hfm);
criterion_main!(benches);
