//! Criterion bench for the conclusions' extension: several constructions
//! per spreading metric should cost little extra runtime because the
//! metric computation dominates (paper Section 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htp_bench::paper_spec;
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_constructions_per_metric(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let h = rent_circuit(
        RentParams {
            nodes: 360,
            primary_inputs: 24,
            locality: 0.82,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = paper_spec(&h);

    let mut group = c.benchmark_group("constructions_per_metric");
    group.sample_size(10);
    for m in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(10);
                let params = PartitionerParams {
                    iterations: 1,
                    constructions_per_metric: m,
                    ..PartitionerParams::default()
                };
                black_box(
                    FlowPartitioner::try_new(params)
                        .unwrap()
                        .run(&h, &spec, &mut rng)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constructions_per_metric);
criterion_main!(benches);
