//! Criterion bench: Algorithm 3 (partition construction from a fixed
//! spreading metric) — per Section 3.3 this is `O((n+p) log n)` and should
//! be far cheaper than the metric computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htp_bench::{paper_spec, threads_from_env};
use htp_core::construct::construct_partition;
use htp_core::injector::{compute_spreading_metric, FlowParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_partition");
    for nodes in [128usize, 512] {
        let mut rng = StdRng::seed_from_u64(2);
        let h = rent_circuit(
            RentParams {
                nodes,
                primary_inputs: (nodes / 16).max(1),
                locality: 0.8,
                ..RentParams::default()
            },
            &mut rng,
        );
        let spec = paper_spec(&h);
        // The metric is only setup here, but it dominates wall-clock, so
        // honour the shared HTP_THREADS knob like every other harness.
        let params = FlowParams {
            threads: threads_from_env(),
            ..FlowParams::default()
        };
        let (metric, _) = compute_spreading_metric(&h, &spec, params, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                black_box(construct_partition(&h, &spec, &metric, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construct);
criterion_main!(benches);
