//! Experiment harness for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print paper-style tables:
//!
//! * `table1` — surrogate circuit sizes (paper Table 1),
//! * `table2` — GFM vs RFM vs FLOW constructive costs (paper Table 2),
//! * `table3` — GFM+ / RFM+ / FLOW+ after hierarchical FM improvement
//!   (paper Table 3),
//! * `fig2` — the worked 16-node example with an exact LP lower bound
//!   (paper Figure 2),
//! * `ablation` — parameter sensitivity of Algorithm 2 and the
//!   constructions-per-metric extension (paper Section 5).
//!
//! This library holds the shared pieces: the experiment hierarchy
//! specification, wrapped runners with wall-clock timing, the Figure 2
//! fixture, and a plain-text table formatter.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use htp_baselines::gfm::{gfm_partition, GfmParams};
use htp_baselines::hfm::{improve, HfmParams, HfmResult};
use htp_baselines::rfm::{rfm_partition, RfmParams};
use htp_core::injector::FlowParams;
use htp_core::partitioner::{FlowPartitioner, FlowResult, PartitionerParams};
use htp_core::{Budget, RunOutcome};
use htp_model::{cost, validate, HierarchicalPartition, TreeSpec};
use htp_netlist::{Hypergraph, HypergraphBuilder, NodeId};

/// The master seed all experiment binaries derive their randomness from.
pub const EXPERIMENT_SEED: u64 = 1997; // the paper's year

/// Hierarchy height used in the paper's experiments (full binary tree).
pub const EXPERIMENT_HEIGHT: usize = 4;

/// Capacity slack applied to every level (the paper leaves this implicit;
/// exact capacities would freeze FM entirely).
pub const EXPERIMENT_SLACK: f64 = 1.10;

/// The experiment hierarchy for a netlist: a full binary tree of height 4
/// with uniform unit weights, `C_l = ceil(1.1 · s(V) / 2^(4−l))`.
pub fn paper_spec(h: &Hypergraph) -> TreeSpec {
    TreeSpec::full_tree(h.total_size(), EXPERIMENT_HEIGHT, 2, EXPERIMENT_SLACK, 1.0)
        .expect("experiment spec parameters are valid")
}

/// Outcome of one timed algorithm run.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// The partition produced.
    pub partition: HierarchicalPartition,
    /// Its interconnection cost.
    pub cost: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs the FLOW partitioner (Algorithm 1) with experiment defaults.
pub fn run_flow(
    h: &Hypergraph,
    spec: &TreeSpec,
    seed: u64,
    params: PartitionerParams,
) -> (TimedRun, FlowResult) {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let result = FlowPartitioner::try_new(params)
        .expect("valid partitioner parameters")
        .run(h, spec, &mut rng)
        .expect("FLOW must succeed on the experiment instances");
    let seconds = start.elapsed().as_secs_f64();
    validate::validate(h, spec, &result.partition).expect("FLOW output is feasible");
    (
        TimedRun {
            partition: result.partition.clone(),
            cost: result.cost,
            seconds,
        },
        result,
    )
}

/// Outcome of one timed, budget-bounded FLOW run.
#[derive(Clone, Debug)]
pub struct BudgetedTimedRun {
    /// The timed partition (best found within the budget).
    pub run: TimedRun,
    /// How the run ended (complete / degraded / deadline / cancelled).
    pub outcome: RunOutcome,
    /// Injection rounds charged against the budget.
    pub rounds_used: u64,
    /// Constraint probes charged against the budget.
    pub probes_used: u64,
}

/// Runs the FLOW partitioner under a [`Budget`], recording the outcome and
/// the budget counters next to the usual cost/time pair. The best-so-far
/// partition is validated like a full run's.
///
/// # Panics
///
/// Panics when the budget expires before any feasible partition exists —
/// experiment tables have no row to print for such a run.
pub fn run_flow_with_budget(
    h: &Hypergraph,
    spec: &TreeSpec,
    seed: u64,
    params: PartitionerParams,
    budget: &Budget,
) -> BudgetedTimedRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let run = FlowPartitioner::try_new(params)
        .expect("valid partitioner parameters")
        .run_with_budget(h, spec, &mut rng, budget)
        .expect("the budget left time for at least one salvage partition");
    let seconds = start.elapsed().as_secs_f64();
    validate::validate(h, spec, &run.result.partition).expect("FLOW output is feasible");
    BudgetedTimedRun {
        run: TimedRun {
            partition: run.result.partition.clone(),
            cost: run.result.cost,
            seconds,
        },
        outcome: run.outcome,
        rounds_used: budget.rounds_used(),
        probes_used: budget.probes_used(),
    }
}

/// Probe-worker threads for Algorithm 2, read from `HTP_THREADS`
/// (default 1; `0` means all cores). Thread count only changes wall-clock
/// time — the computed metrics, and hence every table, are bit-identical —
/// so an environment knob keeps the experiment binaries' interfaces
/// unchanged.
pub fn threads_from_env() -> usize {
    std::env::var("HTP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Default FLOW parameters for the tables: `N` iterations with the
/// conclusions' multi-construction extension. Honors `HTP_THREADS` (see
/// [`threads_from_env`]).
pub fn flow_params(iterations: usize) -> PartitionerParams {
    PartitionerParams {
        iterations,
        constructions_per_metric: 4,
        flow: FlowParams {
            threads: threads_from_env(),
            ..FlowParams::default()
        },
    }
}

/// Runs GFM best-of-`restarts`.
pub fn run_gfm(h: &Hypergraph, spec: &TreeSpec, seed: u64, restarts: usize) -> TimedRun {
    let start = Instant::now();
    let mut best: Option<(HierarchicalPartition, f64)> = None;
    for r in 0..restarts {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9 + r as u64));
        let p = gfm_partition(h, spec, GfmParams::default(), &mut rng)
            .expect("GFM must succeed on the experiment instances");
        validate::validate(h, spec, &p).expect("GFM output is feasible");
        let c = cost::partition_cost(h, spec, &p);
        if best.as_ref().is_none_or(|(_, b)| c < *b) {
            best = Some((p, c));
        }
    }
    let (partition, cost) = best.expect("at least one restart");
    TimedRun {
        partition,
        cost,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Runs RFM best-of-`restarts`.
pub fn run_rfm(h: &Hypergraph, spec: &TreeSpec, seed: u64, restarts: usize) -> TimedRun {
    let start = Instant::now();
    let mut best: Option<(HierarchicalPartition, f64)> = None;
    for r in 0..restarts {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x517c_c1b7 + r as u64));
        let p = rfm_partition(h, spec, RfmParams::default(), &mut rng)
            .expect("RFM must succeed on the experiment instances");
        validate::validate(h, spec, &p).expect("RFM output is feasible");
        let c = cost::partition_cost(h, spec, &p);
        if best.as_ref().is_none_or(|(_, b)| c < *b) {
            best = Some((p, c));
        }
    }
    let (partition, cost) = best.expect("at least one restart");
    TimedRun {
        partition,
        cost,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Applies the hierarchical FM improvement (the `+` pass).
pub fn run_plus(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> HfmResult {
    improve(h, spec, p, HfmParams::default()).expect("improvement accepts valid partitions")
}

/// The Figure 2 worked example: a 16-node, 30-edge unit graph with four
/// natural groups of 4, pairs of groups forming the two level-1 blocks.
///
/// Hierarchy: `C_0 = 4, C_1 = 8, w_0 = 1, w_1 = 2` (the paper's values).
/// The intended optimal partition cuts 6 edges at level 0 only (cost 2
/// each) and 4 edges at both levels (cost 6 each): total 36.
pub fn figure2() -> (Hypergraph, TreeSpec) {
    let mut b = HypergraphBuilder::with_unit_nodes(16);
    let edge = |b: &mut HypergraphBuilder, x: u32, y: u32| {
        b.add_net(1.0, [NodeId(x), NodeId(y)])
            .expect("pins in range");
    };
    // Intra-group: a 4-cycle plus one chord per group (5 edges × 4 groups).
    for g in 0..4u32 {
        let base = 4 * g;
        for i in 0..4 {
            edge(&mut b, base + i, base + (i + 1) % 4);
        }
        edge(&mut b, base, base + 2);
    }
    // Level-0-only cuts: 3 edges between groups 0-1 and 3 between 2-3.
    for (x, y) in [(0u32, 4), (1, 5), (2, 6), (8, 12), (9, 13), (10, 14)] {
        edge(&mut b, x, y);
    }
    // Level-1 cuts: 4 edges across the (0,1) | (2,3) super-blocks.
    for (x, y) in [(3u32, 8), (7, 12), (6, 9), (2, 13)] {
        edge(&mut b, x, y);
    }
    let h = b.build().expect("figure 2 fixture is valid");
    debug_assert_eq!(h.num_nets(), 30);
    let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 2.0), (16, 2, 1.0)])
        .expect("figure 2 spec is valid");
    (h, spec)
}

/// The intended optimal partition of [`figure2`] (groups of 4 into leaves,
/// paired into level-1 blocks) and its cost.
pub fn figure2_reference_partition() -> HierarchicalPartition {
    let assignment: Vec<usize> = (0..16).map(|v| v / 4).collect();
    HierarchicalPartition::full_kary(2, 2, &assignment).expect("reference partition is valid")
}

/// A minimal fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_model::cost::partition_cost;

    #[test]
    fn figure2_reference_costs_36() {
        let (h, spec) = figure2();
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.num_nets(), 30);
        let p = figure2_reference_partition();
        validate::validate(&h, &spec, &p).unwrap();
        // 6 level-0-only edges × 2 + 4 two-level edges × 6.
        assert_eq!(partition_cost(&h, &spec, &p), 36.0);
    }

    #[test]
    fn paper_spec_shape() {
        let (h, _) = figure2();
        let spec = paper_spec(&h);
        assert_eq!(spec.root_level(), 4);
        assert_eq!(spec.max_children(1), 2);
        // ceil(1.1 * 16 / 16) = 2 at the leaves.
        assert_eq!(spec.capacity(0), 2);
    }

    #[test]
    fn runners_agree_with_reported_cost() {
        let (h, spec) = figure2();
        let gfm = run_gfm(&h, &spec, 7, 2);
        assert_eq!(gfm.cost, partition_cost(&h, &spec, &gfm.partition));
        let rfm = run_rfm(&h, &spec, 7, 2);
        assert_eq!(rfm.cost, partition_cost(&h, &spec, &rfm.partition));
        let (flow, _) = run_flow(&h, &spec, 7, flow_params(2));
        assert_eq!(flow.cost, partition_cost(&h, &spec, &flow.partition));
    }

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(["circuit", "cost"]);
        t.row(["c2670", "1234"]);
        t.row(["c17", "9"]);
        let s = t.to_string();
        assert!(s.contains("circuit"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}
