//! Differential conformance table: FLOW vs. every registered baseline
//! on every generated instance family, with every partition certified by
//! the independent `htp-verify` oracles.
//!
//! Each row is one instance family from `htp_verify::gen::all_families`;
//! the columns are the certified costs (the oracle's recomputation, not
//! the producer's claim) and the FLOW/best-baseline ratio. The run
//! aborts loudly if any partition fails certification, any claimed cost
//! disagrees with the certified one, or FLOW's spreading metric fails
//! its (P1) audit — that is the "differential" part: two independent
//! implementations must agree before a number is printed.
//!
//! `--seed S` changes the family seed (default: the experiment seed).
//! `--quick` audits the metric on a sample of sources instead of all.

use htp_baselines::suite::run_all;
use htp_bench::{flow_params, EXPERIMENT_SEED};
use htp_core::partitioner::FlowPartitioner;
use htp_model::{HierarchicalPartition, TreeSpec};
use htp_netlist::Hypergraph;
use htp_verify::gen::all_families;
use htp_verify::{audit_metric, certify};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outer FLOW iterations for the table.
const FLOW_ITERATIONS: usize = 8;
/// Tolerance for cost agreement and the metric audit.
const TOLERANCE: f64 = 1e-6;

/// Certifies `p` and returns the independently recomputed cost.
fn certified_cost(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition, what: &str) -> f64 {
    let cert = certify(h, spec, p);
    assert!(
        cert.is_valid(),
        "{what}: certification failed: {:?}",
        cert.violations
    );
    cert.cost.expect("valid certificates carry a cost")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(EXPERIMENT_SEED);

    println!("DIFFERENTIAL CONFORMANCE: FLOW VS. BASELINES, ALL CERTIFIED");
    println!(
        "(families from htp-verify::gen, seed {seed}; FLOW: N = {FLOW_ITERATIONS} iterations; \
         every partition re-checked and re-priced by the clean-room oracles)"
    );
    println!();
    let mut table = htp_bench::TextTable::new([
        "family",
        "nodes",
        "nets",
        "FLOW",
        "gfm",
        "rfm",
        "rfm-spectral",
        "gfm+",
        "FLOW/best",
        "obj/cost",
    ]);

    for inst in all_families(seed) {
        let h = &inst.hypergraph;
        let spec = &inst.spec;

        let mut rng = StdRng::seed_from_u64(seed);
        let flow = FlowPartitioner::try_new(flow_params(FLOW_ITERATIONS))
            .expect("experiment parameters are valid")
            .run(h, spec, &mut rng)
            .expect("FLOW succeeds on generated families");
        let flow_cost = certified_cost(h, spec, &flow.partition, inst.family);
        assert!(
            (flow_cost - flow.cost).abs() <= TOLERANCE,
            "{}: FLOW claims cost {} but the oracle certifies {flow_cost}",
            inst.family,
            flow.cost
        );

        // Audit the winning metric: (P1) constraints and the lower bound.
        let sources: Vec<_> = if quick {
            h.nodes().step_by(7).collect()
        } else {
            h.nodes().collect()
        };
        let audit = audit_metric(h, spec, flow.metric.lengths(), sources, TOLERANCE);
        assert!(
            audit.constraints_hold,
            "{}: metric fails its (P1) audit (shortfall {})",
            inst.family, audit.worst_shortfall
        );
        // Lemma 2 guarantees objective <= OPT only for the LP optimum;
        // the injector's feasible metric can overshoot, so the bound is
        // reported (obj/cost column) rather than asserted.
        let bound_ratio = audit.objective / flow_cost;

        let mut baseline_costs = Vec::new();
        for run in run_all(h, spec, seed).expect("baselines succeed on generated families") {
            let cost = certified_cost(h, spec, &run.partition, run.name);
            baseline_costs.push((run.name, cost));
        }
        let best_baseline = baseline_costs
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);

        let col = |name: &str| {
            baseline_costs
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, c)| format!("{c:.0}"))
                .unwrap_or_default()
        };
        table.row([
            inst.family.to_string(),
            h.num_nodes().to_string(),
            h.num_nets().to_string(),
            format!("{flow_cost:.0}"),
            col("gfm"),
            col("rfm"),
            col("rfm-spectral"),
            col("gfm+"),
            format!("{:.2}", flow_cost / best_baseline),
            format!("{bound_ratio:.2}"),
        ]);
        eprintln!("done {}", inst.family);
    }
    println!("{table}");
    println!("FLOW/best < 1 means FLOW beats every baseline on that family.");
    println!(
        "obj/cost = audited metric objective over certified cost (<= 1 only \
         at the LP optimum; Lemma 2)."
    );
    println!("all partitions certified; all metrics passed the (P1) audit");
}
