//! Machine-readable perf trajectory for the Algorithm-2 hot path.
//!
//! Runs the two reference instances (rent:2000 and a planted-cluster
//! netlist of comparable size), times the spreading-metric phase and one
//! construction separately, and writes the measurements to `BENCH_5.json`
//! so every future perf PR has a pinned before/after. The JSON is
//! hand-rolled (the workspace vendors no serde); the schema is validated
//! by CI's `bench-smoke` job.
//!
//! Usage: `trajectory [--quick] [--multilevel] [--kernel] [--out PATH]`
//!
//! * `--quick` shrinks the instances for CI smoke runs (~400 nodes flat,
//!   20k nodes multilevel).
//! * `--multilevel` benchmarks the V-cycle engine instead of the flat
//!   Algorithm-2 hot path, writing a per-level time/cost/telemetry
//!   breakdown to `BENCH_10.json`. Full mode runs rent:100000,
//!   clustered:1000x100, and the rent:1000000 scale target; instances up
//!   to 150k nodes additionally sweep the refinement pool across
//!   `refine.threads = 1, 2, 4, 8`, asserting the partition digest is
//!   bit-identical at every rung.
//! * `--kernel` sweeps the probe kernel across `threads = 1, 2, 4, 8`,
//!   asserting the metric is bit-identical at every setting and recording
//!   per-thread efficiency plus kernel-choice telemetry (dial vs heap
//!   rounds, batched re-pricing time) to `BENCH_9.json`.
//! * `--out PATH` changes the output path (default `BENCH_5.json`,
//!   `BENCH_10.json` with `--multilevel`, or `BENCH_9.json` with
//!   `--kernel`).
//!
//! Thread count comes from `HTP_THREADS` (default 1) except under
//! `--kernel`, which sweeps its fixed ladder. The metric itself is
//! bit-identical at any thread count; only wall-clock moves.

use std::fmt::Write as _;
use std::time::Instant;

use htp_bench::{paper_spec, threads_from_env, EXPERIMENT_SEED};
use htp_cluster::vcycle::{vcycle_partition, VCycleParams, VCycleResult};
use htp_core::construct::construct_partition;
use htp_core::injector::{compute_spreading_metric, FlowParams, InjectionStats};
use htp_model::{cost, validate, TreeSpec};
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One instance's measurements.
struct Sample {
    name: String,
    nodes: usize,
    nets: usize,
    metric_seconds: f64,
    construct_seconds: f64,
    stats: InjectionStats,
    cost: f64,
}

fn rent_instance(nodes: usize) -> (String, Hypergraph) {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ 1);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    (format!("rent:{nodes}"), h)
}

fn clustered_instance(clusters: usize, cluster_size: usize) -> (String, Hypergraph) {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ 2);
    let nodes = clusters * cluster_size;
    let inst = clustered_hypergraph(
        ClusteredParams {
            clusters,
            cluster_size,
            intra_nets: nodes * 5 / 2,
            inter_nets: nodes / 5,
            ..ClusteredParams::default()
        },
        &mut rng,
    );
    (
        format!("clustered:{clusters}x{cluster_size}"),
        inst.hypergraph,
    )
}

fn measure(name: String, h: &Hypergraph, spec: &TreeSpec, threads: usize) -> Sample {
    let params = FlowParams {
        threads,
        ..FlowParams::default()
    };
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let start = Instant::now();
    let (metric, stats) = compute_spreading_metric(h, spec, params, &mut rng);
    let metric_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let partition =
        construct_partition(h, spec, &metric, &mut rng).expect("construction must succeed");
    let construct_seconds = start.elapsed().as_secs_f64();
    validate::validate(h, spec, &partition).expect("construction output is feasible");
    let cost = cost::partition_cost(h, spec, &partition);

    eprintln!(
        "{name}: metric {metric_seconds:.3}s ({} rounds, {} probes, {} wasted), \
         construct {construct_seconds:.3}s, cost {cost}",
        stats.rounds, stats.probes, stats.wasted_probes
    );
    Sample {
        name,
        nodes: h.num_nodes(),
        nets: h.num_nets(),
        metric_seconds,
        construct_seconds,
        stats,
        cost,
    }
}

/// Peak resident set size of this process in bytes (`VmHWM`), or 0 when
/// the platform does not expose it.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(samples: &[Sample], threads: usize, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"trajectory\",");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"peak_rss_bytes\": {},", peak_rss_bytes());
    out.push_str("  \"instances\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let st = &s.stats;
        let wasted_ratio = if st.probes > 0 {
            st.wasted_probes as f64 / st.probes as f64
        } else {
            0.0
        };
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(out, "      \"nodes\": {},", s.nodes);
        let _ = writeln!(out, "      \"nets\": {},", s.nets);
        let _ = writeln!(out, "      \"metric_seconds\": {:.6},", s.metric_seconds);
        let _ = writeln!(
            out,
            "      \"construct_seconds\": {:.6},",
            s.construct_seconds
        );
        let _ = writeln!(
            out,
            "      \"probe_seconds\": {:.6},",
            st.probe_time.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "      \"commit_seconds\": {:.6},",
            st.commit_time.as_secs_f64()
        );
        let _ = writeln!(out, "      \"rounds\": {},", st.rounds);
        let _ = writeln!(out, "      \"probes\": {},", st.probes);
        let _ = writeln!(out, "      \"wasted_probes\": {},", st.wasted_probes);
        let _ = writeln!(out, "      \"wasted_probe_ratio\": {wasted_ratio:.6},");
        let _ = writeln!(out, "      \"deferrals\": {},", st.deferrals);
        let _ = writeln!(out, "      \"injections\": {},", st.injections);
        let _ = writeln!(out, "      \"converged\": {},", st.converged);
        let _ = writeln!(out, "      \"cost\": {}", s.cost);
        out.push_str(if i + 1 == samples.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One `(instance, threads)` cell of the `--kernel` sweep.
struct KernelCell {
    threads: usize,
    metric_seconds: f64,
    stats: InjectionStats,
}

/// One instance of the `--kernel` sweep: the thread ladder plus a single
/// construction (timed at one thread — construction is single-threaded).
struct KernelSample {
    name: String,
    nodes: usize,
    nets: usize,
    construct_seconds: f64,
    cost: f64,
    cells: Vec<KernelCell>,
}

/// Runs the metric phase at every thread count on the ladder, asserting
/// the computed lengths are bit-identical throughout, and constructs once
/// from the shared metric.
fn measure_kernel_sweep(name: String, h: &Hypergraph, spec: &TreeSpec) -> KernelSample {
    let mut cells = Vec::new();
    let mut baseline: Option<htp_core::SpreadingMetric> = None;
    for threads in [1usize, 2, 4, 8] {
        let params = FlowParams {
            threads,
            ..FlowParams::default()
        };
        let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
        let start = Instant::now();
        let (metric, stats) = compute_spreading_metric(h, spec, params, &mut rng);
        let metric_seconds = start.elapsed().as_secs_f64();
        eprintln!(
            "{name} T={threads}: metric {metric_seconds:.3}s \
             ({} rounds: {} dial / {} heap, repricing {:.3}s)",
            stats.rounds,
            stats.dial_rounds,
            stats.heap_rounds,
            stats.repricing_time.as_secs_f64()
        );
        match &baseline {
            None => baseline = Some(metric),
            Some(first) => assert_eq!(
                first.lengths(),
                metric.lengths(),
                "{name}: metric diverged at {threads} threads"
            ),
        }
        cells.push(KernelCell {
            threads,
            metric_seconds,
            stats,
        });
    }

    let metric = baseline.expect("the ladder is non-empty");
    // Re-derive the construction RNG exactly as `measure` does: the
    // stream continues past the metric phase.
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let params = FlowParams {
        threads: 1,
        ..FlowParams::default()
    };
    let (_, _) = compute_spreading_metric(h, spec, params, &mut rng);
    let start = Instant::now();
    let partition =
        construct_partition(h, spec, &metric, &mut rng).expect("construction must succeed");
    let construct_seconds = start.elapsed().as_secs_f64();
    validate::validate(h, spec, &partition).expect("construction output is feasible");
    let cost = cost::partition_cost(h, spec, &partition);
    eprintln!("{name}: construct {construct_seconds:.3}s, cost {cost}");

    KernelSample {
        name,
        nodes: h.num_nodes(),
        nets: h.num_nets(),
        construct_seconds,
        cost,
        cells,
    }
}

fn render_kernel(samples: &[KernelSample], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"trajectory-kernel\",");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"peak_rss_bytes\": {},", peak_rss_bytes());
    out.push_str("  \"instances\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(out, "      \"nodes\": {},", s.nodes);
        let _ = writeln!(out, "      \"nets\": {},", s.nets);
        let _ = writeln!(
            out,
            "      \"construct_seconds\": {:.6},",
            s.construct_seconds
        );
        let _ = writeln!(out, "      \"cost\": {},", s.cost);
        out.push_str("      \"threads\": [\n");
        let t1 = s.cells.first().map_or(0.0, |c| c.metric_seconds);
        for (j, c) in s.cells.iter().enumerate() {
            let st = &c.stats;
            let efficiency = if c.metric_seconds > 0.0 && c.threads > 0 {
                t1 / (c.metric_seconds * c.threads as f64)
            } else {
                0.0
            };
            // Kernel choice is per-round: under `FrontierMode::Auto` the
            // quantization probe decides each round, and these counters
            // record the split.
            let kernel = if st.dial_rounds == 0 {
                "heap"
            } else if st.heap_rounds == 0 {
                "dial"
            } else {
                "mixed"
            };
            out.push_str("        {\n");
            let _ = writeln!(out, "          \"threads\": {},", c.threads);
            let _ = writeln!(
                out,
                "          \"metric_seconds\": {:.6},",
                c.metric_seconds
            );
            let _ = writeln!(
                out,
                "          \"probe_seconds\": {:.6},",
                st.probe_time.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "          \"commit_seconds\": {:.6},",
                st.commit_time.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "          \"repricing_seconds\": {:.6},",
                st.repricing_time.as_secs_f64()
            );
            let _ = writeln!(out, "          \"efficiency\": {efficiency:.6},");
            let _ = writeln!(out, "          \"kernel\": \"{kernel}\",");
            let _ = writeln!(out, "          \"dial_rounds\": {},", st.dial_rounds);
            let _ = writeln!(out, "          \"heap_rounds\": {},", st.heap_rounds);
            let _ = writeln!(out, "          \"rounds\": {},", st.rounds);
            let _ = writeln!(out, "          \"probes\": {},", st.probes);
            let _ = writeln!(out, "          \"converged\": {}", st.converged);
            out.push_str(if j + 1 == s.cells.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == samples.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One rung of the refinement-pool thread ladder: the same V-cycle run
/// with only `refine.threads` changed. The digest-equality assertion in
/// [`measure_multilevel`] guarantees the partition is bit-identical, so
/// only the timings vary.
struct LadderCell {
    threads: usize,
    total_seconds: f64,
    refine_seconds: f64,
}

/// One instance's multilevel (V-cycle) measurements.
struct MlSample {
    name: String,
    nodes: usize,
    nets: usize,
    total_seconds: f64,
    certified: bool,
    result: VCycleResult,
    refine_ladder: Vec<LadderCell>,
}

/// FNV-1a digest over the leaf assignment plus the exact cost bits: equal
/// digests mean equal partitions for all practical purposes.
fn partition_digest(h: &Hypergraph, r: &VCycleResult) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    for v in h.nodes() {
        d ^= r.partition.leaf_of(v).index() as u64;
        d = d.wrapping_mul(PRIME);
    }
    d ^= r.cost.to_bits();
    d.wrapping_mul(PRIME)
}

fn measure_multilevel(
    name: String,
    h: &Hypergraph,
    spec: &TreeSpec,
    threads: usize,
    ladder: bool,
) -> MlSample {
    let run_once = |refine_threads: usize| -> (VCycleResult, f64) {
        let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
        let mut params = VCycleParams::default();
        params.partitioner.flow.threads = threads;
        params.refine.threads = refine_threads;
        let start = Instant::now();
        let result = vcycle_partition(h, spec, params, &mut rng).expect("V-cycle must succeed");
        (result, start.elapsed().as_secs_f64())
    };

    let (result, total_seconds) = run_once(threads);
    let cert = htp_verify::certificate::certify(h, spec, &result.partition);
    assert!(
        cert.is_valid(),
        "{name}: V-cycle output failed certification: {:?}",
        cert.violations
    );
    eprintln!(
        "{name}: {} levels, coarsest {} nodes, total {total_seconds:.3}s \
         (coarsen {:.3}s, solve {:.3}s), cost {} (coarsest {})",
        result.num_levels,
        result.coarsest_nodes,
        result.coarsen_seconds,
        result.solve_seconds,
        result.cost,
        result.coarsest_cost
    );

    let mut refine_ladder = Vec::new();
    if ladder {
        let baseline = partition_digest(h, &result);
        for refine_threads in [1usize, 2, 4, 8] {
            let (r, total) = run_once(refine_threads);
            assert_eq!(
                partition_digest(h, &r),
                baseline,
                "{name}: refinement diverged at {refine_threads} threads"
            );
            let refine_seconds: f64 = r.levels.iter().map(|l| l.refine_seconds).sum();
            eprintln!(
                "{name} refine T={refine_threads}: total {total:.3}s, refine {refine_seconds:.3}s \
                 (digest identical)"
            );
            refine_ladder.push(LadderCell {
                threads: refine_threads,
                total_seconds: total,
                refine_seconds,
            });
        }
    } else {
        eprintln!("{name}: refine-thread ladder skipped (instance above the 150k-node cap)");
    }

    MlSample {
        name,
        nodes: h.num_nodes(),
        nets: h.num_nets(),
        total_seconds,
        certified: cert.is_valid(),
        result,
        refine_ladder,
    }
}

fn render_multilevel(samples: &[MlSample], threads: usize, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"trajectory-multilevel\",");
    let _ = writeln!(out, "  \"schema_version\": 2,");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"peak_rss_bytes\": {},", peak_rss_bytes());
    out.push_str("  \"instances\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let r = &s.result;
        let refine_seconds: f64 = r.levels.iter().map(|l| l.refine_seconds).sum();
        let refinement_gain: f64 = r
            .levels
            .iter()
            .map(|l| l.projected_cost - l.refined_cost)
            .sum();
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(out, "      \"nodes\": {},", s.nodes);
        let _ = writeln!(out, "      \"nets\": {},", s.nets);
        let _ = writeln!(out, "      \"num_levels\": {},", r.num_levels);
        let _ = writeln!(out, "      \"coarsest_nodes\": {},", r.coarsest_nodes);
        let _ = writeln!(out, "      \"coarsest_cost\": {},", r.coarsest_cost);
        let _ = writeln!(out, "      \"total_seconds\": {:.6},", s.total_seconds);
        let _ = writeln!(out, "      \"coarsen_seconds\": {:.6},", r.coarsen_seconds);
        let _ = writeln!(out, "      \"solve_seconds\": {:.6},", r.solve_seconds);
        let _ = writeln!(out, "      \"refine_seconds\": {refine_seconds:.6},");
        let _ = writeln!(out, "      \"refinement_gain\": {refinement_gain},");
        let _ = writeln!(out, "      \"outcome\": \"{}\",", r.outcome);
        let _ = writeln!(out, "      \"certified\": {},", s.certified);
        let _ = writeln!(out, "      \"cost\": {},", r.cost);
        out.push_str("      \"refine_ladder\": [\n");
        for (j, c) in s.refine_ladder.iter().enumerate() {
            out.push_str("        {\n");
            let _ = writeln!(out, "          \"threads\": {},", c.threads);
            let _ = writeln!(out, "          \"total_seconds\": {:.6},", c.total_seconds);
            let _ = writeln!(
                out,
                "          \"refine_seconds\": {:.6},",
                c.refine_seconds
            );
            let _ = writeln!(out, "          \"identical\": true");
            out.push_str(if j + 1 == s.refine_ladder.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ],\n");
        out.push_str("      \"levels\": [\n");
        for (j, lvl) in r.levels.iter().enumerate() {
            out.push_str("        {\n");
            let _ = writeln!(out, "          \"nodes\": {},", lvl.nodes);
            let _ = writeln!(out, "          \"nets\": {},", lvl.nets);
            let _ = writeln!(
                out,
                "          \"coarsen_seconds\": {:.6},",
                lvl.coarsen_seconds
            );
            let _ = writeln!(
                out,
                "          \"refine_seconds\": {:.6},",
                lvl.refine_seconds
            );
            let _ = writeln!(out, "          \"projected_cost\": {},", lvl.projected_cost);
            let _ = writeln!(out, "          \"refined_cost\": {},", lvl.refined_cost);
            let _ = writeln!(
                out,
                "          \"flow_pairs_tried\": {},",
                lvl.flow_pairs_tried
            );
            let _ = writeln!(
                out,
                "          \"flow_pairs_accepted\": {},",
                lvl.flow_pairs_accepted
            );
            let _ = writeln!(
                out,
                "          \"flow_pairs_skipped\": {},",
                lvl.flow_pairs_skipped
            );
            let _ = writeln!(
                out,
                "          \"flow_skipped_gain_bound\": {},",
                lvl.flow_skipped_gain_bound
            );
            let _ = writeln!(
                out,
                "          \"flow_moved_nodes\": {},",
                lvl.flow_moved_nodes
            );
            let _ = writeln!(out, "          \"frozen_fillers\": {},", lvl.frozen_fillers);
            let _ = writeln!(out, "          \"merged_nets\": {},", lvl.merged_nets);
            let _ = writeln!(out, "          \"dropped_nets\": {},", lvl.dropped_nets);
            let _ = writeln!(out, "          \"hfm_used\": {}", lvl.hfm_used);
            out.push_str(if j + 1 == r.levels.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == samples.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let multilevel = args.iter().any(|a| a == "--multilevel");
    let kernel = args.iter().any(|a| a == "--kernel");
    let default_out = if multilevel {
        "BENCH_10.json"
    } else if kernel {
        "BENCH_9.json"
    } else {
        "BENCH_5.json"
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default_out.to_string());
    let threads = threads_from_env();

    let json = if multilevel {
        // V-cycle scale: the flat path tops out around 2k nodes; the
        // multilevel engine is benchmarked at 20k (quick) / 100k nodes,
        // plus the 1M-node scale target in full mode. The refine-thread
        // ladder (4 extra full runs per instance) is capped at 150k
        // nodes so the 1M certification run happens exactly once.
        const LADDER_MAX_NODES: usize = 150_000;
        let instances = if quick {
            vec![rent_instance(20_000), clustered_instance(200, 100)]
        } else {
            vec![
                rent_instance(100_000),
                clustered_instance(1000, 100),
                rent_instance(1_000_000),
            ]
        };
        let mut samples = Vec::new();
        for (name, h) in instances {
            let spec = paper_spec(&h);
            let ladder = h.num_nodes() <= LADDER_MAX_NODES;
            samples.push(measure_multilevel(name, &h, &spec, threads, ladder));
        }
        render_multilevel(&samples, threads, quick)
    } else if kernel {
        // Same instances and seed as the flat trajectory, so BENCH_9's
        // one-thread cells are directly comparable to BENCH_5.
        let (rent_nodes, clusters, cluster_size) =
            if quick { (400, 4, 100) } else { (2000, 8, 250) };
        let mut samples = Vec::new();
        for (name, h) in [
            rent_instance(rent_nodes),
            clustered_instance(clusters, cluster_size),
        ] {
            let spec = paper_spec(&h);
            samples.push(measure_kernel_sweep(name, &h, &spec));
        }
        render_kernel(&samples, quick)
    } else {
        let (rent_nodes, clusters, cluster_size) =
            if quick { (400, 4, 100) } else { (2000, 8, 250) };
        let mut samples = Vec::new();
        for (name, h) in [
            rent_instance(rent_nodes),
            clustered_instance(clusters, cluster_size),
        ] {
            let spec = paper_spec(&h);
            samples.push(measure(name, &h, &spec, threads));
        }
        render(&samples, threads, quick)
    };

    std::fs::write(&out_path, &json).expect("writing the trajectory JSON");
    println!("wrote {out_path}");
}
