//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. the free parameters `α` and `Δ` of Algorithm 2 (the paper never
//!    states them),
//! 2. the number of outer iterations `N`,
//! 3. the conclusions' suggestion of multiple constructions per spreading
//!    metric (quality vs. runtime trade-off).
//!
//! Runs on the c2670 surrogate by default; `--quick` shrinks to a smaller
//! clustered instance.

use std::time::Instant;

use htp_bench::{paper_spec, EXPERIMENT_SEED};
use htp_core::injector::FlowParams;
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use htp_netlist::gen::iscas::surrogate_by_name;
use htp_netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(quick: bool) -> Hypergraph {
    if quick {
        let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
        clustered_hypergraph(
            ClusteredParams {
                clusters: 8,
                cluster_size: 16,
                intra_nets: 600,
                inter_nets: 60,
                min_net_size: 2,
                max_net_size: 3,
            },
            &mut rng,
        )
        .hypergraph
    } else {
        surrogate_by_name("c2670", EXPERIMENT_SEED).expect("known circuit")
    }
}

fn run(h: &Hypergraph, params: PartitionerParams) -> (f64, f64) {
    let spec = paper_spec(h);
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let start = Instant::now();
    let result = FlowPartitioner::try_new(params)
        .expect("valid partitioner parameters")
        .run(h, &spec, &mut rng)
        .expect("FLOW succeeds on the ablation workload");
    (result.cost, start.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let h = workload(quick);
    println!(
        "ABLATION on {} nodes / {} nets",
        h.num_nodes(),
        h.num_nets()
    );

    println!("\n(a) Exponential re-pricing: alpha x delta sweep (N = 2, M = 2)");
    let mut t = htp_bench::TextTable::new(["alpha", "delta", "cost", "secs"]);
    for alpha in [0.5, 1.0, 2.0] {
        for delta in [0.25, 0.5, 1.0] {
            let params = PartitionerParams {
                iterations: 2,
                constructions_per_metric: 2,
                flow: FlowParams {
                    alpha,
                    delta,
                    ..FlowParams::default()
                },
            };
            let (cost, secs) = run(&h, params);
            t.row([
                format!("{alpha}"),
                format!("{delta}"),
                format!("{cost:.0}"),
                format!("{secs:.1}"),
            ]);
        }
    }
    println!("{t}");

    println!("(b) Outer iterations N (M = 1)");
    let mut t = htp_bench::TextTable::new(["N", "cost", "secs"]);
    for n in [1, 2, 4, 8] {
        let params = PartitionerParams {
            iterations: n,
            constructions_per_metric: 1,
            flow: FlowParams::default(),
        };
        let (cost, secs) = run(&h, params);
        t.row([format!("{n}"), format!("{cost:.0}"), format!("{secs:.1}")]);
    }
    println!("{t}");

    println!("(c) Constructions per metric M (N = 2): the conclusions' extension");
    let mut t = htp_bench::TextTable::new(["M", "cost", "secs"]);
    for m in [1, 2, 4, 8] {
        let params = PartitionerParams {
            iterations: 2,
            constructions_per_metric: m,
            flow: FlowParams::default(),
        };
        let (cost, secs) = run(&h, params);
        t.row([format!("{m}"), format!("{cost:.0}"), format!("{secs:.1}")]);
    }
    println!("{t}");
    println!("(d) RFM split seeding: random vs spectral (Fiedler sweep)");
    {
        use htp_baselines::rfm::{rfm_partition, RfmParams, SplitInit};
        use htp_model::cost::partition_cost;
        let spec = paper_spec(&h);
        let mut t = htp_bench::TextTable::new(["init", "cost", "secs"]);
        for (name, init) in [
            ("random", SplitInit::Random),
            ("spectral", SplitInit::Spectral),
        ] {
            let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
            let start = Instant::now();
            let p = rfm_partition(
                &h,
                &spec,
                RfmParams {
                    init,
                    ..RfmParams::default()
                },
                &mut rng,
            )
            .expect("RFM succeeds on the ablation workload");
            let secs = start.elapsed().as_secs_f64();
            t.row([
                name.to_string(),
                format!("{:.0}", partition_cost(&h, &spec, &p)),
                format!("{secs:.1}"),
            ]);
        }
        println!("{t}");
    }

    println!("(e) Multilevel: flow-injection clustering + coarse FLOW vs flat FLOW");
    {
        use htp_cluster::pipeline::{clustered_flow_partition, ClusteredFlowParams};
        let spec = paper_spec(&h);
        let mut t = htp_bench::TextTable::new(["variant", "cost", "secs"]);
        let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
        let start = Instant::now();
        let flat = FlowPartitioner::try_new(PartitionerParams::default())
            .expect("valid partitioner parameters")
            .run(&h, &spec, &mut rng)
            .expect("flat FLOW succeeds");
        t.row([
            "flat".to_string(),
            format!("{:.0}", flat.cost),
            format!("{:.1}", start.elapsed().as_secs_f64()),
        ]);
        let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
        let start = Instant::now();
        let multi = clustered_flow_partition(&h, &spec, ClusteredFlowParams::default(), &mut rng)
            .expect("multilevel FLOW succeeds");
        t.row([
            format!("multilevel ({} coarse)", multi.coarse_nodes),
            format!("{:.0}", multi.cost),
            format!("{:.1}", start.elapsed().as_secs_f64()),
        ]);
        println!("{t}");
    }

    println!("Expect (c): cost drops with M at little extra runtime, because");
    println!("the metric computation dominates (paper Section 5).");
}
