//! Cost-vs-budget curve: how much partition quality a wall-clock deadline
//! buys on a Rent-style circuit (default `rent:2000`).
//!
//! First a full (unbounded) FLOW run establishes the reference cost and
//! wall-clock time `T`. The run is then repeated under deadlines of 10%,
//! 25%, 50%, and 100% of `T`; each bounded run reports its outcome, the
//! budget counters, and its cost relative to the full run. Run with
//! `--release`; `--quick` shrinks the circuit and iteration count.

use std::time::Duration;

use htp_bench::{flow_params, paper_spec, run_flow, run_flow_with_budget, EXPERIMENT_SEED};
use htp_core::Budget;
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outer FLOW iterations for the reference run.
const FLOW_ITERATIONS: usize = 3;
/// Deadline fractions of the full run's wall-clock time.
const FRACTIONS: [f64; 4] = [0.10, 0.25, 0.50, 1.00];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let nodes = if quick { 400 } else { 2000 };
    let iterations = if quick { 2 } else { FLOW_ITERATIONS };

    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = paper_spec(&h);

    println!("COST VS BUDGET: FLOW ON rent:{nodes}");
    println!(
        "(binary tree, height 4; N = {iterations} iterations, 4 constructions/metric; \
         deadlines as fractions of the full run)"
    );
    println!();

    eprintln!("running the unbounded reference ...");
    let (full, _) = run_flow(&h, &spec, EXPERIMENT_SEED, flow_params(iterations));
    eprintln!("full run: cost {:.0}, {:.2}s", full.cost, full.seconds);

    let mut table = htp_bench::TextTable::new([
        "budget",
        "deadline(s)",
        "outcome",
        "rounds",
        "probes",
        "cost",
        "vs full",
    ]);
    for fraction in FRACTIONS {
        let deadline = Duration::from_secs_f64(full.seconds * fraction);
        let budget = Budget::unlimited().with_deadline(deadline);
        let bounded =
            run_flow_with_budget(&h, &spec, EXPERIMENT_SEED, flow_params(iterations), &budget);
        table.row([
            format!("{:.0}%", fraction * 100.0),
            format!("{:.2}", deadline.as_secs_f64()),
            bounded.outcome.to_string(),
            bounded.rounds_used.to_string(),
            bounded.probes_used.to_string(),
            format!("{:.0}", bounded.run.cost),
            format!("{:+.1}%", (bounded.run.cost / full.cost - 1.0) * 100.0),
        ]);
        eprintln!(
            "done {:.0}% ({}, cost {:.0})",
            fraction * 100.0,
            bounded.outcome,
            bounded.run.cost
        );
    }
    table.row([
        "unbounded".to_string(),
        format!("{:.2}", full.seconds),
        "complete".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.0}", full.cost),
        "+0.0%".to_string(),
    ]);
    println!("{table}");
    println!(
        "A budgeted run salvages the best partition found before the deadline; \
         `degraded` means it came from a partially-converged metric."
    );
}
