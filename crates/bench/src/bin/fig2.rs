//! Regenerates the paper's Figure 2 worked example: a 16-node, 30-edge
//! graph partitioned into the hierarchy `C_0 = 4, C_1 = 8, w_0 = 1,
//! w_1 = 2`, together with
//!
//! * the reference partition's cost and induced (Lemma 1) spreading metric,
//! * the FLOW algorithm's result,
//! * the exact (P1) lower bound from the cutting-plane LP (Lemma 2).

use htp_bench::{figure2, figure2_reference_partition, flow_params, run_flow};
use htp_core::lower_bound::verify_lemma1;
use htp_lp::cutting::{lower_bound, CuttingPlaneParams};
use htp_model::cost;

fn main() {
    let (h, spec) = figure2();
    println!("FIGURE 2: worked example — 16 nodes, 30 unit edges");
    println!("hierarchy: C_0 = 4, C_1 = 8, w_0 = 1, w_1 = 2");
    println!();

    let reference = figure2_reference_partition();
    let ref_cost = cost::partition_cost(&h, &spec, &reference);
    let (feas, obj) = verify_lemma1(&h, &spec, &reference, 1e-9);
    println!("reference partition cost          : {ref_cost}");
    println!("Lemma 1 induced-metric objective  : {obj}");
    println!("Lemma 1 induced metric feasible   : {}", feas.feasible);

    let (flow, result) = run_flow(&h, &spec, 1997, flow_params(8));
    println!("FLOW best cost (8 iterations)     : {}", flow.cost);
    println!(
        "FLOW metric objective             : {:.3}",
        result.metric.objective(&h)
    );

    let lb = lower_bound(&h, &spec, CuttingPlaneParams::default())
        .expect("the (P1) relaxation is well-formed");
    println!(
        "LP lower bound (Lemma 2)          : {:.3}  (converged: {}, {} rows, {} rounds)",
        lb.lower_bound, lb.converged, lb.constraints, lb.rounds
    );
    println!();

    let gap = flow.cost / lb.lower_bound.max(1e-9);
    println!("FLOW cost is within {gap:.2}x of the LP lower bound.");
    // Per-net costs of the reference partition, mirroring the figure's
    // labelled spreading metric (d = 2 for level-0 cuts, d = 6 for
    // level-1 cuts, 0 inside leaves).
    println!();
    println!("reference-partition net lengths d(e) = cost(e)/c(e):");
    let metric = htp_core::SpreadingMetric::from_partition(&h, &spec, &reference);
    let mut counts = std::collections::BTreeMap::new();
    for e in h.nets() {
        *counts
            .entry(format!("{:.0}", metric.length(e)))
            .or_insert(0) += 1;
    }
    for (d, n) in counts {
        println!("  d = {d}: {n} edges");
    }
}
