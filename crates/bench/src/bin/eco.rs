//! Incremental-repartitioning (ECO) benchmark, writing a
//! machine-readable edit-rate sweep to `BENCH_8.json`.
//!
//! For each instance the bench runs one cold bootstrap solve, then for
//! each edit rate generates a spatially *clustered* edit script (the
//! realistic ECO shape — one region of the design churns, the rest
//! stands), applies it, and solves the edited netlist twice:
//!
//! * **cold** — a from-scratch [`FlowPartitioner`] run, and
//! * **warm** — [`warm_partition`], re-pricing only the touched frontier
//!   from the bootstrap's converged lengths and replaying untouched
//!   prior subtrees through salvage construction.
//!
//! Both results are certified by the independent oracle; the row records
//! wall-clock for each path, the speedup, the certified cost delta, and
//! the fraction of the edited netlist covered by salvaged subtrees.
//!
//! Usage: `eco [--quick] [--out PATH]`
//!
//! The binary self-checks and exits 1 when the sweep stops demonstrating
//! what it exists to measure: any uncertified result, no row taking the
//! warm path, or (full mode) the headline rent:20000 @1% row falling
//! under a 2× speedup or any warm cost drifting more than 5% above cold.

use std::fmt::Write as _;
use std::time::Instant;

use htp_bench::{flow_params, paper_spec, EXPERIMENT_SEED};
use htp_core::partitioner::FlowPartitioner;
use htp_core::Budget;
use htp_eco::{random_delta_clustered, warm_partition, WarmPolicy};
use htp_model::{HierarchicalPartition, TreeSpec};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::{Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GEN_SEED: u64 = 1997;
const EDIT_RATES: [f64; 3] = [0.01, 0.05, 0.20];

/// A Rent-rule instance with *mixed* cell sizes (every 7th node is a
/// double-size cell). The size mix matters: on an all-unit netlist the
/// constraint oracle's early-exit sits exactly on integer prefix-weight
/// boundaries and the cold metric converges into a shallow basin —
/// which any size-perturbing edit then breaks, so a from-scratch solve
/// of the *edited* netlist probes ~4× deeper than the bootstrap did and
/// the warm-vs-cold comparison measures that degeneracy instead of the
/// warm machinery. Real netlists have mixed cell sizes anyway.
fn instance(nodes: usize) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(GEN_SEED);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let mut b = HypergraphBuilder::new();
    for v in h.nodes() {
        b.add_node(if v.index() % 7 == 0 { 2 } else { 1 });
    }
    for net in h.nets() {
        let _ = b.add_net_lenient(h.net_capacity(net), h.net_pins(net).to_vec());
    }
    b.build().expect("resizing nodes keeps the netlist valid")
}

/// Certifies `p` with the independent oracle; `None` cost means invalid.
fn certify(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> Option<f64> {
    let cert = htp_verify::certificate::certify(h, spec, p);
    if cert.is_valid() {
        cert.cost
    } else {
        eprintln!("  certification failed: {:?}", cert.violations);
        None
    }
}

struct Row {
    instance: String,
    nodes: usize,
    edit_rate: f64,
    warm: bool,
    cold_seconds: f64,
    warm_seconds: f64,
    speedup: f64,
    cold_cost: f64,
    warm_cost: f64,
    cost_delta: f64,
    salvaged_fraction: f64,
    certified: bool,
}

/// One instance's edit-rate sweep: bootstrap once, then cold-vs-warm on
/// every rate's edited netlist. The spec stays the bootstrap's — edit
/// scripts keep total size roughly stable, and a fixed spec is exactly
/// how a chained ECO session holds its hierarchy across edits.
fn sweep(name: &str, nodes: usize, iterations: usize) -> Vec<Row> {
    let h = instance(nodes);
    let spec = paper_spec(&h);
    let params = flow_params(iterations);
    let policy = WarmPolicy::default();

    let t0 = Instant::now();
    let prior = FlowPartitioner::try_new(params)
        .expect("valid params")
        .run(&h, &spec, &mut StdRng::seed_from_u64(EXPERIMENT_SEED))
        .expect("bootstrap solve succeeds on the bench instances");
    eprintln!(
        "  {name}: bootstrap cost {:.0} in {:.2}s",
        prior.cost,
        t0.elapsed().as_secs_f64()
    );

    EDIT_RATES
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut script_rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ (0xec0 + i as u64));
            let delta = random_delta_clustered(&h, rate, &mut script_rng);
            let applied = delta.apply(&h).expect("generated scripts always apply");
            let edited = &applied.hypergraph;

            // Cold and warm run the same seed and params as the
            // bootstrap, so the row measures the warm machinery rather
            // than injector draw luck (draw-to-draw cost variance on
            // one instance is several times the 5% acceptance bound).
            let t0 = Instant::now();
            let cold = FlowPartitioner::try_new(params)
                .expect("valid params")
                .run(edited, &spec, &mut StdRng::seed_from_u64(EXPERIMENT_SEED))
                .expect("cold solve succeeds on the edited netlist");
            let cold_seconds = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let warm = warm_partition(
                edited,
                &spec,
                &params,
                &policy,
                &prior.partition,
                prior.metric.lengths(),
                &applied.report,
                &mut StdRng::seed_from_u64(EXPERIMENT_SEED),
                &Budget::unlimited(),
            )
            .expect("warm solve succeeds on the edited netlist");
            let warm_seconds = t0.elapsed().as_secs_f64();

            let cold_cert = certify(edited, &spec, &cold.partition);
            let warm_cert = certify(edited, &spec, &warm.partition);
            let certified = cold_cert.is_some() && warm_cert.is_some();
            let cold_cost = cold_cert.unwrap_or(cold.cost);
            let warm_cost = warm_cert.unwrap_or(warm.cost);
            let row = Row {
                instance: name.to_owned(),
                nodes,
                edit_rate: rate,
                warm: warm.warm,
                cold_seconds,
                warm_seconds,
                speedup: cold_seconds / warm_seconds.max(1e-9),
                cold_cost,
                warm_cost,
                cost_delta: (warm_cost - cold_cost) / cold_cost,
                salvaged_fraction: warm.salvage.salvaged_nodes as f64 / edited.num_nodes() as f64,
                certified,
            };
            eprintln!(
                "  {name} @{:>4.0}%: cold {:.2}s / warm {:.2}s ({:.2}x), \
                 cost {:+.2}%, salvaged {:.0}%, warm path {}",
                rate * 100.0,
                row.cold_seconds,
                row.warm_seconds,
                row.speedup,
                row.cost_delta * 100.0,
                row.salvaged_fraction * 100.0,
                row.warm,
            );
            row
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_8.json".to_owned());

    // Quick keeps CI honest but fast: one instance just past the warm
    // policy's node floor, one metric round. Full is the paper-style
    // sweep, headlined by rent:20000.
    let plan: &[(&str, usize, usize)] = if quick {
        &[("rent:1200", 1200, 1)]
    } else {
        &[("rent:5000", 5000, 2), ("rent:20000", 20_000, 2)]
    };

    let mut rows = Vec::new();
    for &(name, nodes, iterations) in plan {
        eprintln!("sweep {name} ({nodes} nodes, {iterations} iterations)");
        rows.extend(sweep(name, nodes, iterations));
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"eco\",");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"instance\": \"{}\",", r.instance);
        let _ = writeln!(out, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(out, "      \"edit_rate\": {},", r.edit_rate);
        let _ = writeln!(out, "      \"warm\": {},", r.warm);
        let _ = writeln!(out, "      \"cold_seconds\": {:.4},", r.cold_seconds);
        let _ = writeln!(out, "      \"warm_seconds\": {:.4},", r.warm_seconds);
        let _ = writeln!(out, "      \"speedup\": {:.3},", r.speedup);
        let _ = writeln!(out, "      \"cold_cost\": {:.1},", r.cold_cost);
        let _ = writeln!(out, "      \"warm_cost\": {:.1},", r.warm_cost);
        let _ = writeln!(out, "      \"cost_delta\": {:.4},", r.cost_delta);
        let _ = writeln!(
            out,
            "      \"salvaged_fraction\": {:.4},",
            r.salvaged_fraction
        );
        let _ = writeln!(out, "      \"certified\": {}", r.certified);
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, &out).expect("write the summary");
    eprintln!("wrote {out_path}");

    // Self-checks: the bench's reason to exist is certified-equal-quality
    // warm solves that are actually faster on local edits.
    let mut failed = false;
    for r in &rows {
        if !r.certified {
            eprintln!(
                "self-check failed: {} @{}% is uncertified",
                r.instance, r.edit_rate
            );
            failed = true;
        }
    }
    if !rows.iter().any(|r| r.warm) {
        eprintln!("self-check failed: no row took the warm path");
        failed = true;
    }
    if !quick {
        for r in &rows {
            if r.cost_delta > 0.05 {
                eprintln!(
                    "self-check failed: {} @{}% warm cost is {:.1}% above cold",
                    r.instance,
                    r.edit_rate,
                    r.cost_delta * 100.0
                );
                failed = true;
            }
        }
        let headline = rows
            .iter()
            .find(|r| r.instance == "rent:20000" && r.edit_rate == 0.01)
            .expect("the full plan contains the headline row");
        if !(headline.warm && headline.speedup >= 2.0) {
            eprintln!(
                "self-check failed: rent:20000 @1% must take the warm path at \
                 a 2x speedup (got warm {} at {:.2}x)",
                headline.warm, headline.speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
