//! Regenerates the paper's Table 1: sizes of the ISCAS85 test cases.
//!
//! The circuits are deterministic surrogates (see `DESIGN.md`); this table
//! reports both the published scale of the real circuits and the measured
//! statistics of the surrogates actually used in Tables 2 and 3.

use htp_bench::EXPERIMENT_SEED;
use htp_netlist::gen::iscas::{surrogate, PROFILES};
use htp_netlist::NetlistStats;

fn main() {
    println!("TABLE 1: THE SIZES OF THE ISCAS85 TEST CASES (surrogates)");
    println!();
    let mut table = htp_bench::TextTable::new([
        "circuit",
        "gates(real)",
        "PIs(real)",
        "#nodes",
        "#nets",
        "#pins",
    ]);
    for profile in PROFILES {
        let h = surrogate(profile, EXPERIMENT_SEED);
        let stats = NetlistStats::of(&h);
        table.row([
            profile.name.to_string(),
            profile.gates.to_string(),
            profile.primary_inputs.to_string(),
            stats.nodes.to_string(),
            stats.nets.to_string(),
            stats.pins.to_string(),
        ]);
    }
    println!("{table}");
}
