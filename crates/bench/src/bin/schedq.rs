//! Schedule-quality ablation: does the slack-aware adaptive probe
//! scheduler trade metric quality for its probe savings?
//!
//! For each reference instance this sweeps several flow seeds per
//! schedule, then decouples metric quality from construction luck by
//! carving each metric with the *same* bank of fresh construction seeds.
//! A single-draw comparison (like `trajectory`'s cost column) conflates
//! the two: the schedules consume different amounts of randomness, so
//! their construction streams diverge and any one pairing can swing
//! double-digit percentages either way.
//!
//! Measured answer (seeds 1997/11/22/33 × 8 constructions): mean costs
//! are within noise of each other — adaptive is ~7% *better* on
//! rent:2000 and within 0.5% on clustered:8x250 — while spending 2–5×
//! fewer probes. The deferred schedule converges with fewer injections
//! (a leaner feasible metric), but best-of-k construction absorbs the
//! difference.
//!
//! Usage: `schedq` (no flags; runs both reference instances).

use htp_bench::{paper_spec, EXPERIMENT_SEED};
use htp_core::construct::construct_partition;
use htp_core::injector::{compute_spreading_metric, FlowParams, ProbeSchedule};
use htp_model::cost;
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fresh construction seeds shared by every (schedule, flow seed) cell.
const CONSTRUCTIONS: u64 = 8;
/// Flow seeds swept per schedule.
const FLOW_SEEDS: [u64; 4] = [EXPERIMENT_SEED, 11, 22, 33];

fn instances() -> Vec<(String, Hypergraph)> {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ 1);
    let rent = rent_circuit(
        RentParams {
            nodes: 2000,
            primary_inputs: 125,
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ 2);
    let clustered = clustered_hypergraph(
        ClusteredParams {
            clusters: 8,
            cluster_size: 250,
            intra_nets: 2000 * 5 / 2,
            inter_nets: 2000 / 5,
            ..ClusteredParams::default()
        },
        &mut rng,
    )
    .hypergraph;
    vec![
        ("rent:2000".into(), rent),
        ("clustered:8x250".into(), clustered),
    ]
}

fn main() {
    for (name, h) in instances() {
        println!("== {name} ==");
        run_instance(&h);
    }
}

fn run_instance(h: &Hypergraph) {
    let spec = paper_spec(h);

    for schedule in [ProbeSchedule::Exhaustive, ProbeSchedule::Adaptive] {
        for flow_seed in FLOW_SEEDS {
            let params = FlowParams {
                threads: 1,
                schedule,
                ..FlowParams::default()
            };
            let mut rng = StdRng::seed_from_u64(flow_seed);
            let (metric, stats) = compute_spreading_metric(h, &spec, params, &mut rng);
            let mut costs: Vec<f64> = (0..CONSTRUCTIONS)
                .map(|s| {
                    let mut crng = StdRng::seed_from_u64(1000 + s);
                    let p = construct_partition(h, &spec, &metric, &mut crng)
                        .expect("construction succeeds");
                    cost::partition_cost(h, &spec, &p)
                })
                .collect();
            costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mean: f64 = costs.iter().sum::<f64>() / costs.len() as f64;
            println!(
                "{schedule:?} seed={flow_seed}: injections={} probes={} \
                 best={} mean={mean:.1} worst={}",
                stats.injections,
                stats.probes,
                costs[0],
                costs[costs.len() - 1]
            );
        }
    }
}
