//! Scaling comparison: flat FLOW vs the two-level clustered pipeline vs
//! the multilevel V-cycle, on Rent-style instances of growing size.
//!
//! Produces the numbers behind the scaling table in `EXPERIMENTS.md`:
//! wall-clock seconds, certified cost, and the run outcome per
//! `(instance, engine)` cell. Flat FLOW does not scale to the largest
//! instance, so every engine runs under the same deadline (`--cap-ms`,
//! default 120 s) — a capped run reports its best-so-far partition and a
//! non-`complete` outcome instead of hanging the table.
//!
//! Usage: `scaling [--quick] [--cap-ms MS]`
//!
//! * `--quick` drops the 100k-node instance (CI-sized run).
//! * `--cap-ms MS` sets the per-cell deadline in milliseconds.
//!
//! Thread count comes from `HTP_THREADS` (default 1).

use std::time::{Duration, Instant};

use htp_bench::{paper_spec, threads_from_env, EXPERIMENT_SEED};
use htp_cluster::pipeline::{clustered_flow_partition_with_budget, ClusteredFlowParams};
use htp_cluster::vcycle::{vcycle_partition_with_budget, VCycleParams};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::runtime::{Budget, RunOutcome};
use htp_model::{HierarchicalPartition, TreeSpec};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One `(instance, engine)` cell of the table.
struct Cell {
    seconds: f64,
    cost: f64,
    outcome: RunOutcome,
}

fn rent_instance(nodes: usize) -> (String, Hypergraph) {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ 1);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    (format!("rent:{nodes}"), h)
}

fn certified_cost(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> f64 {
    let cert = htp_verify::certificate::certify(h, spec, p);
    assert!(
        cert.is_valid(),
        "output failed certification: {:?}",
        cert.violations
    );
    cert.cost.expect("valid certificates are priced")
}

fn run_cell(engine: &str, h: &Hypergraph, spec: &TreeSpec, threads: usize, cap: Duration) -> Cell {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let budget = Budget::unlimited().with_deadline(cap);
    let start = Instant::now();
    let (partition, outcome) = match engine {
        "flat" => {
            let mut params = PartitionerParams::default();
            params.flow.threads = threads;
            let run = FlowPartitioner::try_new(params)
                .expect("default params are valid")
                .run_with_budget(h, spec, &mut rng, &budget)
                .expect("flat FLOW must produce a partition");
            (run.result.partition, run.outcome)
        }
        "two-level" => {
            let mut params = ClusteredFlowParams::default();
            params.partitioner.flow.threads = threads;
            let run = clustered_flow_partition_with_budget(h, spec, params, &mut rng, &budget)
                .expect("clustered pipeline must produce a partition");
            (run.partition, run.outcome)
        }
        "v-cycle" => {
            let mut params = VCycleParams::default();
            params.partitioner.flow.threads = threads;
            let run = vcycle_partition_with_budget(h, spec, params, &mut rng, &budget)
                .expect("V-cycle must produce a partition");
            (run.partition, run.outcome)
        }
        other => panic!("unknown engine {other}"),
    };
    let seconds = start.elapsed().as_secs_f64();
    let cost = certified_cost(h, spec, &partition);
    Cell {
        seconds,
        cost,
        outcome,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cap_ms: u64 = args
        .iter()
        .position(|a| a == "--cap-ms")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--cap-ms takes milliseconds"))
        .unwrap_or(120_000);
    let cap = Duration::from_millis(cap_ms);
    let threads = threads_from_env();

    let sizes: &[usize] = if quick {
        &[2_000, 20_000]
    } else {
        &[2_000, 20_000, 100_000]
    };
    const ENGINES: [&str; 3] = ["flat", "two-level", "v-cycle"];

    println!(
        "{:<12} {:<10} {:>9} {:>10}  outcome",
        "instance", "engine", "seconds", "cost"
    );
    for &nodes in sizes {
        let (name, h) = rent_instance(nodes);
        let spec = paper_spec(&h);
        for engine in ENGINES {
            let cell = run_cell(engine, &h, &spec, threads, cap);
            println!(
                "{:<12} {:<10} {:>9.2} {:>10} {}",
                name, engine, cell.seconds, cell.cost, cell.outcome
            );
        }
    }
}
