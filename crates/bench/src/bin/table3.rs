//! Regenerates the paper's Table 3: the three constructive algorithms
//! combined with the hierarchical FM iterative improvement of \[9\]
//! (GFM+, RFM+, FLOW+), reporting final cost and percent improvement.

use htp_bench::{flow_params, paper_spec, run_flow, run_gfm, run_plus, run_rfm, EXPERIMENT_SEED};
use htp_netlist::gen::iscas::{surrogate, PROFILES};

const FLOW_ITERATIONS: usize = 3;
const BASELINE_RESTARTS: usize = 4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("TABLE 3: PARTITIONING RESULTS COMBINED WITH ITERATIVE IMPROVEMENT");
    println!();
    let mut table = htp_bench::TextTable::new([
        "circuit",
        "GFM+ cost",
        "GFM improv.",
        "RFM+ cost",
        "RFM improv.",
        "FLOW+ cost",
        "FLOW improv.",
    ]);
    let profiles: Vec<_> = if quick {
        PROFILES.iter().take(2).copied().collect()
    } else {
        PROFILES.to_vec()
    };
    for profile in profiles {
        let h = surrogate(profile, EXPERIMENT_SEED);
        let spec = paper_spec(&h);

        let gfm = run_gfm(&h, &spec, EXPERIMENT_SEED, BASELINE_RESTARTS);
        let gfm_plus = run_plus(&h, &spec, &gfm.partition);
        let rfm = run_rfm(&h, &spec, EXPERIMENT_SEED, BASELINE_RESTARTS);
        let rfm_plus = run_plus(&h, &spec, &rfm.partition);
        let (flow, _) = run_flow(&h, &spec, EXPERIMENT_SEED, flow_params(FLOW_ITERATIONS));
        let flow_plus = run_plus(&h, &spec, &flow.partition);

        table.row([
            profile.name.to_string(),
            format!("{:.0}", gfm_plus.cost_after),
            format!("{:.1}%", 100.0 * gfm_plus.improvement()),
            format!("{:.0}", rfm_plus.cost_after),
            format!("{:.1}%", 100.0 * rfm_plus.improvement()),
            format!("{:.0}", flow_plus.cost_after),
            format!("{:.1}%", 100.0 * flow_plus.improvement()),
        ]);
        eprintln!("done {}", profile.name);
    }
    println!("{table}");
    println!("Paper shape: FM narrows the constructive gaps; FLOW+ stays ahead on c2670/c7552.");
}
