//! Regenerates the paper's Table 2: constructive partitioning results of
//! GFM, RFM, and FLOW on the five ISCAS85 surrogates, with FLOW's CPU time.
//!
//! Hierarchy: full binary tree of height 4 (16 leaves),
//! `C_l = ceil(1.1·s(V)/2^(4−l))`, uniform weights. Run with `--release`;
//! `--quick` restricts to the two smallest circuits.

use htp_bench::{flow_params, paper_spec, run_flow, run_gfm, run_rfm, EXPERIMENT_SEED};
use htp_netlist::gen::iscas::{surrogate, PROFILES};

/// Outer FLOW iterations (the paper's `N`).
const FLOW_ITERATIONS: usize = 3;
/// Random restarts for the FM-based baselines.
const BASELINE_RESTARTS: usize = 4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("TABLE 2: PARTITIONING RESULTS OF THREE ALGORITHMS");
    println!(
        "(binary tree, height 4; FLOW: N = {FLOW_ITERATIONS} iterations, \
         4 constructions/metric; baselines: best of {BASELINE_RESTARTS})"
    );
    println!();
    let mut table = htp_bench::TextTable::new([
        "circuit",
        "GFM cost",
        "RFM cost",
        "FLOW cost",
        "FLOW CPU(s)",
        "FLOW/RFM",
    ]);
    let profiles: Vec<_> = if quick {
        PROFILES.iter().take(2).copied().collect()
    } else {
        PROFILES.to_vec()
    };
    for profile in profiles {
        let h = surrogate(profile, EXPERIMENT_SEED);
        let spec = paper_spec(&h);
        let gfm = run_gfm(&h, &spec, EXPERIMENT_SEED, BASELINE_RESTARTS);
        let rfm = run_rfm(&h, &spec, EXPERIMENT_SEED, BASELINE_RESTARTS);
        let (flow, _) = run_flow(&h, &spec, EXPERIMENT_SEED, flow_params(FLOW_ITERATIONS));
        table.row([
            profile.name.to_string(),
            format!("{:.0}", gfm.cost),
            format!("{:.0}", rfm.cost),
            format!("{:.0}", flow.cost),
            format!("{:.1}", flow.seconds),
            format!("{:.2}", flow.cost / rfm.cost),
        ]);
        eprintln!("done {}", profile.name);
    }
    println!("{table}");
    println!("FLOW/RFM < 1 means the network-flow approach wins (paper: all but c6288).");
}
