//! Load test for the `htp-server` partitioning job server, writing a
//! machine-readable summary to `BENCH_7.json`.
//!
//! Three phases, each against a fresh in-process server over real
//! sockets:
//!
//! 1. **Throughput / cache** — several client threads submit a mixed-size
//!    job stream with deliberate duplicates; measures jobs/sec, p50/p99
//!    request latency, and the cache hit rate.
//! 2. **Shedding** — a single worker is pinned by a large job while a
//!    burst of probes arrives over a 1ms watermark; measures the shed
//!    rate and that shed replies are typed, not dropped connections.
//! 3. **Drain** — a server with a tiny drain deadline is shut down with
//!    a job in flight; records whether cancellation had to be forced and
//!    that every accepted job was still answered.
//!
//! Usage: `loadtest [--quick] [--out PATH]`
//!
//! The binary self-checks: it exits 1 if the run produced zero cache
//! hits or zero shed jobs, since either would mean the scenario no
//! longer exercises what it claims to.

use std::fmt::Write as _;
use std::time::Instant;

use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::io::hgr;
use htp_server::{Client, JobRequest, Reply, Request, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GEN_SEED: u64 = 1997;

fn netlist_text(nodes: usize, salt: u64) -> String {
    let mut rng = StdRng::seed_from_u64(GEN_SEED ^ salt);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    hgr::to_string(&h)
}

fn job(hgr_text: &str, seed: u64, multilevel: bool) -> Request {
    Request::Partition(Box::new(JobRequest {
        hgr: hgr_text.to_owned(),
        height: 3,
        seed,
        multilevel,
        ..JobRequest::default()
    }))
}

struct Phase1 {
    submitted: u64,
    ok: u64,
    jobs_per_sec: f64,
    p50_ms: u64,
    p99_ms: u64,
    cache_hits: u64,
    retries: u64,
    panics: u64,
}

/// Mixed-size stream with duplicates: each client walks the same job
/// list twice, so the second lap hits the cache warmed by the first.
fn phase_throughput(quick: bool, workers: usize, clients: usize) -> Phase1 {
    let sizes: &[usize] = if quick {
        &[200, 400, 800]
    } else {
        &[500, 1500, 4000]
    };
    let netlists: Vec<String> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| netlist_text(n, i as u64))
        .collect();
    let server = Server::serve(ServerConfig {
        workers,
        watermark_ms: u64::MAX,
        ..ServerConfig::default()
    })
    .expect("start the throughput server");
    let addr = server.local_addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let netlists = netlists.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_ms = Vec::new();
                let mut ok = 0u64;
                for lap in 0..2u64 {
                    for (i, text) in netlists.iter().enumerate() {
                        // Same seed across laps and clients: lap 2 (and
                        // every client after the first) can hit the cache.
                        let request = job(text, 7 + i as u64, !quick && i == 2);
                        let t0 = Instant::now();
                        let reply = client.request(&request).expect("request");
                        latencies_ms.push(t0.elapsed().as_millis() as u64);
                        match reply {
                            Reply::Result(r) if r.certified => ok += 1,
                            other => panic!("client {c} lap {lap} got {other:?}"),
                        }
                    }
                }
                (latencies_ms, ok)
            })
        })
        .collect();
    let mut latencies_ms = Vec::new();
    let mut ok = 0u64;
    for handle in handles {
        let (lat, n) = handle.join().expect("client thread");
        latencies_ms.extend(lat);
        ok += n;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    let report = server.drain();
    assert!(!report.forced, "throughput phase drains cleanly");

    latencies_ms.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };
    Phase1 {
        submitted: latencies_ms.len() as u64,
        ok,
        jobs_per_sec: latencies_ms.len() as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        cache_hits: stats.cache_hits,
        retries: stats.retries,
        panics: stats.panics_contained,
    }
}

struct Phase2 {
    probes: u64,
    shed: u64,
}

fn phase_shedding(quick: bool) -> Phase2 {
    let server = Server::serve(ServerConfig {
        workers: 1,
        watermark_ms: 1,
        ..ServerConfig::default()
    })
    .expect("start the shedding server");
    let addr = server.local_addr();
    let pin_nodes = if quick { 4000 } else { 12_000 };
    let pin = job(&netlist_text(pin_nodes, 100), 1, true);
    let pinner = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&pin)
    });
    // Wait for the pin job to occupy the worker.
    while server.stats().queue_depth == 0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let probes: u64 = 8;
    let probe_text = netlist_text(200, 101);
    let mut shed = 0u64;
    let mut client = Client::connect(addr).expect("connect");
    for i in 0..probes {
        // Probes use distinct seeds so none short-circuits via the cache.
        match client.request(&job(&probe_text, 1000 + i, false)) {
            Ok(Reply::Overloaded { .. }) => shed += 1,
            Ok(_) => {}
            Err(e) => panic!("probe {i} failed at the transport level: {e}"),
        }
    }
    let reply = pinner.join().expect("pin thread").expect("pin request");
    assert!(
        matches!(reply, Reply::Result(_)),
        "the pin job still completed"
    );
    let report = server.drain();
    assert_eq!(report.accepted, report.answered);
    Phase2 { probes, shed }
}

fn phase_drain(quick: bool) -> bool {
    let server = Server::serve(ServerConfig {
        workers: 1,
        drain_deadline_ms: 0,
        ..ServerConfig::default()
    })
    .expect("start the drain server");
    let addr = server.local_addr();
    let nodes = if quick { 4000 } else { 12_000 };
    let slow = job(&netlist_text(nodes, 102), 1, true);
    let client = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&slow)
    });
    while server.stats().queue_depth == 0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let report = server.drain();
    assert_eq!(report.answered, report.accepted, "drain answered every job");
    let reply = client.join().expect("client thread").expect("request");
    assert!(matches!(reply, Reply::Result(_)));
    report.forced
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_7.json".to_owned());
    let workers = if quick { 2 } else { 4 };
    let clients = if quick { 2 } else { 4 };

    eprintln!("phase 1: throughput + cache ({workers} workers, {clients} clients)");
    let p1 = phase_throughput(quick, workers, clients);
    eprintln!(
        "  {} jobs, {:.2} jobs/sec, p50 {}ms, p99 {}ms, {} cache hits",
        p1.submitted, p1.jobs_per_sec, p1.p50_ms, p1.p99_ms, p1.cache_hits
    );
    eprintln!("phase 2: load shedding");
    let p2 = phase_shedding(quick);
    eprintln!("  {} of {} probes shed", p2.shed, p2.probes);
    eprintln!("phase 3: forced drain");
    let drain_forced = phase_drain(quick);
    eprintln!("  forced: {drain_forced}");

    let cache_hit_rate = p1.cache_hits as f64 / p1.submitted as f64;
    let shed_rate = p2.shed as f64 / p2.probes as f64;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"loadtest\",");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let _ = writeln!(out, "  \"jobs_submitted\": {},", p1.submitted);
    let _ = writeln!(out, "  \"jobs_ok\": {},", p1.ok);
    let _ = writeln!(out, "  \"jobs_per_sec\": {:.3},", p1.jobs_per_sec);
    let _ = writeln!(out, "  \"p50_ms\": {},", p1.p50_ms);
    let _ = writeln!(out, "  \"p99_ms\": {},", p1.p99_ms);
    let _ = writeln!(out, "  \"cache_hit_rate\": {cache_hit_rate:.4},");
    let _ = writeln!(out, "  \"cache_hits\": {},", p1.cache_hits);
    let _ = writeln!(out, "  \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(out, "  \"shed\": {},", p2.shed);
    let _ = writeln!(out, "  \"retries\": {},", p1.retries);
    let _ = writeln!(out, "  \"panics\": {},", p1.panics);
    let _ = writeln!(out, "  \"drain_forced\": {drain_forced}");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write the summary");
    eprintln!("wrote {out_path}");

    // Self-check: a load test that neither hit the cache nor shed load
    // no longer measures the mechanisms this benchmark exists for.
    if p1.cache_hits == 0 {
        eprintln!("self-check failed: zero cache hits");
        std::process::exit(1);
    }
    if p2.shed == 0 {
        eprintln!("self-check failed: zero shed jobs");
        std::process::exit(1);
    }
}
