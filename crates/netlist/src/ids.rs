//! Typed indices for nodes and nets.

use std::fmt;

/// Index of a node (cell) in a [`crate::Hypergraph`].
///
/// Node ids are dense: a hypergraph with `n` nodes uses exactly the ids
/// `0..n`. The newtype prevents accidentally using a node id where a net id
/// is expected and vice versa.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

/// Index of a net (hyperedge) in a [`crate::Hypergraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NetId(pub u32);

macro_rules! impl_id {
    ($name:ident, $letter:literal) => {
        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32::MAX"))
            }

            /// Returns the id as a `usize` suitable for slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(NodeId, "v");
impl_id!(NetId, "e");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_usize() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn display_uses_domain_prefixes() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
        assert_eq!(NetId::new(7).to_string(), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NetId::new(0) < NetId::new(9));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
