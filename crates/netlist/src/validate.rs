//! Structural validation of hypergraphs.
//!
//! [`crate::HypergraphBuilder`] guarantees these invariants by construction;
//! this module re-checks them independently so that tests (and readers of
//! untrusted files) can assert internal consistency.

use crate::Hypergraph;

/// A violated structural invariant, as reported by [`check`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The net→pin and node→net CSR offsets disagree with the payload
    /// lengths.
    OffsetsInconsistent,
    /// A pin references a node id out of range.
    PinOutOfRange { net: u32, node: u32 },
    /// A net's pin list is not strictly ascending (unsorted or duplicated).
    PinsNotStrictlySorted { net: u32 },
    /// A net has fewer than two pins.
    NetTooSmall { net: u32 },
    /// A node size is zero.
    ZeroNodeSize { node: u32 },
    /// A net capacity is not finite and positive.
    BadCapacity { net: u32 },
    /// The two CSR directions disagree about a (node, net) incidence.
    IncidenceMismatch { node: u32, net: u32 },
}

/// Checks every structural invariant of `h` and returns all violations.
///
/// An empty vector means the hypergraph is internally consistent.
pub fn check(h: &Hypergraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = h.num_nodes();
    let m = h.num_nets();

    if h.net_off.len() != m + 1
        || h.node_off.len() != n + 1
        || *h.net_off.last().unwrap_or(&0) as usize != h.pins.len()
        || *h.node_off.last().unwrap_or(&0) as usize != h.node_nets.len()
        || h.pins.len() != h.node_nets.len()
    {
        out.push(Violation::OffsetsInconsistent);
        return out; // Further indexing may be unsafe; stop here.
    }

    for (v, &s) in h.node_size.iter().enumerate() {
        if s == 0 {
            out.push(Violation::ZeroNodeSize { node: v as u32 });
        }
    }
    for e in h.nets() {
        let c = h.net_capacity(e);
        if !(c.is_finite() && c > 0.0) {
            out.push(Violation::BadCapacity { net: e.0 });
        }
        let pins = h.net_pins(e);
        if pins.len() < 2 {
            out.push(Violation::NetTooSmall { net: e.0 });
        }
        for w in pins.windows(2) {
            if w[0] >= w[1] {
                out.push(Violation::PinsNotStrictlySorted { net: e.0 });
                break;
            }
        }
        for &v in pins {
            if v.index() >= n {
                out.push(Violation::PinOutOfRange {
                    net: e.0,
                    node: v.0,
                });
            } else if !h.node_nets(v).contains(&e) {
                out.push(Violation::IncidenceMismatch {
                    node: v.0,
                    net: e.0,
                });
            }
        }
    }
    for v in h.nodes() {
        for &e in h.node_nets(v) {
            if e.index() >= m || !h.net_pins(e).contains(&v) {
                out.push(Violation::IncidenceMismatch {
                    node: v.0,
                    net: e.0,
                });
            }
        }
    }
    out
}

/// Panics with a readable message if `h` violates any invariant.
///
/// # Panics
///
/// Panics when [`check`] reports at least one violation.
pub fn assert_valid(h: &Hypergraph) {
    let violations = check(h);
    assert!(
        violations.is_empty(),
        "hypergraph invariants violated: {violations:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, NodeId};

    #[test]
    fn builder_output_is_valid() {
        let mut b = HypergraphBuilder::with_unit_nodes(5);
        for i in 0..4u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        let h = b.build().unwrap();
        assert!(check(&h).is_empty());
        assert_valid(&h);
    }

    #[test]
    fn tampering_is_detected() {
        let mut b = HypergraphBuilder::with_unit_nodes(3);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let mut h = b.build().unwrap();
        h.net_capacity[0] = -1.0;
        assert!(check(&h).contains(&Violation::BadCapacity { net: 0 }));

        let mut h2 = {
            let mut b = HypergraphBuilder::with_unit_nodes(3);
            b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
            b.build().unwrap()
        };
        h2.pins[0] = NodeId(1); // now [1, 1]: unsorted-dup and mismatch
        assert!(check(&h2)
            .iter()
            .any(|v| matches!(v, Violation::PinsNotStrictlySorted { .. })));
    }

    #[test]
    fn truncated_offsets_are_detected() {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let mut h = b.build().unwrap();
        h.net_off.pop();
        assert_eq!(check(&h), vec![Violation::OffsetsInconsistent]);
    }
}
