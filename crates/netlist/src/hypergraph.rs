//! The immutable CSR hypergraph.

use crate::{NetId, NodeId};

/// An immutable hypergraph `H = (V, E)` representing a netlist.
///
/// Nodes model cells/gates and carry an integral size `s(v) >= 1`; nets model
/// hyperedges and carry a positive capacity `c(e)`. Pin membership is stored
/// twice in compressed sparse row form — nets to pins and nodes to incident
/// nets — so both directions of traversal are cache-friendly and
/// allocation-free.
///
/// Construct instances with [`crate::HypergraphBuilder`]; the builder
/// guarantees every invariant this type relies on (dense ids, deduplicated
/// pins, `|e| >= 2`, positive weights).
#[derive(Clone, Debug, PartialEq)]
pub struct Hypergraph {
    pub(crate) node_size: Vec<u64>,
    pub(crate) net_capacity: Vec<f64>,
    /// CSR: pins of net `e` are `pins[net_off[e]..net_off[e+1]]`.
    pub(crate) net_off: Vec<u32>,
    pub(crate) pins: Vec<NodeId>,
    /// CSR: nets incident to node `v` are `nets[node_off[v]..node_off[v+1]]`.
    pub(crate) node_off: Vec<u32>,
    pub(crate) node_nets: Vec<NetId>,
}

impl Hypergraph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_size.len()
    }

    /// Number of nets `|E|`.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_capacity.len()
    }

    /// Total number of pins, i.e. `sum over e of |e|`.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Size `s(v)` of a node.
    #[inline]
    pub fn node_size(&self, v: NodeId) -> u64 {
        self.node_size[v.index()]
    }

    /// Capacity `c(e)` of a net.
    #[inline]
    pub fn net_capacity(&self, e: NetId) -> f64 {
        self.net_capacity[e.index()]
    }

    /// The pins (member nodes) of net `e`, in ascending node order.
    #[inline]
    pub fn net_pins(&self, e: NetId) -> &[NodeId] {
        let lo = self.net_off[e.index()] as usize;
        let hi = self.net_off[e.index() + 1] as usize;
        &self.pins[lo..hi]
    }

    /// The nets incident to node `v`, in ascending net order.
    #[inline]
    pub fn node_nets(&self, v: NodeId) -> &[NetId] {
        let lo = self.node_off[v.index()] as usize;
        let hi = self.node_off[v.index() + 1] as usize;
        &self.node_nets[lo..hi]
    }

    /// Degree of a node: the number of nets it belongs to.
    #[inline]
    pub fn node_degree(&self, v: NodeId) -> usize {
        self.node_nets(v).len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all net ids `0..m`.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + Clone {
        (0..self.num_nets() as u32).map(NetId)
    }

    /// Total node size `s(V)`.
    pub fn total_size(&self) -> u64 {
        self.node_size.iter().sum()
    }

    /// Total size of a subset of nodes, `s(V')`.
    pub fn subset_size<I>(&self, subset: I) -> u64
    where
        I: IntoIterator<Item = NodeId>,
    {
        subset.into_iter().map(|v| self.node_size(v)).sum()
    }

    /// Sum of all net capacities.
    pub fn total_capacity(&self) -> f64 {
        self.net_capacity.iter().sum()
    }

    /// Returns `true` if all nodes have size 1.
    pub fn has_unit_sizes(&self) -> bool {
        self.node_size.iter().all(|&s| s == 1)
    }

    /// Returns `true` if all nets have capacity 1.
    pub fn has_unit_capacities(&self) -> bool {
        self.net_capacity.iter().all(|&c| c == 1.0)
    }

    /// Largest net cardinality, or 0 for a netless graph.
    pub fn max_net_size(&self) -> usize {
        self.nets()
            .map(|e| self.net_pins(e).len())
            .max()
            .unwrap_or(0)
    }

    /// The neighbours of `v`: every distinct node sharing at least one net
    /// with `v`, excluding `v` itself. Allocates; intended for small-scale
    /// inspection and tests rather than hot loops.
    pub fn neighbours(&self, v: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .node_nets(v)
            .iter()
            .flat_map(|&e| self.net_pins(e).iter().copied())
            .filter(|&u| u != v)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Builds the induced sub-hypergraph on `keep` (which must contain
    /// distinct valid node ids). A net survives iff at least two of its pins
    /// are kept. Returns the sub-hypergraph together with the mapping from
    /// new node ids to original ids (`original[new.index()] == old`).
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range or duplicate node id.
    pub fn induce(&self, keep: &[NodeId]) -> (Hypergraph, Vec<NodeId>) {
        let induced = self.induce_tracked(keep);
        (induced.hypergraph, induced.node_map)
    }

    /// Like [`induce`](Hypergraph::induce) but also returns the net
    /// provenance, which callers need to carry per-net data (e.g. a
    /// spreading metric) into the subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range or duplicate node id.
    pub fn induce_tracked(&self, keep: &[NodeId]) -> InducedSubgraph {
        const UNMAPPED: u32 = u32::MAX;
        let mut remap = vec![UNMAPPED; self.num_nodes()];
        for (new, &old) in keep.iter().enumerate() {
            assert!(
                remap[old.index()] == UNMAPPED,
                "duplicate node {old} in induce set"
            );
            remap[old.index()] = new as u32;
        }

        let mut b = crate::HypergraphBuilder::new();
        for &old in keep {
            b.add_node(self.node_size(old));
        }
        let mut net_map = Vec::new();
        for e in self.nets() {
            let pins: Vec<NodeId> = self
                .net_pins(e)
                .iter()
                .filter_map(|&v| {
                    let m = remap[v.index()];
                    (m != UNMAPPED).then_some(NodeId(m))
                })
                .collect();
            if pins.len() >= 2 {
                b.add_net(self.net_capacity(e), pins)
                    .expect("induced net pins are valid by construction");
                net_map.push(e);
            }
        }
        InducedSubgraph {
            hypergraph: b
                .build()
                .expect("induced hypergraph is valid by construction"),
            node_map: keep.to_vec(),
            net_map,
        }
    }
}

impl Hypergraph {
    /// Contracts node groups into coarse nodes: `cluster_of[v.index()]`
    /// names the coarse node of `v` (dense ids `0..k`). Coarse node sizes
    /// are group sums. Nets are re-pinned to coarse nodes; nets left with a
    /// single distinct pin disappear, and nets with identical coarse pin
    /// sets merge with summed capacities (the standard multilevel
    /// coarsening rule).
    ///
    /// Returns the coarse hypergraph; `cluster_of` itself is the
    /// fine→coarse node mapping.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_of` has the wrong length or the ids are not dense
    /// (some id in `0..max+1` unused).
    pub fn contract(&self, cluster_of: &[usize]) -> Hypergraph {
        crate::coarsen::contract_with(
            self,
            cluster_of,
            &mut crate::coarsen::ContractScratch::new(),
        )
        .0
    }
}

/// An induced sub-hypergraph with provenance, from
/// [`Hypergraph::induce_tracked`].
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced hypergraph.
    pub hypergraph: Hypergraph,
    /// `node_map[new.index()]` is the original id of node `new`.
    pub node_map: Vec<NodeId>,
    /// `net_map[new.index()]` is the original id of net `new`.
    pub net_map: Vec<NetId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn triangle() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<NodeId> = (0..3).map(|i| b.add_node(i + 1)).collect();
        b.add_net(1.0, [v[0], v[1]]).unwrap();
        b.add_net(2.0, [v[1], v[2]]).unwrap();
        b.add_net(3.0, [v[0], v[1], v[2]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn csr_views_are_consistent() {
        let h = triangle();
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.num_pins(), 7);
        assert_eq!(h.net_pins(NetId(0)), &[NodeId(0), NodeId(1)]);
        assert_eq!(h.node_nets(NodeId(0)), &[NetId(0), NetId(2)]);
        assert_eq!(h.node_nets(NodeId(1)), &[NetId(0), NetId(1), NetId(2)]);
        assert_eq!(h.node_degree(NodeId(2)), 2);
    }

    #[test]
    fn sizes_and_capacities() {
        let h = triangle();
        assert_eq!(h.total_size(), 6);
        assert_eq!(h.subset_size([NodeId(0), NodeId(2)]), 4);
        assert!((h.total_capacity() - 6.0).abs() < 1e-12);
        assert!(!h.has_unit_sizes());
        assert!(!h.has_unit_capacities());
        assert_eq!(h.max_net_size(), 3);
    }

    #[test]
    fn neighbours_are_sorted_and_deduped() {
        let h = triangle();
        assert_eq!(h.neighbours(NodeId(0)), vec![NodeId(1), NodeId(2)]);
        assert_eq!(h.neighbours(NodeId(1)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn induce_keeps_multi_pin_nets_only() {
        let h = triangle();
        let (sub, orig) = h.induce(&[NodeId(1), NodeId(2)]);
        assert_eq!(sub.num_nodes(), 2);
        // Net 1 (v1,v2) and net 2 restricted to (v1,v2) both survive.
        assert_eq!(sub.num_nets(), 2);
        assert_eq!(orig, vec![NodeId(1), NodeId(2)]);
        assert_eq!(sub.node_size(NodeId(0)), 2); // old v1 had size 2
    }

    #[test]
    fn induce_single_node_has_no_nets() {
        let h = triangle();
        let (sub, _) = h.induce(&[NodeId(0)]);
        assert_eq!(sub.num_nodes(), 1);
        assert_eq!(sub.num_nets(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induce_rejects_duplicates() {
        let h = triangle();
        let _ = h.induce(&[NodeId(0), NodeId(0)]);
    }

    #[test]
    fn contract_merges_nodes_nets_and_capacities() {
        // 4 nodes on a path; contract {0,1} and {2,3}.
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap(); // internal -> dropped
        b.add_net(2.0, [NodeId(1), NodeId(2)]).unwrap(); // crosses -> kept
        b.add_net(3.0, [NodeId(0), NodeId(3)]).unwrap(); // same coarse pins -> merged
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap(); // internal -> dropped
        let h = b.build().unwrap();
        let coarse = h.contract(&[0, 0, 1, 1]);
        assert_eq!(coarse.num_nodes(), 2);
        assert_eq!(coarse.node_size(NodeId(0)), 2);
        assert_eq!(coarse.num_nets(), 1, "parallel coarse nets merge");
        assert!((coarse.net_capacity(NetId(0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn contract_to_single_node_drops_all_nets() {
        let h = triangle();
        let coarse = h.contract(&[0, 0, 0]);
        assert_eq!(coarse.num_nodes(), 1);
        assert_eq!(coarse.num_nets(), 0);
        assert_eq!(coarse.total_size(), h.total_size());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn contract_rejects_sparse_ids() {
        let h = triangle();
        let _ = h.contract(&[0, 2, 2]); // id 1 unused
    }

    #[test]
    fn induce_tracked_maps_nets_to_originals() {
        let h = triangle();
        let sub = h.induce_tracked(&[NodeId(1), NodeId(2)]);
        // Net 0 (v0,v1) dies; nets 1 and 2 survive restricted to {v1,v2}.
        assert_eq!(sub.net_map, vec![NetId(1), NetId(2)]);
        assert_eq!(sub.hypergraph.net_capacity(NetId(0)), 2.0);
        assert_eq!(sub.node_map, vec![NodeId(1), NodeId(2)]);
    }
}
