//! Error type for netlist construction and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while building, validating, reading, or writing netlists.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net referenced a node id that has not been added.
    UnknownNode {
        /// The offending raw node index.
        node: u32,
        /// Number of nodes that exist.
        num_nodes: usize,
    },
    /// A net was given fewer than two distinct pins.
    ///
    /// The hierarchical tree partitioning formulation requires `|e| >= 2`;
    /// single-pin nets never contribute cost and are rejected so that they
    /// cannot silently skew pin statistics.
    NetTooSmall {
        /// Distinct pin count supplied.
        pins: usize,
    },
    /// A node size or net capacity was invalid (zero, negative, or NaN).
    InvalidWeight {
        /// Human-readable description of what was invalid.
        what: &'static str,
    },
    /// A text format could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode { node, num_nodes } => {
                write!(
                    f,
                    "net references node {node} but only {num_nodes} nodes exist"
                )
            }
            NetlistError::NetTooSmall { pins } => {
                write!(f, "net has {pins} distinct pins, at least 2 are required")
            }
            NetlistError::InvalidWeight { what } => write!(f, "invalid weight: {what}"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetlistError {
    fn from(e: io::Error) -> Self {
        NetlistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = NetlistError::UnknownNode {
            node: 9,
            num_nodes: 4,
        };
        assert_eq!(
            e.to_string(),
            "net references node 9 but only 4 nodes exist"
        );
        let e = NetlistError::NetTooSmall { pins: 1 };
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = NetlistError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
