//! Incremental construction of [`Hypergraph`] values.

use crate::{Hypergraph, NetId, NetlistError, NodeId};

/// Builder for [`Hypergraph`].
///
/// Nodes are added first (each call returns the dense [`NodeId`]), then nets
/// over those nodes. [`HypergraphBuilder::build`] packs everything into CSR
/// form and checks the structural invariants.
///
/// # Examples
///
/// ```
/// use htp_netlist::HypergraphBuilder;
///
/// # fn main() -> Result<(), htp_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_node(1);
/// let v = b.add_node(1);
/// b.add_net(1.0, [u, v])?;
/// let h = b.build()?;
/// assert_eq!(h.num_pins(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    node_size: Vec<u64>,
    net_capacity: Vec<f64>,
    net_pins: Vec<Vec<NodeId>>,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` nodes of unit size.
    pub fn with_unit_nodes(n: usize) -> Self {
        Self {
            node_size: vec![1; n],
            ..Self::default()
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_size.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_capacity.len()
    }

    /// Adds a node with size `size` and returns its id.
    ///
    /// A size of zero is permitted here but rejected at [`build`] time, so
    /// callers that compute sizes can fail once with a useful error instead
    /// of panicking mid-construction.
    ///
    /// [`build`]: HypergraphBuilder::build
    pub fn add_node(&mut self, size: u64) -> NodeId {
        let id = NodeId::new(self.node_size.len());
        self.node_size.push(size);
        id
    }

    /// Adds a net with capacity `capacity` over the given pins and returns
    /// its id. Duplicate pins are collapsed.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownNode`] if a pin references a node that has
    ///   not been added yet.
    /// * [`NetlistError::NetTooSmall`] if fewer than two *distinct* pins are
    ///   given (the HTP formulation requires `|e| >= 2`).
    /// * [`NetlistError::InvalidWeight`] if `capacity` is not finite and
    ///   positive.
    pub fn add_net<I>(&mut self, capacity: f64, pins: I) -> Result<NetId, NetlistError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(NetlistError::InvalidWeight {
                what: "net capacity must be finite and positive",
            });
        }
        let mut pins: Vec<NodeId> = pins.into_iter().collect();
        pins.sort_unstable();
        pins.dedup();
        for &p in &pins {
            if p.index() >= self.node_size.len() {
                return Err(NetlistError::UnknownNode {
                    node: p.0,
                    num_nodes: self.node_size.len(),
                });
            }
        }
        if pins.len() < 2 {
            return Err(NetlistError::NetTooSmall { pins: pins.len() });
        }
        let id = NetId::new(self.net_capacity.len());
        self.net_capacity.push(capacity);
        self.net_pins.push(pins);
        Ok(id)
    }

    /// Like [`add_net`](HypergraphBuilder::add_net) but silently drops nets
    /// with fewer than two distinct pins instead of failing. Returns the id
    /// if the net was added.
    ///
    /// Generators that thin out pin lists probabilistically use this to
    /// avoid an error path for degenerate nets.
    ///
    /// # Errors
    ///
    /// Same as `add_net` except that [`NetlistError::NetTooSmall`] is mapped
    /// to `Ok(None)`.
    pub fn add_net_lenient<I>(
        &mut self,
        capacity: f64,
        pins: I,
    ) -> Result<Option<NetId>, NetlistError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        match self.add_net(capacity, pins) {
            Ok(id) => Ok(Some(id)),
            Err(NetlistError::NetTooSmall { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Packs the builder into an immutable [`Hypergraph`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidWeight`] if any node has size zero.
    pub fn build(self) -> Result<Hypergraph, NetlistError> {
        if self.node_size.contains(&0) {
            return Err(NetlistError::InvalidWeight {
                what: "node size must be at least 1",
            });
        }

        let n = self.node_size.len();
        let m = self.net_capacity.len();
        let total_pins: usize = self.net_pins.iter().map(Vec::len).sum();

        // Net -> pins CSR.
        let mut net_off = Vec::with_capacity(m + 1);
        let mut pins = Vec::with_capacity(total_pins);
        net_off.push(0u32);
        for p in &self.net_pins {
            pins.extend_from_slice(p);
            net_off.push(pins.len() as u32);
        }

        // Node -> nets CSR via counting sort.
        let mut degree = vec![0u32; n];
        for p in &self.net_pins {
            for &v in p {
                degree[v.index()] += 1;
            }
        }
        let mut node_off = Vec::with_capacity(n + 1);
        node_off.push(0u32);
        for v in 0..n {
            node_off.push(node_off[v] + degree[v]);
        }
        let mut cursor: Vec<u32> = node_off[..n].to_vec();
        let mut node_nets = vec![NetId(0); total_pins];
        for (e, p) in self.net_pins.iter().enumerate() {
            for &v in p {
                node_nets[cursor[v.index()] as usize] = NetId::new(e);
                cursor[v.index()] += 1;
            }
        }

        Ok(Hypergraph {
            node_size: self.node_size,
            net_capacity: self.net_capacity,
            net_off,
            pins,
            node_off,
            node_nets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pins_are_collapsed() {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        let e = b.add_net(1.0, [NodeId(0), NodeId(1), NodeId(0)]).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.net_pins(e), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut b = HypergraphBuilder::with_unit_nodes(1);
        let err = b.add_net(1.0, [NodeId(0), NodeId(5)]).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNode { node: 5, .. }));
    }

    #[test]
    fn single_pin_net_is_rejected_strictly_but_dropped_leniently() {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        assert!(matches!(
            b.add_net(1.0, [NodeId(0), NodeId(0)]),
            Err(NetlistError::NetTooSmall { pins: 1 })
        ));
        assert_eq!(b.add_net_lenient(1.0, [NodeId(0)]).unwrap(), None);
        assert!(b
            .add_net_lenient(1.0, [NodeId(0), NodeId(1)])
            .unwrap()
            .is_some());
        assert_eq!(b.build().unwrap().num_nets(), 1);
    }

    #[test]
    fn nonpositive_capacity_is_rejected() {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(b.add_net(bad, [NodeId(0), NodeId(1)]).is_err());
        }
    }

    #[test]
    fn zero_size_node_fails_at_build() {
        let mut b = HypergraphBuilder::new();
        b.add_node(0);
        assert!(matches!(b.build(), Err(NetlistError::InvalidWeight { .. })));
    }

    #[test]
    fn empty_hypergraph_builds() {
        let h = HypergraphBuilder::new().build().unwrap();
        assert_eq!(h.num_nodes(), 0);
        assert_eq!(h.num_nets(), 0);
        assert_eq!(h.num_pins(), 0);
    }

    #[test]
    fn node_net_csr_matches_net_pin_csr() {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(2)]).unwrap();
        b.add_net(1.0, [NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        b.add_net(1.0, [NodeId(0), NodeId(3)]).unwrap();
        let h = b.build().unwrap();
        for v in h.nodes() {
            for &e in h.node_nets(v) {
                assert!(h.net_pins(e).contains(&v));
            }
        }
        for e in h.nets() {
            for &v in h.net_pins(e) {
                assert!(h.node_nets(v).contains(&e));
            }
        }
    }
}
