//! hMETIS `.hgr` hypergraph format.
//!
//! The format is line-oriented:
//!
//! ```text
//! % comments start with a percent sign
//! <num_nets> <num_nodes> [fmt]
//! [net capacity] pin pin pin ...        (one line per net, pins 1-indexed)
//! ...
//! [node size]                           (one line per node, if fmt has 10-bit)
//! ```
//!
//! `fmt` is `1` when nets carry capacities, `10` when nodes carry sizes, and
//! `11` for both; it is omitted (or `0`) for the fully unweighted case.

use std::io::{BufRead, Write};

use crate::{Hypergraph, HypergraphBuilder, NetlistError, NodeId};

/// Reads a hypergraph in hMETIS format from `reader`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed content (wrong counts,
/// out-of-range pins, bad weights, unknown fmt code) and
/// [`NetlistError::Io`] on read failures.
pub fn read<R: BufRead>(reader: R) -> Result<Hypergraph, NetlistError> {
    let mut lines = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        lines.push((idx + 1, trimmed.to_owned()));
    }
    let mut it = lines.into_iter();

    let (hline, header) = it.next().ok_or(NetlistError::Parse {
        line: 1,
        message: "missing header line".into(),
    })?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 || fields.len() > 3 {
        return Err(NetlistError::Parse {
            line: hline,
            message: format!(
                "header must be `<nets> <nodes> [fmt]`, got {} fields",
                fields.len()
            ),
        });
    }
    let num_nets: usize = parse(fields[0], hline)?;
    let num_nodes: usize = parse(fields[1], hline)?;
    if num_nets > u32::MAX as usize || num_nodes > u32::MAX as usize {
        return Err(NetlistError::Parse {
            line: hline,
            message: format!(
                "header declares {num_nets} nets and {num_nodes} nodes; ids are \
                 32-bit, at most {} of each are supported",
                u32::MAX
            ),
        });
    }
    let fmt: u32 = if fields.len() == 3 {
        parse(fields[2], hline)?
    } else {
        0
    };
    let (net_weights, node_weights) = match fmt {
        0 => (false, false),
        1 => (true, false),
        10 => (false, true),
        11 => (true, true),
        other => {
            return Err(NetlistError::Parse {
                line: hline,
                message: format!("unknown fmt code {other}"),
            })
        }
    };

    // Bound allocations by the actual file size, not the (untrusted) header:
    // every declared net needs its own record line below.
    if num_nets > it.len() {
        return Err(NetlistError::Parse {
            line: hline,
            message: format!(
                "file ended early: header declares {num_nets} nets but only {} \
                 record lines follow",
                it.len()
            ),
        });
    }
    let mut builder = HypergraphBuilder::with_unit_nodes(num_nodes);
    let mut nets = Vec::with_capacity(num_nets);
    for _ in 0..num_nets {
        let (lno, line) = it.next().ok_or(NetlistError::Parse {
            line: hline,
            message: format!("expected {num_nets} net lines, file ended early"),
        })?;
        let mut fields = line.split_whitespace();
        let capacity = if net_weights {
            let raw = fields.next().ok_or_else(|| NetlistError::Parse {
                line: lno,
                message: "missing net capacity".into(),
            })?;
            parse::<f64>(raw, lno)?
        } else {
            1.0
        };
        let mut pins = Vec::new();
        for raw in fields {
            let one_based: usize = parse(raw, lno)?;
            if one_based == 0 || one_based > num_nodes {
                return Err(NetlistError::Parse {
                    line: lno,
                    message: format!("pin {one_based} out of range 1..={num_nodes}"),
                });
            }
            pins.push(NodeId::new(one_based - 1));
        }
        nets.push((lno, capacity, pins));
    }

    if node_weights {
        let mut sizes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let (lno, line) = it.next().ok_or(NetlistError::Parse {
                line: hline,
                message: format!("expected {num_nodes} node-weight lines, file ended early"),
            })?;
            sizes.push(parse::<u64>(
                line.split_whitespace().next().unwrap_or(""),
                lno,
            )?);
        }
        builder = HypergraphBuilder::new();
        for s in sizes {
            builder.add_node(s);
        }
    }

    if let Some((lno, _)) = it.next() {
        return Err(NetlistError::Parse {
            line: lno,
            message: "trailing content after all declared records".into(),
        });
    }

    for (lno, capacity, pins) in nets {
        builder
            .add_net(capacity, pins)
            .map_err(|e| NetlistError::Parse {
                line: lno,
                message: e.to_string(),
            })?;
    }
    builder.build()
}

/// Reads a hypergraph in hMETIS format from a string.
///
/// # Errors
///
/// See [`read`].
pub fn from_str(s: &str) -> Result<Hypergraph, NetlistError> {
    read(s.as_bytes())
}

/// Writes `h` in hMETIS format.
///
/// Capacities are written only when some net is non-unit; sizes only when
/// some node is non-unit. The output always round-trips through [`read`].
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on write failures.
pub fn write<W: Write>(h: &Hypergraph, mut writer: W) -> Result<(), NetlistError> {
    let net_weights = !h.has_unit_capacities();
    let node_weights = !h.has_unit_sizes();
    let fmt = match (net_weights, node_weights) {
        (false, false) => String::new(),
        (true, false) => " 1".into(),
        (false, true) => " 10".into(),
        (true, true) => " 11".into(),
    };
    writeln!(writer, "{} {}{}", h.num_nets(), h.num_nodes(), fmt)?;
    for e in h.nets() {
        if net_weights {
            write!(writer, "{} ", h.net_capacity(e))?;
        }
        let pins: Vec<String> = h
            .net_pins(e)
            .iter()
            .map(|v| (v.index() + 1).to_string())
            .collect();
        writeln!(writer, "{}", pins.join(" "))?;
    }
    if node_weights {
        for v in h.nodes() {
            writeln!(writer, "{}", h.node_size(v))?;
        }
    }
    Ok(())
}

/// Serializes `h` to an hMETIS-format string.
pub fn to_string(h: &Hypergraph) -> String {
    let mut buf = Vec::new();
    write(h, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("hgr output is ASCII")
}

fn parse<T: std::str::FromStr>(raw: &str, line: usize) -> Result<T, NetlistError> {
    raw.parse().map_err(|_| NetlistError::Parse {
        line,
        message: format!("cannot parse `{raw}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn reads_unweighted() {
        let h = from_str("% example\n2 3\n1 2\n2 3\n").unwrap();
        assert_eq!(h.num_nets(), 2);
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.net_pins(crate::NetId(0)), &[NodeId(0), NodeId(1)]);
        validate::assert_valid(&h);
    }

    #[test]
    fn reads_fully_weighted() {
        let src = "3 4 11\n2 1 2\n5 2 3 4\n1 1 4\n7\n1\n1\n3\n";
        let h = from_str(src).unwrap();
        assert_eq!(h.node_size(NodeId(0)), 7);
        assert_eq!(h.node_size(NodeId(3)), 3);
        assert!((h.net_capacity(crate::NetId(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn round_trips() {
        let src = "3 4 11\n2 1 2\n5 2 3 4\n1 1 4\n7\n1\n1\n3\n";
        let h = from_str(src).unwrap();
        let h2 = from_str(&to_string(&h)).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn rejects_out_of_range_pin() {
        let err = from_str("1 2\n1 3\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_truncated_file() {
        let err = from_str("2 3\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("ended early"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = from_str("1 2\n1 2\n9 9 9\n").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_unknown_fmt() {
        let err = from_str("1 2 7\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("unknown fmt"));
    }

    #[test]
    fn rejects_single_pin_net_with_line_number() {
        let err = from_str("1 3\n2\n").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("at least 2"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
