//! Reading and writing netlists.
//!
//! Two formats are supported:
//!
//! * [`hgr`] — the hMETIS hypergraph format, the de-facto interchange format
//!   for partitioning benchmarks.
//! * [`netl`] — a small self-describing text format with explicit node and
//!   net records, convenient for hand-written fixtures.
//! * [`verilog`] — a gate-level structural Verilog reader (the format
//!   ISCAS85-style benchmarks circulate in).

pub mod hgr;
pub mod netl;
pub mod verilog;
