//! A small named-netlist text format.
//!
//! Unlike `.hgr`, records are explicit and order-independent within their
//! section, which makes hand-written fixtures readable:
//!
//! ```text
//! # comment
//! node <name> [size]
//! net <name> [cap=<capacity>] <node-name> <node-name> ...
//! ```
//!
//! Node names are arbitrary whitespace-free strings; ids are assigned in
//! declaration order.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::{Hypergraph, HypergraphBuilder, NetlistError, NodeId};

/// A parsed named netlist: the hypergraph plus the node and net names in id
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct NamedNetlist {
    /// The structural hypergraph.
    pub hypergraph: Hypergraph,
    /// `node_names[v.index()]` is the declared name of node `v`.
    pub node_names: Vec<String>,
    /// `net_names[e.index()]` is the declared name of net `e`.
    pub net_names: Vec<String>,
}

impl NamedNetlist {
    /// Looks up a node id by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(NodeId::new)
    }
}

/// Reads a named netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for unknown record kinds, duplicate or
/// undeclared names, and malformed weights; [`NetlistError::Io`] on read
/// failure.
pub fn read<R: BufRead>(reader: R) -> Result<NamedNetlist, NetlistError> {
    let mut builder = HypergraphBuilder::new();
    let mut node_names: Vec<String> = Vec::new();
    let mut net_names: Vec<String> = Vec::new();
    let mut by_name: HashMap<String, NodeId> = HashMap::new();

    for (idx, line) in reader.lines().enumerate() {
        let lno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let Some(kind) = fields.next() else {
            continue; // unreachable: `trimmed` is non-empty
        };
        match kind {
            "node" => {
                let name = fields.next().ok_or_else(|| err(lno, "node needs a name"))?;
                if by_name.contains_key(name) {
                    return Err(err(lno, format!("duplicate node name `{name}`")));
                }
                let size = match fields.next() {
                    Some(raw) => raw
                        .parse::<u64>()
                        .map_err(|_| err(lno, format!("bad node size `{raw}`")))?,
                    None => 1,
                };
                if let Some(extra) = fields.next() {
                    return Err(err(lno, format!("unexpected trailing field `{extra}`")));
                }
                let id = builder.add_node(size);
                by_name.insert(name.to_owned(), id);
                node_names.push(name.to_owned());
            }
            "net" => {
                let name = fields.next().ok_or_else(|| err(lno, "net needs a name"))?;
                if net_names.contains(&name.to_owned()) {
                    return Err(err(lno, format!("duplicate net name `{name}`")));
                }
                let mut capacity = 1.0;
                let mut pins = Vec::new();
                for raw in fields {
                    if let Some(c) = raw.strip_prefix("cap=") {
                        capacity = c
                            .parse::<f64>()
                            .map_err(|_| err(lno, format!("bad capacity `{c}`")))?;
                    } else {
                        let id = by_name
                            .get(raw)
                            .copied()
                            .ok_or_else(|| err(lno, format!("unknown node `{raw}`")))?;
                        pins.push(id);
                    }
                }
                builder
                    .add_net(capacity, pins)
                    .map_err(|e| err(lno, e.to_string()))?;
                net_names.push(name.to_owned());
            }
            other => return Err(err(lno, format!("unknown record kind `{other}`"))),
        }
    }

    Ok(NamedNetlist {
        hypergraph: builder.build()?,
        node_names,
        net_names,
    })
}

/// Reads a named netlist from a string.
///
/// # Errors
///
/// See [`read`].
pub fn from_str(s: &str) -> Result<NamedNetlist, NetlistError> {
    read(s.as_bytes())
}

/// Writes a named netlist in the `netl` format.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on write failure.
pub fn write<W: Write>(nl: &NamedNetlist, mut w: W) -> Result<(), NetlistError> {
    let h = &nl.hypergraph;
    for v in h.nodes() {
        writeln!(w, "node {} {}", nl.node_names[v.index()], h.node_size(v))?;
    }
    for e in h.nets() {
        let pins: Vec<&str> = h
            .net_pins(e)
            .iter()
            .map(|v| nl.node_names[v.index()].as_str())
            .collect();
        writeln!(
            w,
            "net {} cap={} {}",
            nl.net_names[e.index()],
            h.net_capacity(e),
            pins.join(" ")
        )?;
    }
    Ok(())
}

fn err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "\
# two inverters driving a nand
node inv_a 1
node inv_b 1
node nand 2
net na inv_a nand
net nb cap=2.5 inv_b nand
";

    #[test]
    fn parses_fixture() {
        let nl = from_str(FIXTURE).unwrap();
        assert_eq!(nl.hypergraph.num_nodes(), 3);
        assert_eq!(nl.hypergraph.num_nets(), 2);
        assert_eq!(nl.node("nand"), Some(NodeId(2)));
        assert_eq!(nl.hypergraph.node_size(NodeId(2)), 2);
        assert!((nl.hypergraph.net_capacity(crate::NetId(1)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn round_trips() {
        let nl = from_str(FIXTURE).unwrap();
        let mut buf = Vec::new();
        write(&nl, &mut buf).unwrap();
        let nl2 = read(&buf[..]).unwrap();
        assert_eq!(nl, nl2);
    }

    #[test]
    fn unknown_node_reference_fails() {
        let err = from_str("node a\nnode b\nnet x a ghost\n").unwrap_err();
        assert!(err.to_string().contains("unknown node `ghost`"));
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn duplicate_names_fail() {
        assert!(from_str("node a\nnode a\n").is_err());
        assert!(from_str("node a\nnode b\nnet x a b\nnet x a b\n").is_err());
    }

    #[test]
    fn unknown_record_kind_fails() {
        assert!(from_str("wire w a b\n").is_err());
    }
}
