//! A structural-Verilog netlist reader (gate-level subset).
//!
//! Supports the subset that gate-level ISCAS-style netlists use:
//!
//! ```verilog
//! // comments, both styles
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire N10, N11, N16, N19;
//!   nand g0 (N10, N1, N3);
//!   nand g1 (N11, N3, N6);
//!   nand g2 (N16, N2, N11);
//!   nand g3 (N19, N11, N7);
//!   nand g4 (N22, N10, N16);
//!   nand g5 (N23, N16, N19);
//! endmodule
//! ```
//!
//! Mapping to the partitioning hypergraph: every gate instance and every
//! primary input becomes a unit-size node; every signal becomes a net whose
//! pins are its driver (the gate listing it first, or the input port) and
//! all its readers. Signals with fewer than two pins (e.g. unread outputs)
//! are dropped, exactly like unloaded nets in the generators.

use std::collections::HashMap;
use std::io::BufRead;

use crate::{Hypergraph, HypergraphBuilder, NetlistError, NodeId};

/// A parsed gate-level module.
#[derive(Clone, Debug)]
pub struct VerilogModule {
    /// The module name.
    pub name: String,
    /// The structural hypergraph (gates + primary inputs as nodes).
    pub hypergraph: Hypergraph,
    /// `node_names[v.index()]` — instance name, or the port name for
    /// primary-input driver nodes.
    pub node_names: Vec<String>,
    /// `net_names[e.index()]` — the signal name of each net.
    pub net_names: Vec<String>,
}

impl VerilogModule {
    /// Looks up a node id by instance/port name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(NodeId::new)
    }
}

/// Reads a single structural module.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors, undeclared signals,
/// multiple drivers, or unsupported constructs; [`NetlistError::Io`] on
/// read failure.
pub fn read<R: BufRead>(mut reader: R) -> Result<VerilogModule, NetlistError> {
    let mut source = String::new();
    reader.read_to_string(&mut source)?;
    parse(&source)
}

/// Parses a single structural module from a string.
///
/// # Errors
///
/// See [`read`].
pub fn from_str(source: &str) -> Result<VerilogModule, NetlistError> {
    parse(source)
}

#[derive(Clone, Copy, PartialEq)]
enum SignalKind {
    Input,
    Output,
    Wire,
}

fn parse(source: &str) -> Result<VerilogModule, NetlistError> {
    let stripped = strip_comments(source);
    // Statements end at ';' except `module ... );` which also ends at ';'.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut current = String::new();
    let mut line = 1usize;
    let mut start_line = 1usize;
    for ch in stripped.chars() {
        if ch == '\n' {
            line += 1;
        }
        if ch == ';' {
            statements.push((start_line, current.trim().to_owned()));
            current.clear();
        } else {
            if current.trim().is_empty() && !ch.is_whitespace() {
                start_line = line; // first real character of the statement
            }
            current.push(ch);
        }
    }
    let trailer = current.trim().to_owned();

    let err = |line: usize, message: String| NetlistError::Parse { line, message };

    let mut name = None;
    let mut kinds: HashMap<String, SignalKind> = HashMap::new();
    let mut gates: Vec<(usize, String, String, Vec<String>)> = Vec::new(); // (line, type, inst, ports)

    for (lno, stmt) in &statements {
        let stmt = stmt.as_str();
        if stmt.is_empty() {
            continue;
        }
        let mut words = stmt.split_whitespace();
        let Some(keyword) = words.next() else {
            continue; // unreachable: empty statements were skipped above
        };
        match keyword {
            "module" => {
                if name.is_some() {
                    return Err(err(*lno, "only a single module is supported".into()));
                }
                let rest = stmt["module".len()..].trim();
                let modname = rest
                    .split(|c: char| c == '(' || c.is_whitespace())
                    .find(|s| !s.is_empty())
                    .ok_or_else(|| err(*lno, "module needs a name".into()))?;
                name = Some(modname.to_owned());
                // The port list itself carries no direction info; skip it.
            }
            "endmodule" => {
                return Err(err(
                    *lno,
                    "unexpected `endmodule;` — it takes no semicolon".into(),
                ))
            }
            "input" | "output" | "wire" => {
                let kind = match keyword {
                    "input" => SignalKind::Input,
                    "output" => SignalKind::Output,
                    _ => SignalKind::Wire,
                };
                for sig in stmt[keyword.len()..].split(',') {
                    let sig = sig.trim();
                    if sig.is_empty() {
                        continue;
                    }
                    if !is_identifier(sig) {
                        return Err(err(*lno, format!("bad signal name `{sig}`")));
                    }
                    kinds.insert(sig.to_owned(), kind);
                }
            }
            gate_type => {
                // `TYPE INSTANCE ( out , in , in ... )`
                let open = stmt
                    .find('(')
                    .ok_or_else(|| err(*lno, format!("gate `{gate_type}` missing port list")))?;
                let close = stmt
                    .rfind(')')
                    .ok_or_else(|| err(*lno, format!("gate `{gate_type}` missing `)`")))?;
                let header: Vec<&str> = stmt[..open].split_whitespace().collect();
                let [ty, inst] = header.as_slice() else {
                    return Err(err(
                        *lno,
                        format!("expected `TYPE NAME (...)`, got `{stmt}`"),
                    ));
                };
                let ports: Vec<String> = stmt[open + 1..close]
                    .split(',')
                    .map(|p| p.trim().to_owned())
                    .filter(|p| !p.is_empty())
                    .collect();
                if ports.len() < 2 {
                    return Err(err(
                        *lno,
                        format!("gate `{inst}` needs an output and inputs"),
                    ));
                }
                gates.push((*lno, (*ty).to_owned(), (*inst).to_owned(), ports));
            }
        }
    }
    if trailer != "endmodule" {
        return Err(err(
            line,
            format!("expected trailing `endmodule`, got `{trailer}`"),
        ));
    }
    let name = name.ok_or_else(|| err(1, "no module declaration found".into()))?;

    // Nodes: primary inputs first (declaration order), then gates.
    let mut b = HypergraphBuilder::new();
    let mut node_names = Vec::new();
    let mut driver: HashMap<&str, NodeId> = HashMap::new();
    let mut readers: HashMap<&str, Vec<NodeId>> = HashMap::new();
    let mut input_order: Vec<&str> = Vec::new();
    for (lno, stmt) in &statements {
        // Match the whole keyword: `strip_prefix` alone would also fire on
        // e.g. an `inputx g (y, a)` gate instance and feed garbage below.
        if stmt.split_whitespace().next() == Some("input") {
            let rest = &stmt["input".len()..];
            for sig in rest.split(',') {
                let sig = sig.trim();
                if sig.is_empty() {
                    continue;
                }
                let Some((sig_key, _)) = kinds.get_key_value(sig) else {
                    return Err(err(*lno, format!("undeclared signal `{sig}`")));
                };
                let sig_key = sig_key.as_str();
                if driver.contains_key(sig_key) {
                    return Err(err(*lno, format!("input `{sig}` declared twice")));
                }
                let id = b.add_node(1);
                node_names.push(sig.to_owned());
                driver.insert(sig_key, id);
                input_order.push(sig_key);
            }
        }
    }
    for (lno, _ty, inst, ports) in &gates {
        let id = b.add_node(1);
        node_names.push(inst.clone());
        for (i, port) in ports.iter().enumerate() {
            let key = kinds
                .get_key_value(port.as_str())
                .ok_or_else(|| err(*lno, format!("undeclared signal `{port}`")))?
                .0
                .as_str();
            if i == 0 {
                if driver.contains_key(key) {
                    return Err(err(*lno, format!("signal `{port}` has multiple drivers")));
                }
                driver.insert(key, id);
            } else {
                readers.entry(key).or_default().push(id);
            }
        }
    }

    // Nets in a stable order: inputs first, then gate outputs.
    let mut net_names = Vec::new();
    let emit = |sig: &str, b: &mut HypergraphBuilder, net_names: &mut Vec<String>| {
        let Some(&drv) = driver.get(sig) else {
            return Ok(());
        };
        let sinks = readers.get(sig).cloned().unwrap_or_default();
        let pins = std::iter::once(drv).chain(sinks);
        if b.add_net_lenient(1.0, pins)?.is_some() {
            net_names.push(sig.to_owned());
        }
        Ok::<(), NetlistError>(())
    };
    for sig in &input_order {
        emit(sig, &mut b, &mut net_names)?;
    }
    for (_, _, _, ports) in &gates {
        // Every gate port was resolved against `kinds` in the driver pass.
        let Some((key, _)) = kinds.get_key_value(ports[0].as_str()) else {
            continue;
        };
        emit(key.as_str(), &mut b, &mut net_names)?;
    }

    Ok(VerilogModule {
        name,
        hypergraph: b.build()?,
        node_names,
        net_names,
    })
}

fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for d in chars.by_ref() {
                        if d == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    let mut prev = ' ';
                    for d in chars.by_ref() {
                        if d == '\n' {
                            out.push('\n'); // keep line numbers aligned
                        }
                        if prev == '*' && d == '/' {
                            break;
                        }
                        prev = d;
                    }
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_alphabetic() || c == '_')
        && chars.all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
// ISCAS85 c17
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g0 (N10, N1, N3);
  nand g1 (N11, N3, N6);
  nand g2 (N16, N2, N11);
  nand g3 (N19, N11, N7);
  nand g4 (N22, N10, N16);
  nand g5 (N23, N16, N19);
endmodule
";

    #[test]
    fn parses_c17() {
        let m = from_str(C17).unwrap();
        assert_eq!(m.name, "c17");
        // 5 inputs + 6 gates.
        assert_eq!(m.hypergraph.num_nodes(), 11);
        // Nets: N1,N2,N3,N6,N7 (inputs), N10,N11,N16,N19 (read wires);
        // N22/N23 have no readers and are dropped.
        assert_eq!(m.hypergraph.num_nets(), 9);
        assert!(m.net_names.contains(&"N11".to_owned()));
        assert!(!m.net_names.contains(&"N22".to_owned()));
        crate::validate::assert_valid(&m.hypergraph);
    }

    #[test]
    fn fanout_becomes_one_net() {
        let m = from_str(C17).unwrap();
        // N11 drives g2 and g3: net = {g1, g2, g3}.
        let e = m.net_names.iter().position(|n| n == "N11").unwrap();
        let pins = m.hypergraph.net_pins(crate::NetId::new(e));
        assert_eq!(pins.len(), 3);
        assert!(pins.contains(&m.node("g1").unwrap()));
        assert!(pins.contains(&m.node("g2").unwrap()));
        assert!(pins.contains(&m.node("g3").unwrap()));
    }

    #[test]
    fn comments_are_stripped_with_line_numbers_kept() {
        let src = "module m (a, b);\n/* block\ncomment */ input a;\noutput b;\nbuf g (b, a);\nendmodule\n";
        let m = from_str(src).unwrap();
        assert_eq!(m.hypergraph.num_nodes(), 2);
    }

    #[test]
    fn undeclared_signal_errors_with_line() {
        let src = "module m (a, y);\ninput a;\noutput y;\nand g (y, a, ghost);\nendmodule\n";
        let e = from_str(src).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("ghost"), "{msg}");
        assert!(msg.contains("line 4"), "{msg}");
    }

    #[test]
    fn multiple_drivers_error() {
        let src = "module m (a, y);\ninput a;\noutput y;\nwire w;\nbuf g1 (w, a);\nbuf g2 (w, a);\nbuf g3 (y, w);\nendmodule\n";
        let e = from_str(src).unwrap_err();
        assert!(e.to_string().contains("multiple drivers"));
    }

    #[test]
    fn missing_endmodule_errors() {
        let e = from_str("module m (a);\ninput a;\n").unwrap_err();
        assert!(e.to_string().contains("endmodule"));
    }

    #[test]
    fn two_modules_error() {
        let src = "module a (x);\ninput x;\nendmodule\nmodule b (y);\ninput y;\nendmodule\n";
        let e = from_str(src).unwrap_err();
        // The first `endmodule` (no semicolon) ends up inside the next
        // statement, so this surfaces as a parse error either way.
        assert!(matches!(e, NetlistError::Parse { .. }));
    }
}
