//! Netlist hypergraph substrate for hierarchical tree partitioning.
//!
//! This crate provides the circuit representation that every other crate in
//! the workspace builds on:
//!
//! * [`Hypergraph`] — an immutable, CSR-packed hypergraph with node sizes and
//!   net capacities, built through [`HypergraphBuilder`].
//! * [`io`] — readers and writers for the hMETIS `.hgr` format and a small
//!   named-netlist text format.
//! * [`gen`] — synthetic workload generators, including deterministic
//!   surrogates for the ISCAS85 circuits used in the paper's evaluation
//!   (the real MCNC netlists are proprietary; see `DESIGN.md`).
//!
//! # Examples
//!
//! ```
//! use htp_netlist::{Hypergraph, HypergraphBuilder};
//!
//! # fn main() -> Result<(), htp_netlist::NetlistError> {
//! let mut b = HypergraphBuilder::new();
//! let a = b.add_node(1);
//! let c = b.add_node(1);
//! let d = b.add_node(2);
//! b.add_net(1.0, [a, c])?;
//! b.add_net(2.0, [a, c, d])?;
//! let h: Hypergraph = b.build()?;
//! assert_eq!(h.num_nodes(), 3);
//! assert_eq!(h.num_nets(), 2);
//! assert_eq!(h.num_pins(), 5);
//! assert_eq!(h.total_size(), 4);
//! # Ok(())
//! # }
//! ```

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod builder;
pub mod coarsen;
pub mod csr;
pub mod error;
pub mod gen;
pub mod hypergraph;
pub mod io;
pub mod stats;
pub mod validate;

mod ids;

pub use builder::HypergraphBuilder;
pub use coarsen::{
    contract_tracked_with, contract_with, dedup_nets, ContractScratch, ContractStats, DROPPED_NET,
};
pub use csr::CsrHypergraph;
pub use error::NetlistError;
pub use hypergraph::{Hypergraph, InducedSubgraph};
pub use ids::{NetId, NodeId};
pub use stats::NetlistStats;
