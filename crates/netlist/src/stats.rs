//! Summary statistics for netlists (the raw material of the paper's Table 1).

use std::fmt;

use crate::Hypergraph;

/// Aggregate statistics of a hypergraph.
///
/// Produced by [`NetlistStats::of`]; rendered by `Display` as a single
/// human-readable line. The `nodes`/`nets`/`pins` triple is exactly what the
/// paper's Table 1 reports for the ISCAS85 test cases.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetlistStats {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of nets `|E|`.
    pub nets: usize,
    /// Total pin count.
    pub pins: usize,
    /// Total node size `s(V)`.
    pub total_size: u64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Maximum net cardinality.
    pub max_net_size: usize,
    /// Mean net cardinality (0 for a netless graph).
    pub avg_net_size: f64,
    /// Mean node degree (0 for an empty graph).
    pub avg_degree: f64,
}

impl NetlistStats {
    /// Computes the statistics of `h`.
    pub fn of(h: &Hypergraph) -> Self {
        let nodes = h.num_nodes();
        let nets = h.num_nets();
        let pins = h.num_pins();
        NetlistStats {
            nodes,
            nets,
            pins,
            total_size: h.total_size(),
            max_degree: h.nodes().map(|v| h.node_degree(v)).max().unwrap_or(0),
            max_net_size: h.max_net_size(),
            avg_net_size: if nets == 0 {
                0.0
            } else {
                pins as f64 / nets as f64
            },
            avg_degree: if nodes == 0 {
                0.0
            } else {
                pins as f64 / nodes as f64
            },
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} nets, {} pins (size {}, avg net {:.2}, avg deg {:.2})",
            self.nodes, self.nets, self.pins, self.total_size, self.avg_net_size, self.avg_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, NodeId};

    #[test]
    fn stats_of_small_netlist() {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(1.0, [NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        let s = NetlistStats::of(&b.build().unwrap());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.nets, 2);
        assert_eq!(s.pins, 6);
        assert_eq!(s.total_size, 4);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.max_net_size, 4);
        assert!((s.avg_net_size - 3.0).abs() < 1e-12);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_netlist_are_zero() {
        let s = NetlistStats::of(&HypergraphBuilder::new().build().unwrap());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_net_size, 0.0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn display_mentions_the_triple() {
        let mut b = HypergraphBuilder::with_unit_nodes(2);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let s = NetlistStats::of(&b.build().unwrap());
        let line = s.to_string();
        assert!(line.contains("2 nodes"));
        assert!(line.contains("1 nets"));
        assert!(line.contains("2 pins"));
    }
}
