//! A flat, data-oriented view of a [`Hypergraph`] for the probe hot path.
//!
//! The probe phase — Algorithm 2's shortest-path tree growth — is ~99.6%
//! of end-to-end wall-clock, and its inner loop is nothing but incidence
//! walks: `node → nets` to find the nets a settled pin activates, then
//! `net → pins` to relax every other pin, with a metric length load per
//! net. [`Hypergraph`] already stores incidence in CSR form, but behind
//! typed [`NodeId`](crate::NodeId)/[`NetId`](crate::NetId) wrappers and with net lengths living in a
//! separate `SpreadingMetric` allocation.
//!
//! [`CsrHypergraph`] flattens all of it into plain `u32`/`f64` slabs — the
//! two adjacency CSRs, a `net_len` slab co-located with capacities, node
//! sizes — built once per metric run and shared read-only (`&`) across
//! probe workers. The layout is the same idea Heuer–Sanders–Schlag use for
//! their flow-refinement throughput: every array the kernel touches is
//! dense, contiguous, and index-addressed, so the relaxation loop streams
//! instead of pointer-chasing.
//!
//! The view is *positional*: index `v` here is exactly `NodeId::new(v)` in
//! the source hypergraph, and both CSRs preserve the source pin order, so
//! any kernel running over the view visits nodes and nets in the identical
//! order as one running over the [`Hypergraph`] — the property the
//! kernel-equivalence suite in `htp-core` pins bit-for-bit.

use crate::hypergraph::Hypergraph;

/// Flat CSR incidence + net-length slab, the probe kernel's working set.
///
/// Construction copies the adjacency out of a [`Hypergraph`]; `net_len`
/// starts at zero and is re-priced in place via [`lengths_mut`]
/// (one flat pass per flow round) or [`set_lengths`]. Everything else is
/// immutable after the build.
///
/// [`lengths_mut`]: CsrHypergraph::lengths_mut
/// [`set_lengths`]: CsrHypergraph::set_lengths
#[derive(Clone, Debug)]
pub struct CsrHypergraph {
    /// `node_nets[node_off[v]..node_off[v+1]]` are the nets of node `v`.
    node_off: Vec<u32>,
    node_nets: Vec<u32>,
    /// `pins[net_off[e]..net_off[e+1]]` are the pins of net `e`.
    net_off: Vec<u32>,
    pins: Vec<u32>,
    /// Current metric length per net (the Dijkstra edge weight).
    net_len: Vec<f64>,
    /// Static net capacity `c(e)`.
    net_capacity: Vec<f64>,
    /// Static node size `s(v)`.
    node_size: Vec<u64>,
    /// Sum of all node sizes.
    total_size: u64,
}

impl CsrHypergraph {
    /// Builds the flat view of `h` with all net lengths zero.
    pub fn new(h: &Hypergraph) -> Self {
        // NodeId/NetId are transparent u32 newtypes; copy them out to raw
        // indices so the kernel needs no wrapper arithmetic at all.
        let node_nets: Vec<u32> = h.node_nets.iter().map(|e| e.0).collect();
        let pins: Vec<u32> = h.pins.iter().map(|v| v.0).collect();
        CsrHypergraph {
            node_off: h.node_off.clone(),
            node_nets,
            net_off: h.net_off.clone(),
            pins,
            net_len: vec![0.0; h.num_nets()],
            net_capacity: h.net_capacity.clone(),
            node_size: h.node_size.clone(),
            total_size: h.total_size(),
        }
    }

    /// Builds the flat view with net lengths copied from `lengths`.
    ///
    /// # Panics
    ///
    /// Panics if `lengths.len() != h.num_nets()`.
    pub fn with_lengths(h: &Hypergraph, lengths: &[f64]) -> Self {
        let mut csr = CsrHypergraph::new(h);
        csr.set_lengths(lengths);
        csr
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_off.len() - 1
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_off.len() - 1
    }

    /// Number of pin connections.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Nets incident to node `v`, in the source hypergraph's order.
    #[inline]
    pub fn node_nets(&self, v: u32) -> &[u32] {
        &self.node_nets[self.node_off[v as usize] as usize..self.node_off[v as usize + 1] as usize]
    }

    /// Pins of net `e`, in the source hypergraph's order.
    #[inline]
    pub fn net_pins(&self, e: u32) -> &[u32] {
        &self.pins[self.net_off[e as usize] as usize..self.net_off[e as usize + 1] as usize]
    }

    /// Current length of net `e`.
    #[inline]
    pub fn net_len(&self, e: u32) -> f64 {
        self.net_len[e as usize]
    }

    /// Capacity `c(e)` of net `e`.
    #[inline]
    pub fn net_capacity(&self, e: u32) -> f64 {
        self.net_capacity[e as usize]
    }

    /// Size `s(v)` of node `v`.
    #[inline]
    pub fn node_size(&self, v: u32) -> u64 {
        self.node_size[v as usize]
    }

    /// Sum of all node sizes.
    #[inline]
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// The whole length slab, for batched reads (the quantization probe).
    #[inline]
    pub fn lengths(&self) -> &[f64] {
        &self.net_len
    }

    /// The whole length slab, mutably, for batched re-pricing: one flat
    /// `exp(α·f/c)` pass per flow round writes every net at once.
    #[inline]
    pub fn lengths_mut(&mut self) -> &mut [f64] {
        &mut self.net_len
    }

    /// Overwrites every net length from a slice (e.g. a metric's lengths).
    ///
    /// # Panics
    ///
    /// Panics if `lengths.len() != self.num_nets()`.
    pub fn set_lengths(&mut self, lengths: &[f64]) {
        assert_eq!(
            lengths.len(),
            self.net_len.len(),
            "length slab size mismatch"
        );
        self.net_len.copy_from_slice(lengths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::ids::{NetId, NodeId};

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(5);
        b.add_net(2.0, [0, 1, 2].map(NodeId::new)).unwrap();
        b.add_net(1.0, [1, 3].map(NodeId::new)).unwrap();
        b.add_net(0.5, [2, 3, 4].map(NodeId::new)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn view_mirrors_the_hypergraph_exactly() {
        let h = sample();
        let csr = CsrHypergraph::new(&h);
        assert_eq!(csr.num_nodes(), h.num_nodes());
        assert_eq!(csr.num_nets(), h.num_nets());
        assert_eq!(csr.num_pins(), h.num_pins());
        assert_eq!(csr.total_size(), h.total_size());
        for v in 0..h.num_nodes() {
            let want: Vec<u32> = h.node_nets(NodeId::new(v)).iter().map(|e| e.0).collect();
            assert_eq!(csr.node_nets(v as u32), want.as_slice(), "node {v}");
            assert_eq!(csr.node_size(v as u32), h.node_size(NodeId::new(v)));
        }
        for e in 0..h.num_nets() {
            let want: Vec<u32> = h.net_pins(NetId::new(e)).iter().map(|v| v.0).collect();
            assert_eq!(csr.net_pins(e as u32), want.as_slice(), "net {e}");
            assert_eq!(csr.net_capacity(e as u32), h.net_capacity(NetId::new(e)));
            assert_eq!(csr.net_len(e as u32), 0.0);
        }
    }

    #[test]
    fn lengths_round_trip_through_the_slab() {
        let h = sample();
        let mut csr = CsrHypergraph::with_lengths(&h, &[0.25, 1.5, 3.0]);
        assert_eq!(csr.lengths(), &[0.25, 1.5, 3.0]);
        assert_eq!(csr.net_len(2), 3.0);
        csr.lengths_mut()[1] = 9.0;
        assert_eq!(csr.net_len(1), 9.0);
        csr.set_lengths(&[0.0, 0.0, 0.0]);
        assert_eq!(csr.lengths(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length slab size mismatch")]
    fn set_lengths_rejects_wrong_size() {
        let h = sample();
        let mut csr = CsrHypergraph::new(&h);
        csr.set_lengths(&[1.0]);
    }
}
