//! Deterministic surrogates for the ISCAS85 circuits used in the paper.
//!
//! The original MCNC netlists cannot be redistributed, so each circuit is
//! replaced by a generated surrogate of the same scale and structure class
//! (see `DESIGN.md` for the substitution argument):
//!
//! * c2670, c3540, c5315, c7552 — Rent's-rule hierarchical random logic
//!   ([`crate::gen::rent`]), with locality chosen per circuit: control-heavy
//!   c2670/c7552 are strongly clustered, the ALU-like c3540/c5315 less so.
//! * c6288 — a regular multiplier array ([`crate::gen::grid`]).
//!
//! Node counts equal the published gate + primary-input counts of the real
//! circuits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gen::grid::{grid_array, GridParams};
use crate::gen::rent::{rent_circuit, RentParams};
use crate::Hypergraph;

/// The structure class used for a surrogate circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CircuitStyle {
    /// Hierarchical random logic with the given locality.
    RandomLogic {
        /// Locality parameter passed to [`RentParams`].
        locality: f64,
    },
    /// Regular multiplier-style adder array.
    MultiplierArray {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

/// Profile of one ISCAS85 circuit: published scale plus surrogate style.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CircuitProfile {
    /// Circuit name, e.g. `"c2670"`.
    pub name: &'static str,
    /// Published gate count of the real circuit.
    pub gates: usize,
    /// Published primary-input count of the real circuit.
    pub primary_inputs: usize,
    /// Surrogate structure class.
    pub style: CircuitStyle,
}

impl CircuitProfile {
    /// Total node count of the surrogate (gates plus input drivers).
    pub fn nodes(&self) -> usize {
        match self.style {
            CircuitStyle::RandomLogic { .. } => self.gates + self.primary_inputs,
            CircuitStyle::MultiplierArray { rows, cols } => {
                rows * cols + 2 * (self.primary_inputs / 2)
            }
        }
    }
}

/// The five test cases of the paper's Table 1, in table order.
pub const PROFILES: [CircuitProfile; 5] = [
    CircuitProfile {
        name: "c2670",
        gates: 1193,
        primary_inputs: 233,
        style: CircuitStyle::RandomLogic { locality: 0.82 },
    },
    CircuitProfile {
        name: "c3540",
        gates: 1669,
        primary_inputs: 50,
        style: CircuitStyle::RandomLogic { locality: 0.72 },
    },
    CircuitProfile {
        name: "c5315",
        gates: 2307,
        primary_inputs: 178,
        style: CircuitStyle::RandomLogic { locality: 0.74 },
    },
    CircuitProfile {
        name: "c6288",
        gates: 2406,
        primary_inputs: 32,
        style: CircuitStyle::MultiplierArray { rows: 48, cols: 50 },
    },
    CircuitProfile {
        name: "c7552",
        gates: 3512,
        primary_inputs: 207,
        style: CircuitStyle::RandomLogic { locality: 0.80 },
    },
];

/// Looks up a profile by circuit name.
pub fn profile(name: &str) -> Option<CircuitProfile> {
    PROFILES.iter().copied().find(|p| p.name == name)
}

/// Generates the surrogate netlist of `profile`, deterministically derived
/// from `seed`.
pub fn surrogate(profile: CircuitProfile, seed: u64) -> Hypergraph {
    // Mix in a stable per-circuit tag so `seed` can be shared across circuits
    // without producing correlated instances.
    let tag: u64 = profile.name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed ^ tag);

    match profile.style {
        CircuitStyle::RandomLogic { locality } => rent_circuit(
            RentParams {
                nodes: profile.gates + profile.primary_inputs,
                primary_inputs: profile.primary_inputs,
                locality,
                branching: 4,
                leaf_size: 8,
                min_fanin: 1,
                max_fanin: 3,
                pi_input_fraction: 0.04,
            },
            &mut rng,
        ),
        CircuitStyle::MultiplierArray { rows, cols } => grid_array(GridParams {
            rows,
            cols,
            operand_drivers: profile.primary_inputs / 2,
        }),
    }
}

/// Generates the surrogate for a circuit by name.
///
/// Returns `None` for names outside the paper's five test cases.
pub fn surrogate_by_name(name: &str, seed: u64) -> Option<Hypergraph> {
    profile(name).map(|p| surrogate(p, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn all_profiles_generate_valid_netlists() {
        for p in PROFILES {
            let h = surrogate(p, 1);
            validate::assert_valid(&h);
            assert_eq!(h.num_nodes(), p.nodes(), "{}", p.name);
            assert!(h.num_nets() > p.nodes() / 2, "{} too few nets", p.name);
        }
    }

    #[test]
    fn scale_tracks_the_published_counts() {
        assert_eq!(profile("c2670").unwrap().nodes(), 1426);
        assert_eq!(profile("c7552").unwrap().nodes(), 3719);
        assert_eq!(profile("c6288").unwrap().nodes(), 48 * 50 + 32);
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(profile("c17").is_none());
        assert!(surrogate_by_name("s38417", 0).is_none());
    }

    #[test]
    fn per_circuit_seeding_is_decorrelated_but_deterministic() {
        let a1 = surrogate_by_name("c2670", 3).unwrap();
        let a2 = surrogate_by_name("c2670", 3).unwrap();
        assert_eq!(a1, a2);
        let b = surrogate_by_name("c3540", 3).unwrap();
        assert_ne!(a1.num_nodes(), b.num_nodes());
    }

    #[test]
    fn c6288_is_mostly_two_pin_nets() {
        let h = surrogate_by_name("c6288", 0).unwrap();
        let two_pin = h.nets().filter(|&e| h.net_pins(e).len() == 2).count();
        assert!(two_pin as f64 > 0.9 * h.num_nets() as f64);
    }
}
