//! Structureless uniform random hypergraphs.

use rand::{Rng, RngExt};

use crate::{Hypergraph, HypergraphBuilder, NodeId};

/// Parameters for [`random_hypergraph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of nets.
    pub nets: usize,
    /// Minimum net cardinality (at least 2).
    pub min_net_size: usize,
    /// Maximum net cardinality (inclusive).
    pub max_net_size: usize,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            nodes: 64,
            nets: 128,
            min_net_size: 2,
            max_net_size: 4,
        }
    }
}

/// Generates a uniform random hypergraph: each net's cardinality is drawn
/// uniformly from `[min_net_size, max_net_size]` and its pins uniformly
/// without replacement from all nodes. All sizes and capacities are 1.
///
/// This is the structureless null model: partitioning it well is essentially
/// impossible, which makes it useful for sanity-checking that algorithms do
/// not hallucinate structure.
///
/// # Panics
///
/// Panics if `nodes < max_net_size` or `min_net_size < 2` or
/// `min_net_size > max_net_size`.
pub fn random_hypergraph<R: Rng + ?Sized>(params: RandomParams, rng: &mut R) -> Hypergraph {
    assert!(params.min_net_size >= 2, "nets need at least 2 pins");
    assert!(
        params.min_net_size <= params.max_net_size,
        "empty net-size range"
    );
    assert!(
        params.nodes >= params.max_net_size,
        "not enough nodes for the largest net"
    );

    let mut b = HypergraphBuilder::with_unit_nodes(params.nodes);
    let mut scratch: Vec<usize> = Vec::new();
    for _ in 0..params.nets {
        let k = rng.random_range(params.min_net_size..=params.max_net_size);
        scratch.clear();
        while scratch.len() < k {
            let v = rng.random_range(0..params.nodes);
            if !scratch.contains(&v) {
                scratch.push(v);
            }
        }
        b.add_net(1.0, scratch.iter().map(|&v| NodeId::new(v)))
            .expect("sampled pins are distinct and in range");
    }
    b.build()
        .expect("generated hypergraph is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_requested_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = RandomParams {
            nodes: 50,
            nets: 80,
            min_net_size: 2,
            max_net_size: 5,
        };
        let h = random_hypergraph(p, &mut rng);
        assert_eq!(h.num_nodes(), 50);
        assert_eq!(h.num_nets(), 80);
        for e in h.nets() {
            let k = h.net_pins(e).len();
            assert!((2..=5).contains(&k));
        }
        validate::assert_valid(&h);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let p = RandomParams::default();
        let h1 = random_hypergraph(p, &mut StdRng::seed_from_u64(42));
        let h2 = random_hypergraph(p, &mut StdRng::seed_from_u64(42));
        assert_eq!(h1, h2);
    }

    #[test]
    fn different_seeds_differ() {
        let p = RandomParams::default();
        let h1 = random_hypergraph(p, &mut StdRng::seed_from_u64(1));
        let h2 = random_hypergraph(p, &mut StdRng::seed_from_u64(2));
        assert_ne!(h1, h2);
    }

    #[test]
    #[should_panic(expected = "at least 2 pins")]
    fn rejects_tiny_nets() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = RandomParams {
            min_net_size: 1,
            ..RandomParams::default()
        };
        let _ = random_hypergraph(p, &mut rng);
    }
}
