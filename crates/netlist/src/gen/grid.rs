//! Regular adder-array circuits (the c6288 structure class).
//!
//! The ISCAS85 circuit c6288 is a 16×16 combinational multiplier: a dense,
//! completely regular carry-save adder array with only nearest-neighbour
//! wiring plus operand-broadcast nets. Such meshes have *no* cluster
//! hierarchy — every balanced cut costs about the same — which is exactly why
//! the paper's flow-based method loses its advantage there. This generator
//! reproduces that structure at arbitrary scale.

use crate::{Hypergraph, HypergraphBuilder, NodeId};

/// Parameters for [`grid_array`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridParams {
    /// Number of cell rows.
    pub rows: usize,
    /// Number of cell columns.
    pub cols: usize,
    /// Number of operand-driver nodes per side (broadcast nets). Zero
    /// disables operand nets.
    pub operand_drivers: usize,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            rows: 16,
            cols: 16,
            operand_drivers: 16,
        }
    }
}

/// Generates a carry-save-adder-array surrogate.
///
/// Layout: `rows × cols` unit-size full-adder cells in row-major order,
/// followed by `2 · operand_drivers` operand drivers. Nets:
///
/// * **sum nets** — each cell drives the cell directly below (2 pins),
/// * **carry nets** — each cell drives the cell below-left (2 pins),
/// * **operand nets** — driver `a_i` broadcasts to the cells of row-group
///   `i`, driver `b_j` to column-group `j` (high fan-out, like partial
///   product inputs).
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn grid_array(params: GridParams) -> Hypergraph {
    assert!(
        params.rows >= 1 && params.cols >= 1,
        "grid must be non-empty"
    );
    let GridParams {
        rows,
        cols,
        operand_drivers,
    } = params;

    let cell = |r: usize, c: usize| NodeId::new(r * cols + c);
    let num_cells = rows * cols;
    let mut b = HypergraphBuilder::with_unit_nodes(num_cells + 2 * operand_drivers);

    // Sum chains: straight down.
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols {
            b.add_net(1.0, [cell(r, c), cell(r + 1, c)])
                .expect("grid pins are in range");
        }
    }
    // Carry chains: down-left diagonal.
    for r in 0..rows.saturating_sub(1) {
        for c in 1..cols {
            b.add_net(1.0, [cell(r, c), cell(r + 1, c - 1)])
                .expect("grid pins are in range");
        }
    }
    // Final-row ripple: horizontal chain along the bottom.
    for c in 0..cols.saturating_sub(1) {
        b.add_net(1.0, [cell(rows - 1, c), cell(rows - 1, c + 1)])
            .expect("grid pins are in range");
    }

    // Operand broadcasts.
    if operand_drivers > 0 {
        for i in 0..operand_drivers {
            let a_driver = NodeId::new(num_cells + i);
            let row_lo = i * rows / operand_drivers;
            let row_hi = ((i + 1) * rows / operand_drivers).max(row_lo + 1).min(rows);
            let pins = std::iter::once(a_driver).chain(
                (row_lo..row_hi)
                    .flat_map(|r| (0..cols).map(move |c| r * cols + c))
                    .map(NodeId::new),
            );
            b.add_net_lenient(1.0, pins).expect("pins in range");

            let b_driver = NodeId::new(num_cells + operand_drivers + i);
            let col_lo = i * cols / operand_drivers;
            let col_hi = ((i + 1) * cols / operand_drivers).max(col_lo + 1).min(cols);
            let pins = std::iter::once(b_driver).chain(
                (0..rows)
                    .flat_map(|r| (col_lo..col_hi).map(move |c| r * cols + c))
                    .map(NodeId::new),
            );
            b.add_net_lenient(1.0, pins).expect("pins in range");
        }
    }

    b.build()
        .expect("generated hypergraph is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn shape_matches_formula() {
        let p = GridParams {
            rows: 4,
            cols: 5,
            operand_drivers: 2,
        };
        let h = grid_array(p);
        assert_eq!(h.num_nodes(), 20 + 4);
        // sums: 3*5, carries: 3*4, ripple: 4, operands: 4.
        assert_eq!(h.num_nets(), 15 + 12 + 4 + 4);
        validate::assert_valid(&h);
    }

    #[test]
    fn local_nets_are_two_pin() {
        let h = grid_array(GridParams {
            rows: 3,
            cols: 3,
            operand_drivers: 0,
        });
        for e in h.nets() {
            assert_eq!(h.net_pins(e).len(), 2);
        }
    }

    #[test]
    fn operand_nets_are_high_fanout() {
        let p = GridParams {
            rows: 8,
            cols: 8,
            operand_drivers: 4,
        };
        let h = grid_array(p);
        assert!(h.max_net_size() > 2 * 8, "broadcast nets should be wide");
    }

    #[test]
    fn single_cell_grid_has_no_local_nets() {
        let h = grid_array(GridParams {
            rows: 1,
            cols: 1,
            operand_drivers: 0,
        });
        assert_eq!(h.num_nodes(), 1);
        assert_eq!(h.num_nets(), 0);
    }

    #[test]
    fn is_deterministic() {
        let p = GridParams::default();
        assert_eq!(grid_array(p), grid_array(p));
    }
}
