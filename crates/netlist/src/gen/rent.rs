//! Rent's-rule hierarchical random logic.
//!
//! Real random-logic circuits (the c2670/c3540/c5315/c7552 class) exhibit
//! *hierarchical locality*: most connections stay inside small modules, and
//! the number of wires crossing a module boundary grows sublinearly with
//! module size (Rent's rule). This generator reproduces that structure by
//! laying nodes out on an implicit module hierarchy and sampling each gate
//! input from an enclosing module whose level follows a geometric
//! distribution — the classic GNL/statistical-design approach.

use rand::{Rng, RngExt};

use crate::{Hypergraph, HypergraphBuilder, NodeId};

/// Parameters for [`rent_circuit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RentParams {
    /// Total node count (gates plus primary-input drivers).
    pub nodes: usize,
    /// Number of primary-input driver nodes, spread uniformly through the
    /// index space so every module sees some.
    pub primary_inputs: usize,
    /// Probability that an input connection stays at the current hierarchy
    /// level instead of escalating one level up. Higher values mean stronger
    /// clustering; `0.0` degenerates to uniform random wiring.
    pub locality: f64,
    /// Fan-out factor of the module hierarchy (children per module).
    pub branching: usize,
    /// Size of the smallest (leaf) modules.
    pub leaf_size: usize,
    /// Minimum gate fan-in.
    pub min_fanin: usize,
    /// Maximum gate fan-in (inclusive).
    pub max_fanin: usize,
    /// Probability that an input is rewired to a random primary input,
    /// modelling global control/data signals.
    pub pi_input_fraction: f64,
}

impl Default for RentParams {
    fn default() -> Self {
        RentParams {
            nodes: 512,
            primary_inputs: 32,
            locality: 0.72,
            branching: 4,
            leaf_size: 8,
            min_fanin: 1,
            max_fanin: 3,
            pi_input_fraction: 0.05,
        }
    }
}

impl RentParams {
    /// Number of levels in the implicit module hierarchy above the leaves.
    pub fn depth(&self) -> usize {
        let mut width = self.leaf_size.max(1);
        let mut depth = 0;
        while width < self.nodes {
            width = width.saturating_mul(self.branching.max(2));
            depth += 1;
        }
        depth
    }

    fn validate(&self) {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(self.primary_inputs >= 1, "need at least one primary input");
        assert!(
            self.primary_inputs < self.nodes,
            "primary inputs must leave room for gates"
        );
        assert!(
            (0.0..=1.0).contains(&self.locality),
            "locality must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.pi_input_fraction),
            "pi fraction must be a probability"
        );
        assert!(self.branching >= 2, "branching must be at least 2");
        assert!(
            self.leaf_size >= 2,
            "leaf modules must hold at least 2 nodes"
        );
        assert!(
            self.min_fanin >= 1 && self.min_fanin <= self.max_fanin,
            "bad fan-in range"
        );
    }
}

/// Generates a hierarchical random-logic netlist.
///
/// Every node is unit size; every net is the output net of one driver node
/// (the driver plus its sampled sinks), capacity 1. Nodes whose output is
/// never used produce no net, exactly like unloaded gates in a real netlist.
///
/// # Panics
///
/// Panics if the parameters are out of range (see [`RentParams`] field docs).
pub fn rent_circuit<R: Rng + ?Sized>(params: RentParams, rng: &mut R) -> Hypergraph {
    params.validate();
    let n = params.nodes;
    let depth = params.depth();

    // Primary inputs are spread with a fixed stride so each region of the
    // hierarchy has local access to some.
    let pi_stride = n / params.primary_inputs;
    let is_pi = |v: usize| v.is_multiple_of(pi_stride) && v / pi_stride < params.primary_inputs;
    let pi_index = |k: usize| k * pi_stride;

    // sinks[u] collects the gates whose inputs are driven by u.
    let mut sinks: Vec<Vec<u32>> = vec![Vec::new(); n];

    for gate in 0..n {
        if is_pi(gate) {
            continue; // primary inputs have no inputs of their own
        }
        let fanin = rng.random_range(params.min_fanin..=params.max_fanin);
        for _ in 0..fanin {
            let src = if rng.random_bool(params.pi_input_fraction) {
                pi_index(rng.random_range(0..params.primary_inputs))
            } else {
                // Escalate the module level geometrically, then sample
                // uniformly inside the chosen enclosing module.
                let mut level = 0;
                while level < depth && !rng.random_bool(params.locality) {
                    level += 1;
                }
                let width = module_width(params, level).min(n);
                let start = (gate / width) * width;
                let end = (start + width).min(n);
                rng.random_range(start..end)
            };
            if src != gate {
                sinks[src].push(gate as u32);
            }
        }
    }

    let mut b = HypergraphBuilder::with_unit_nodes(n);
    for (driver, sink_list) in sinks.iter().enumerate() {
        if sink_list.is_empty() {
            continue;
        }
        let pins = std::iter::once(NodeId::new(driver)).chain(sink_list.iter().map(|&s| NodeId(s)));
        b.add_net_lenient(1.0, pins)
            .expect("pins reference existing nodes");
    }
    b.build()
        .expect("generated hypergraph is structurally valid")
}

fn module_width(params: RentParams, level: usize) -> usize {
    let mut width = params.leaf_size;
    for _ in 0..level {
        width = width.saturating_mul(params.branching);
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn external_nets(h: &Hypergraph, block: std::ops::Range<usize>) -> usize {
        h.nets()
            .filter(|&e| {
                let pins = h.net_pins(e);
                let inside = pins.iter().filter(|v| block.contains(&v.index())).count();
                inside > 0 && inside < pins.len()
            })
            .count()
    }

    #[test]
    fn produces_valid_netlist_of_requested_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = RentParams::default();
        let h = rent_circuit(p, &mut rng);
        assert_eq!(h.num_nodes(), 512);
        assert!(h.num_nets() > 300, "most drivers should be loaded");
        assert!(h.num_pins() > h.num_nets());
        validate::assert_valid(&h);
    }

    #[test]
    fn locality_reduces_boundary_crossings() {
        // With strong locality the first quarter of the index space (one
        // aligned module) should have far fewer external nets than with no
        // locality at all.
        let tight = RentParams {
            locality: 0.9,
            ..RentParams::default()
        };
        let loose = RentParams {
            locality: 0.0,
            ..RentParams::default()
        };
        let h_tight = rent_circuit(tight, &mut StdRng::seed_from_u64(9));
        let h_loose = rent_circuit(loose, &mut StdRng::seed_from_u64(9));
        let cut_tight = external_nets(&h_tight, 0..128);
        let cut_loose = external_nets(&h_loose, 0..128);
        assert!(
            cut_tight * 2 < cut_loose,
            "expected locality to at least halve the cut: {cut_tight} vs {cut_loose}"
        );
    }

    #[test]
    fn depth_matches_geometry() {
        let p = RentParams {
            nodes: 512,
            leaf_size: 8,
            branching: 4,
            ..RentParams::default()
        };
        assert_eq!(p.depth(), 3); // 8 -> 32 -> 128 -> 512
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let p = RentParams::default();
        let a = rent_circuit(p, &mut StdRng::seed_from_u64(77));
        let b = rent_circuit(p, &mut StdRng::seed_from_u64(77));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "locality")]
    fn rejects_bad_locality() {
        let p = RentParams {
            locality: 1.5,
            ..RentParams::default()
        };
        let _ = rent_circuit(p, &mut StdRng::seed_from_u64(0));
    }
}
