//! Synthetic netlist generators.
//!
//! The paper evaluates on MCNC/ISCAS85 netlists that are not redistributable;
//! these generators produce deterministic surrogates with the same scale and
//! — more importantly — the same *structure* classes:
//!
//! * [`random`] — structureless uniform hypergraphs (null model),
//! * [`clustered`] — planted-cluster hypergraphs with a known ground truth,
//! * [`rent`] — Rent's-rule hierarchical random logic, the structure class of
//!   c2670/c3540/c5315/c7552,
//! * [`grid`] — regular adder-array circuits, the structure class of the
//!   c6288 multiplier,
//! * [`iscas`] — named surrogate profiles tying the above to the five
//!   ISCAS85 circuits of the paper's Table 1.

pub mod clustered;
pub mod grid;
pub mod iscas;
pub mod random;
pub mod rent;
