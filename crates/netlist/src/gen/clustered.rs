//! Planted-cluster hypergraphs with a known ground-truth partition.

use rand::{Rng, RngExt};

use crate::{Hypergraph, HypergraphBuilder, NodeId};

/// Parameters for [`clustered_hypergraph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusteredParams {
    /// Number of clusters.
    pub clusters: usize,
    /// Nodes per cluster.
    pub cluster_size: usize,
    /// Nets fully inside some cluster.
    pub intra_nets: usize,
    /// Nets spanning exactly two clusters.
    pub inter_nets: usize,
    /// Net cardinality range (inclusive), at least 2.
    pub min_net_size: usize,
    /// Maximum net cardinality (inclusive).
    pub max_net_size: usize,
}

impl Default for ClusteredParams {
    fn default() -> Self {
        ClusteredParams {
            clusters: 4,
            cluster_size: 16,
            intra_nets: 160,
            inter_nets: 12,
            min_net_size: 2,
            max_net_size: 3,
        }
    }
}

/// A generated planted-cluster instance.
#[derive(Clone, Debug)]
pub struct ClusteredInstance {
    /// The hypergraph.
    pub hypergraph: Hypergraph,
    /// `cluster_of[v.index()]` is the planted cluster of node `v`.
    pub cluster_of: Vec<usize>,
}

/// Generates a hypergraph whose nodes fall into `clusters` equal groups.
/// `intra_nets` nets have all pins inside one uniformly chosen cluster;
/// `inter_nets` nets split their pins across two distinct clusters. The
/// planted assignment is returned so tests can measure recovery.
///
/// # Panics
///
/// Panics if the net-size range is invalid or a cluster is smaller than the
/// largest net.
pub fn clustered_hypergraph<R: Rng + ?Sized>(
    params: ClusteredParams,
    rng: &mut R,
) -> ClusteredInstance {
    assert!(params.min_net_size >= 2, "nets need at least 2 pins");
    assert!(
        params.min_net_size <= params.max_net_size,
        "empty net-size range"
    );
    assert!(
        params.cluster_size >= params.max_net_size,
        "cluster smaller than the largest net"
    );
    assert!(params.clusters >= 1, "need at least one cluster");

    let n = params.clusters * params.cluster_size;
    let mut b = HypergraphBuilder::with_unit_nodes(n);
    let node_in =
        |cluster: usize, offset: usize| NodeId::new(cluster * params.cluster_size + offset);

    let mut scratch: Vec<NodeId> = Vec::new();
    let sample_in_cluster = |rng: &mut R, cluster: usize, k: usize, scratch: &mut Vec<NodeId>| {
        while scratch.len() < k {
            let v = node_in(cluster, rng.random_range(0..params.cluster_size));
            if !scratch.contains(&v) {
                scratch.push(v);
            }
        }
    };

    for _ in 0..params.intra_nets {
        let k = rng.random_range(params.min_net_size..=params.max_net_size);
        let c = rng.random_range(0..params.clusters);
        scratch.clear();
        sample_in_cluster(rng, c, k, &mut scratch);
        b.add_net(1.0, scratch.iter().copied())
            .expect("valid intra-cluster net");
    }

    for _ in 0..params.inter_nets {
        let k = rng.random_range(params.min_net_size..=params.max_net_size);
        let c1 = rng.random_range(0..params.clusters);
        let c2 = if params.clusters == 1 {
            c1
        } else {
            // Rejection-free pick of a second, distinct cluster.
            let raw = rng.random_range(0..params.clusters - 1);
            if raw >= c1 {
                raw + 1
            } else {
                raw
            }
        };
        scratch.clear();
        // At least one pin in each side.
        sample_in_cluster(rng, c1, k / 2 + k % 2, &mut scratch);
        let first_half = scratch.len();
        while scratch.len() < k + first_half.saturating_sub(k / 2 + k % 2) {
            let v = node_in(c2, rng.random_range(0..params.cluster_size));
            if !scratch.contains(&v) {
                scratch.push(v);
            }
            if scratch.len() - first_half == k - (k / 2 + k % 2) {
                break;
            }
        }
        b.add_net(1.0, scratch.iter().copied())
            .expect("valid inter-cluster net");
    }

    let cluster_of = (0..n).map(|v| v / params.cluster_size).collect();
    ClusteredInstance {
        hypergraph: b
            .build()
            .expect("generated hypergraph is structurally valid"),
        cluster_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_structure_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = ClusteredParams::default();
        let inst = clustered_hypergraph(p, &mut rng);
        let h = &inst.hypergraph;
        assert_eq!(h.num_nodes(), 64);
        assert_eq!(h.num_nets(), p.intra_nets + p.inter_nets);
        validate::assert_valid(h);

        // Count how many nets actually span more than one planted cluster.
        let spanning = h
            .nets()
            .filter(|&e| {
                let pins = h.net_pins(e);
                let c0 = inst.cluster_of[pins[0].index()];
                pins.iter().any(|v| inst.cluster_of[v.index()] != c0)
            })
            .count();
        assert_eq!(spanning, p.inter_nets);
    }

    #[test]
    fn single_cluster_degenerates_gracefully() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ClusteredParams {
            clusters: 1,
            inter_nets: 4,
            ..ClusteredParams::default()
        };
        let inst = clustered_hypergraph(p, &mut rng);
        assert_eq!(inst.hypergraph.num_nodes(), 16);
        validate::assert_valid(&inst.hypergraph);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let p = ClusteredParams::default();
        let a = clustered_hypergraph(p, &mut StdRng::seed_from_u64(5)).hypergraph;
        let b = clustered_hypergraph(p, &mut StdRng::seed_from_u64(5)).hypergraph;
        assert_eq!(a, b);
    }
}
