//! Scratch-reusing, allocation-light contraction for the multilevel down
//! pass.
//!
//! [`Hypergraph::contract`] is correct but rebuilds every level through
//! [`HypergraphBuilder`](crate::HypergraphBuilder): one `Vec<NodeId>` per
//! coarse net, a `HashMap<Vec<NodeId>, f64>` that owns every key, and a
//! full builder re-pack. At V-cycle scale (a million nodes, a dozen
//! levels) that allocation churn dominates the down pass. This module
//! contracts straight over the source CSR slabs into a fresh CSR, keeping
//! every intermediate buffer in a caller-owned [`ContractScratch`] so
//! repeated contractions (one per level) allocate almost nothing after the
//! first.
//!
//! The output is **bit-identical** to [`Hypergraph::contract`]: coarse
//! nets are the distinct coarse pin sets in lexicographic pin order,
//! identical pin sets merge with capacities summed in ascending fine
//! net-id order (so the floating-point sums associate identically), and
//! nets left with fewer than two distinct coarse pins are dropped. The
//! legacy method now delegates here; the equivalence is pinned by tests
//! against a naive reimplementation of the old algorithm.

use std::collections::HashMap;

use crate::hypergraph::Hypergraph;
use crate::{NetId, NodeId};

/// Sentinel in a net provenance map for fine nets that vanished during
/// contraction (fewer than two distinct coarse pins).
pub const DROPPED_NET: u32 = u32::MAX;

/// Counters from one contraction, for coarsening telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContractStats {
    /// Nets in the coarse hypergraph (distinct multi-pin coarse pin sets).
    pub coarse_nets: usize,
    /// Fine nets that merged into another net with the identical coarse
    /// pin set (their capacity was summed into the survivor).
    pub merged_nets: usize,
    /// Fine nets dropped for having fewer than two distinct coarse pins.
    pub dropped_nets: usize,
}

/// Reusable working memory for [`contract_with`].
///
/// Holds the mapped-pin buffer, the distinct-pin-set group table, the
/// hash buckets, and the CSR assembly counters. Create once, pass to
/// every contraction in a loop; buffers grow to the high-water mark and
/// stay there.
#[derive(Debug, Default)]
pub struct ContractScratch {
    /// Current net's pins mapped to coarse ids, sorted and deduped.
    pin_buf: Vec<NodeId>,
    /// Flat storage of distinct coarse pin sets, first-occurrence order.
    group_pins: Vec<NodeId>,
    /// `group_pins[group_off[g]..group_off[g+1]]` is group `g`'s pin set.
    group_off: Vec<u32>,
    /// Accumulated capacity per group (summed in fine net-id order).
    group_cap: Vec<f64>,
    /// FNV-1a bucket table: hash → candidate group ids (collision-safe:
    /// membership is decided by slice comparison, never by hash alone).
    buckets: HashMap<u64, Vec<u32>>,
    /// Group ids sorted lexicographically by pin set.
    order: Vec<u32>,
    /// Output position of each group under `order`.
    rank_of_group: Vec<u32>,
    /// Per-coarse-node degree counter for the node→net CSR.
    degree: Vec<u32>,
}

impl ContractScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self) {
        self.pin_buf.clear();
        self.group_pins.clear();
        self.group_off.clear();
        self.group_cap.clear();
        self.buckets.clear();
        self.order.clear();
        self.rank_of_group.clear();
        self.degree.clear();
    }

    fn group(&self, g: u32) -> &[NodeId] {
        &self.group_pins
            [self.group_off[g as usize] as usize..self.group_off[g as usize + 1] as usize]
    }
}

#[inline]
fn fnv1a_pins(pins: &[NodeId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &p in pins {
        for b in p.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Contracts `h` by the dense fine→coarse map `cluster_of`, reusing
/// `scratch` across calls. Returns the coarse hypergraph and the
/// contraction counters. Output is bit-identical to
/// [`Hypergraph::contract`] (which delegates here).
///
/// # Panics
///
/// Panics if `cluster_of` has the wrong length or its ids are not dense.
pub fn contract_with(
    h: &Hypergraph,
    cluster_of: &[usize],
    scratch: &mut ContractScratch,
) -> (Hypergraph, ContractStats) {
    let (coarse, _, stats) = contract_core(h, cluster_of, scratch, false);
    (coarse, stats)
}

/// Like [`contract_with`] but also returns the net provenance:
/// `net_map[e]` is the coarse net a fine net `e` merged into, or
/// [`DROPPED_NET`] if it vanished. Callers use this to carry per-net data
/// (e.g. spreading-metric lengths) across the contraction.
///
/// # Panics
///
/// Panics if `cluster_of` has the wrong length or its ids are not dense.
pub fn contract_tracked_with(
    h: &Hypergraph,
    cluster_of: &[usize],
    scratch: &mut ContractScratch,
) -> (Hypergraph, Vec<u32>, ContractStats) {
    let (coarse, map, stats) = contract_core(h, cluster_of, scratch, true);
    (coarse, map.unwrap_or_default(), stats)
}

/// Merges nets with identical pin sets (summing capacities) without
/// touching the node set: contraction by the identity map. The returned
/// `net_map` sends each original net to its merged representative.
///
/// Node ids are unchanged, so any partition of the deduped hypergraph is
/// a partition of the original — and has the same cost, since a cut pin
/// set pays its summed capacity either way. Net ids are *renumbered*
/// (lexicographic pin order), which is what the provenance map is for.
pub fn dedup_nets(h: &Hypergraph) -> (Hypergraph, Vec<u32>, ContractStats) {
    let identity: Vec<usize> = (0..h.num_nodes()).collect();
    contract_tracked_with(h, &identity, &mut ContractScratch::new())
}

fn contract_core(
    h: &Hypergraph,
    cluster_of: &[usize],
    scratch: &mut ContractScratch,
    track: bool,
) -> (Hypergraph, Option<Vec<u32>>, ContractStats) {
    assert_eq!(cluster_of.len(), h.num_nodes(), "one cluster id per node");
    let k = match cluster_of.iter().max() {
        Some(&m) => m + 1,
        None => 0,
    };
    let mut sizes = vec![0u64; k];
    for v in h.nodes() {
        sizes[cluster_of[v.index()]] += h.node_size(v);
    }
    assert!(
        sizes.iter().all(|&s| s > 0),
        "cluster ids must be dense (every id 0..k used)"
    );

    scratch.reset();
    scratch.group_off.push(0);
    let mut net_map = track.then(|| vec![DROPPED_NET; h.num_nets()]);
    let mut stats = ContractStats::default();

    // Group nets by coarse pin set, accumulating capacities in fine
    // net-id order so the f64 sums match the legacy HashMap entry order.
    for e in h.nets() {
        scratch.pin_buf.clear();
        scratch.pin_buf.extend(
            h.net_pins(e)
                .iter()
                .map(|&v| NodeId::new(cluster_of[v.index()])),
        );
        scratch.pin_buf.sort_unstable();
        scratch.pin_buf.dedup();
        if scratch.pin_buf.len() < 2 {
            stats.dropped_nets += 1;
            continue;
        }
        let hash = fnv1a_pins(&scratch.pin_buf);
        let mut found = None;
        if let Some(candidates) = scratch.buckets.get(&hash) {
            for &g in candidates {
                if scratch.group(g) == scratch.pin_buf.as_slice() {
                    found = Some(g);
                    break;
                }
            }
        }
        let g = match found {
            Some(g) => {
                scratch.group_cap[g as usize] += h.net_capacity(e);
                stats.merged_nets += 1;
                g
            }
            None => {
                let g = scratch.group_cap.len() as u32;
                scratch.group_pins.extend_from_slice(&scratch.pin_buf);
                scratch.group_off.push(scratch.group_pins.len() as u32);
                scratch.group_cap.push(h.net_capacity(e));
                scratch.buckets.entry(hash).or_default().push(g);
                g
            }
        };
        if let Some(map) = net_map.as_deref_mut() {
            map[e.index()] = g;
        }
    }

    let groups = scratch.group_cap.len();
    stats.coarse_nets = groups;

    // Deterministic net order: lexicographic by coarse pin set, exactly
    // the legacy sort. Keys are distinct, so the order is total.
    scratch.order.extend(0..groups as u32);
    let (group_pins, group_off) = (&scratch.group_pins, &scratch.group_off);
    scratch.order.sort_unstable_by(|&a, &b| {
        let pa = &group_pins[group_off[a as usize] as usize..group_off[a as usize + 1] as usize];
        let pb = &group_pins[group_off[b as usize] as usize..group_off[b as usize + 1] as usize];
        pa.cmp(pb)
    });
    scratch.rank_of_group.resize(groups, 0);
    for (rank, &g) in scratch.order.iter().enumerate() {
        scratch.rank_of_group[g as usize] = rank as u32;
    }
    if let Some(map) = net_map.as_deref_mut() {
        for slot in map.iter_mut() {
            if *slot != DROPPED_NET {
                *slot = scratch.rank_of_group[*slot as usize];
            }
        }
    }

    // Emit the coarse CSR directly, mirroring HypergraphBuilder::build:
    // pins in net order, node→net lists filled by ascending net id.
    let total_pins: usize = scratch.group_pins.len();
    let mut net_off = Vec::with_capacity(groups + 1);
    let mut pins = Vec::with_capacity(total_pins);
    let mut net_capacity = Vec::with_capacity(groups);
    net_off.push(0u32);
    for &g in &scratch.order {
        let cap = scratch.group_cap[g as usize];
        debug_assert!(
            cap.is_finite() && cap > 0.0,
            "coarse net capacity must stay finite and positive"
        );
        net_capacity.push(cap);
        pins.extend_from_slice(scratch.group(g));
        net_off.push(pins.len() as u32);
    }

    scratch.degree.resize(k, 0);
    scratch.degree[..k].fill(0);
    for &v in &pins {
        scratch.degree[v.index()] += 1;
    }
    let mut node_off = Vec::with_capacity(k + 1);
    node_off.push(0u32);
    for v in 0..k {
        node_off.push(node_off[v] + scratch.degree[v]);
    }
    let mut cursor: Vec<u32> = node_off[..k].to_vec();
    let mut node_nets = vec![NetId(0); pins.len()];
    for e in 0..groups {
        for &v in &pins[net_off[e] as usize..net_off[e + 1] as usize] {
            node_nets[cursor[v.index()] as usize] = NetId::new(e);
            cursor[v.index()] += 1;
        }
    }

    let coarse = Hypergraph {
        node_size: sizes,
        net_capacity,
        net_off,
        pins,
        node_off,
        node_nets,
    };
    (coarse, net_map, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use crate::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// The legacy algorithm, verbatim, as the equivalence oracle.
    fn contract_naive(h: &Hypergraph, cluster_of: &[usize]) -> Hypergraph {
        let k = cluster_of.iter().max().map_or(0, |&m| m + 1);
        let mut sizes = vec![0u64; k];
        for v in h.nodes() {
            sizes[cluster_of[v.index()]] += h.node_size(v);
        }
        let mut b = HypergraphBuilder::new();
        for &s in &sizes {
            b.add_node(s);
        }
        let mut merged: HashMap<Vec<NodeId>, f64> = HashMap::new();
        for e in h.nets() {
            let mut pins: Vec<NodeId> = h
                .net_pins(e)
                .iter()
                .map(|&v| NodeId::new(cluster_of[v.index()]))
                .collect();
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 {
                *merged.entry(pins).or_insert(0.0) += h.net_capacity(e);
            }
        }
        let mut entries: Vec<(Vec<NodeId>, f64)> = merged.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (pins, capacity) in entries {
            b.add_net(capacity, pins).unwrap();
        }
        b.build().unwrap()
    }

    fn random_dense_clustering(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
        // Every id 0..k used at least once, rest random.
        let mut cluster_of: Vec<usize> = (0..n).map(|_| rng.random_range(0..k)).collect();
        for c in 0..k {
            let slot = c * n / k;
            cluster_of[slot] = c;
        }
        cluster_of
    }

    #[test]
    fn matches_the_legacy_contraction_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(42);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let mut scratch = ContractScratch::new();
        for k in [2, 7, h.num_nodes() / 3, h.num_nodes()] {
            let cluster_of = random_dense_clustering(h.num_nodes(), k, &mut rng);
            let (fast, _) = contract_with(h, &cluster_of, &mut scratch);
            let naive = contract_naive(h, &cluster_of);
            assert_eq!(fast, naive, "k={k}");
        }
    }

    #[test]
    fn scratch_reuse_across_graphs_is_clean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = ContractScratch::new();
        for seed in 0..4u64 {
            let mut g = StdRng::seed_from_u64(seed);
            let inst = clustered_hypergraph(
                ClusteredParams {
                    clusters: 4,
                    cluster_size: 10,
                    ..ClusteredParams::default()
                },
                &mut g,
            );
            let h = &inst.hypergraph;
            let cluster_of = random_dense_clustering(h.num_nodes(), 5, &mut rng);
            let (reused, _) = contract_with(h, &cluster_of, &mut scratch);
            let (fresh, _) = contract_with(h, &cluster_of, &mut ContractScratch::new());
            assert_eq!(reused, fresh, "seed={seed}");
        }
    }

    #[test]
    fn stats_count_merges_and_drops() {
        // 4 nodes on a path; contract {0,1} and {2,3}: two internal nets
        // drop, two parallel coarse nets merge into one survivor.
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(2.0, [NodeId(1), NodeId(2)]).unwrap();
        b.add_net(3.0, [NodeId(0), NodeId(3)]).unwrap();
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        let h = b.build().unwrap();
        let (coarse, stats) = contract_with(&h, &[0, 0, 1, 1], &mut ContractScratch::new());
        assert_eq!(coarse.num_nets(), 1);
        assert_eq!(
            stats,
            ContractStats {
                coarse_nets: 1,
                merged_nets: 1,
                dropped_nets: 2,
            }
        );
        assert!((coarse.net_capacity(NetId(0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tracked_map_points_every_net_at_its_survivor() {
        let mut b = HypergraphBuilder::with_unit_nodes(6);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap(); // internal to cluster 0
        b.add_net(2.0, [NodeId(0), NodeId(2)]).unwrap(); // 0-1 bridge
        b.add_net(4.0, [NodeId(1), NodeId(3)]).unwrap(); // 0-1 bridge (merges)
        b.add_net(8.0, [NodeId(4), NodeId(5), NodeId(0)]).unwrap(); // 0-2 bridge
        let h = b.build().unwrap();
        let (coarse, net_map, stats) =
            contract_tracked_with(&h, &[0, 0, 1, 1, 2, 2], &mut ContractScratch::new());
        assert_eq!(stats.dropped_nets, 1);
        assert_eq!(net_map[0], DROPPED_NET);
        // Nets 1 and 2 share coarse pins {0,1}; net 3 becomes {0,2}.
        assert_eq!(net_map[1], net_map[2]);
        assert_ne!(net_map[1], net_map[3]);
        let survivor = NetId(net_map[1]);
        assert!((coarse.net_capacity(survivor) - 6.0).abs() < 1e-12);
        for (e, &m) in net_map.iter().enumerate() {
            if m != DROPPED_NET {
                // Every mapped net's coarse pin set is its image's pins.
                let mut want: Vec<NodeId> = h
                    .net_pins(NetId::new(e))
                    .iter()
                    .map(|&v| NodeId::new([0, 0, 1, 1, 2, 2][v.index()]))
                    .collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(coarse.net_pins(NetId(m)), want.as_slice());
            }
        }
    }

    #[test]
    fn dedup_merges_parallel_nets_and_keeps_nodes() {
        let mut b = HypergraphBuilder::new();
        for i in 0..4 {
            b.add_node(i + 1);
        }
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(2.5, [NodeId(0), NodeId(1)]).unwrap(); // duplicate pin set
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        b.add_net(0.5, [NodeId(1), NodeId(0)]).unwrap(); // same set, reordered
        let h = b.build().unwrap();
        let (deduped, net_map, stats) = dedup_nets(&h);
        assert_eq!(deduped.num_nodes(), 4);
        for v in h.nodes() {
            assert_eq!(deduped.node_size(v), h.node_size(v));
        }
        assert_eq!(deduped.num_nets(), 2);
        assert_eq!(stats.merged_nets, 2);
        assert_eq!(stats.dropped_nets, 0);
        assert_eq!(net_map[0], net_map[1]);
        assert_eq!(net_map[0], net_map[3]);
        let merged = NetId(net_map[0]);
        assert!((deduped.net_capacity(merged) - 4.0).abs() < 1e-12);
        // Total capacity is conserved by dedup.
        assert!((deduped.total_capacity() - h.total_capacity()).abs() < 1e-12);
    }

    #[test]
    fn dedup_of_a_duplicate_free_graph_is_a_renumbering() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let (deduped, net_map, stats) = dedup_nets(h);
        assert_eq!(stats.dropped_nets, 0);
        assert_eq!(
            deduped.num_nets() + stats.merged_nets,
            h.num_nets(),
            "every net is either a survivor or merged"
        );
        for e in h.nets() {
            let m = net_map[e.index()];
            assert_ne!(m, DROPPED_NET);
            assert_eq!(deduped.net_pins(NetId(m)), h.net_pins(e));
        }
    }

    #[test]
    fn empty_graph_contracts_to_empty() {
        let h = HypergraphBuilder::new().build().unwrap();
        let (coarse, stats) = contract_with(&h, &[], &mut ContractScratch::new());
        assert_eq!(coarse.num_nodes(), 0);
        assert_eq!(coarse.num_nets(), 0);
        assert_eq!(stats, ContractStats::default());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_sparse_cluster_ids() {
        let h = HypergraphBuilder::with_unit_nodes(3).build().unwrap();
        let _ = contract_with(&h, &[0, 2, 2], &mut ContractScratch::new());
    }
}
