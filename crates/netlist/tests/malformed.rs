//! Malformed-input robustness: every reader must turn hostile bytes into a
//! typed [`NetlistError`], never a panic.
//!
//! The cases mirror the failure classes a user can hit with hand-edited or
//! truncated files: empty input, files cut off mid-record, indices past the
//! declared ranges, non-finite weights, and plain garbage.

use htp_netlist::io::{hgr, netl, verilog};
use htp_netlist::NetlistError;

fn parse_err(r: Result<impl Sized, NetlistError>) -> String {
    match r {
        Ok(_) => panic!("malformed input was accepted"),
        Err(e) => {
            assert!(
                matches!(e, NetlistError::Parse { .. }),
                "expected a parse error, got {e:?}"
            );
            e.to_string()
        }
    }
}

// --- .hgr -----------------------------------------------------------------

#[test]
fn hgr_empty_input_is_a_parse_error() {
    let msg = parse_err(hgr::from_str(""));
    assert!(msg.contains("missing header"), "{msg}");
}

#[test]
fn hgr_comments_only_is_a_parse_error() {
    let msg = parse_err(hgr::from_str("% nothing\n\n% here\n"));
    assert!(msg.contains("missing header"), "{msg}");
}

#[test]
fn hgr_truncated_net_section_is_a_parse_error() {
    // Header promises 3 nets, file ends after 1.
    let msg = parse_err(hgr::from_str("3 4\n1 2\n"));
    assert!(msg.contains("ended early"), "{msg}");
}

#[test]
fn hgr_truncated_node_weight_section_is_a_parse_error() {
    // fmt=10: node sizes required, but only one of three follows.
    let msg = parse_err(hgr::from_str("1 3 10\n1 2\n5\n"));
    assert!(msg.contains("ended early"), "{msg}");
}

#[test]
fn hgr_oversized_pin_index_is_a_parse_error() {
    let msg = parse_err(hgr::from_str("1 3\n1 4\n"));
    assert!(msg.contains("out of range"), "{msg}");
}

#[test]
fn hgr_zero_pin_index_is_a_parse_error() {
    // Pins are 1-indexed; 0 must be rejected, not wrap to node u32::MAX.
    let msg = parse_err(hgr::from_str("1 3\n0 2\n"));
    assert!(msg.contains("out of range"), "{msg}");
}

#[test]
fn hgr_header_counts_beyond_u32_are_a_parse_error() {
    // 2^32 nodes cannot be addressed by 32-bit ids; also guards the
    // allocator against absurd claims from a ten-byte file.
    let msg = parse_err(hgr::from_str("1 4294967296\n1 2\n"));
    assert!(msg.contains("32-bit"), "{msg}");
    let msg = parse_err(hgr::from_str("4294967296 2\n1 2\n"));
    assert!(msg.contains("32-bit"), "{msg}");
}

#[test]
fn hgr_net_count_beyond_file_length_is_a_parse_error() {
    // A huge (but representable) net count must fail fast on the line
    // budget instead of pre-allocating gigabytes.
    let msg = parse_err(hgr::from_str("1000000000 2\n1 2\n"));
    assert!(msg.contains("ended early"), "{msg}");
}

#[test]
fn hgr_nan_net_capacity_is_rejected() {
    // `NaN` parses as an f64, so the structural builder must catch it.
    let msg = parse_err(hgr::from_str("1 2 1\nNaN 1 2\n"));
    assert!(
        msg.to_lowercase().contains("nan") || msg.contains("capacity"),
        "{msg}"
    );
}

#[test]
fn hgr_negative_and_zero_capacities_are_rejected() {
    parse_err(hgr::from_str("1 2 1\n-1.5 1 2\n"));
    parse_err(hgr::from_str("1 2 1\n0 1 2\n"));
}

#[test]
fn hgr_garbage_tokens_are_a_parse_error() {
    let msg = parse_err(hgr::from_str("1 2\n1 two\n"));
    assert!(msg.contains("cannot parse"), "{msg}");
    parse_err(hgr::from_str("\u{1F4A3} boom\n"));
}

// --- .netl ----------------------------------------------------------------

#[test]
fn netl_empty_input_builds_an_empty_netlist() {
    // Unlike .hgr there is no mandatory header; empty means zero records.
    let nl = netl::from_str("").expect("empty netl is a valid empty netlist");
    assert_eq!(nl.hypergraph.num_nodes(), 0);
    assert_eq!(nl.hypergraph.num_nets(), 0);
}

#[test]
fn netl_truncated_records_are_a_parse_error() {
    let msg = parse_err(netl::from_str("node a\nnode b\nnet\n"));
    assert!(msg.contains("net needs a name"), "{msg}");
    let msg = parse_err(netl::from_str("node\n"));
    assert!(msg.contains("node needs a name"), "{msg}");
}

#[test]
fn netl_undeclared_pin_is_a_parse_error() {
    let msg = parse_err(netl::from_str("node a\nnet x a b999\n"));
    assert!(msg.contains("unknown node `b999`"), "{msg}");
}

#[test]
fn netl_nan_capacity_is_rejected() {
    let msg = parse_err(netl::from_str("node a\nnode b\nnet x cap=NaN a b\n"));
    assert!(
        msg.to_lowercase().contains("nan") || msg.contains("capacity"),
        "{msg}"
    );
}

#[test]
fn netl_bad_node_size_is_a_parse_error() {
    // Sizes are unsigned integers; floats and negatives must not panic.
    parse_err(netl::from_str("node a 3.5\n"));
    parse_err(netl::from_str("node a -2\n"));
}

#[test]
fn netl_garbage_record_kind_is_a_parse_error() {
    let msg = parse_err(netl::from_str("blob a b c\n"));
    assert!(msg.contains("unknown record kind"), "{msg}");
}

// --- structural verilog ---------------------------------------------------

#[test]
fn verilog_empty_input_is_a_parse_error() {
    let msg = parse_err(verilog::from_str(""));
    assert!(msg.contains("endmodule"), "{msg}");
}

#[test]
fn verilog_truncated_module_is_a_parse_error() {
    parse_err(verilog::from_str("module m (a, y);\ninput a;\n"));
}

#[test]
fn verilog_garbage_is_a_parse_error() {
    parse_err(verilog::from_str("]] not verilog at all [[ ;;; endmodule"));
}

#[test]
fn verilog_input_prefixed_gate_does_not_panic() {
    // `inputx` passes pass one as a gate type but also string-prefixes
    // `input`; the declaration collector must match whole keywords.
    let src = "module m (a, y);\ninput a;\noutput y;\nwire w;\ninputx g (w, a);\nbuf g2 (y, w);\nendmodule\n";
    match verilog::from_str(src) {
        Ok(m) => assert!(m.hypergraph.num_nodes() > 0),
        Err(e) => assert!(matches!(e, NetlistError::Parse { .. })),
    }
}
