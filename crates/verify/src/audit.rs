//! Spreading-metric audits: an independent Dijkstra and `g(x)`.
//!
//! Linear program (P1) requires, for every node `v` and every prefix of
//! the shortest-path order from `v`, that
//! `Σ_{u ∈ S(v,k)} dist(v,u)·s(u) >= g(s(S(v,k)))` where
//!
//! ```text
//! g(x) = 0                                  if x <= C_0
//! g(x) = 2 · Σ_{0 <= i <= l} (x − C_i)·w_i  if C_l < x <= C_{l+1}
//! ```
//!
//! and for any feasible metric, `Σ_e c(e)·d(e)` lower-bounds the cost of
//! every feasible partition (Lemma 2). [`audit_metric`] re-derives both
//! facts for a *claimed* metric using this module's own binary-heap
//! Dijkstra over the hypergraph (stepping between any two pins of a net
//! `e` costs `d(e)`) — none of `htp-core`'s `sptree`/`constraint` code is
//! involved.

use htp_model::TreeSpec;
use htp_netlist::{CsrHypergraph, Hypergraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap entry ordered by total distance.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

/// Reusable buffers for [`shortest_distances_into`], so an audit that
/// runs a Dijkstra per source allocates once instead of per call.
#[derive(Debug, Default)]
pub struct DistanceScratch {
    done: Vec<bool>,
    net_done: Vec<bool>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

/// Single-source shortest distances over the hypergraph under the net
/// lengths `d`, where moving between any two pins of net `e` costs
/// `d[e]`. Unreachable nodes get `f64::INFINITY`.
///
/// A lazy-deletion binary-heap Dijkstra; every net is relaxed once, from
/// its first settled pin (any later pin could only offer a longer path).
///
/// # Panics
///
/// Panics if `d.len()` differs from the net count or `source` is out of
/// range.
pub fn shortest_distances(h: &Hypergraph, d: &[f64], source: NodeId) -> Vec<f64> {
    let mut dist = Vec::new();
    shortest_distances_into(h, d, source, &mut DistanceScratch::default(), &mut dist);
    dist
}

/// [`shortest_distances`] writing into caller-owned buffers: `dist` is
/// resized and overwritten, `scratch` is cleared and refilled. Repeated
/// calls reuse every allocation (except the flat view, rebuilt per call —
/// audits that sweep many sources should build one [`CsrHypergraph`] and
/// call [`shortest_distances_csr`] directly).
///
/// # Panics
///
/// As [`shortest_distances`].
pub fn shortest_distances_into(
    h: &Hypergraph,
    d: &[f64],
    source: NodeId,
    scratch: &mut DistanceScratch,
    dist: &mut Vec<f64>,
) {
    assert_eq!(d.len(), h.num_nets(), "one length per net");
    let csr = CsrHypergraph::with_lengths(h, d);
    shortest_distances_csr(&csr, source.index() as u32, scratch, dist);
}

/// The Dijkstra core, over a flat [`CsrHypergraph`] whose `net_len` slab
/// holds the lengths: build the view once and sweep sources against it.
/// Settle order is identical to [`shortest_distances`] — the view
/// preserves the hypergraph's incidence order, and the arithmetic is the
/// same `f64` sum in the same order.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn shortest_distances_csr(
    csr: &CsrHypergraph,
    source: u32,
    scratch: &mut DistanceScratch,
    dist: &mut Vec<f64>,
) {
    assert!((source as usize) < csr.num_nodes(), "source out of range");
    dist.clear();
    dist.resize(csr.num_nodes(), f64::INFINITY);
    let DistanceScratch {
        done,
        net_done,
        heap,
    } = scratch;
    done.clear();
    done.resize(csr.num_nodes(), false);
    net_done.clear();
    net_done.resize(csr.num_nets(), false);
    heap.clear();
    dist[source as usize] = 0.0;
    heap.push(Reverse(HeapEntry {
        dist: 0.0,
        node: source as usize,
    }));
    while let Some(Reverse(HeapEntry { dist: dv, node: v })) = heap.pop() {
        if done[v] {
            continue;
        }
        done[v] = true;
        for &e in csr.node_nets(v as u32) {
            if net_done[e as usize] {
                continue;
            }
            net_done[e as usize] = true;
            let through = dv + csr.net_len(e);
            for &w in csr.net_pins(e) {
                if !done[w as usize] && through < dist[w as usize] {
                    dist[w as usize] = through;
                    heap.push(Reverse(HeapEntry {
                        dist: through,
                        node: w as usize,
                    }));
                }
            }
        }
    }
}

/// The spreading bound `g(x)` of (P1), implemented from the paper's
/// formula: zero up to the leaf capacity, then
/// `2·Σ_{0<=i<=l}(x − C_i)·w_i` for `C_l < x <= C_{l+1}` (the sum runs
/// over every level below the root for oversized `x`).
pub fn spreading_bound(spec: &TreeSpec, x: u64) -> f64 {
    let mut g = 0.0;
    for l in 0..spec.root_level() {
        if x > spec.capacity(l) {
            g += 2.0 * (x - spec.capacity(l)) as f64 * spec.weight(l);
        }
    }
    g
}

/// Outcome of auditing a claimed spreading metric.
#[derive(Clone, Debug)]
pub struct MetricAudit {
    /// `true` when every checked (P1) constraint holds within the
    /// tolerance.
    pub constraints_hold: bool,
    /// The largest shortfall `g(s(S)) − Σ dist·s(u)` observed (0 when
    /// feasible).
    pub worst_shortfall: f64,
    /// Source of the worst shortfall, if any.
    pub worst_source: Option<NodeId>,
    /// The metric's LP objective `Σ_e c(e)·d(e)`.
    pub objective: f64,
    /// How many source nodes were audited.
    pub sources_checked: usize,
}

impl MetricAudit {
    /// `true` when the metric's objective really lower-bounds
    /// `achieved_cost` (within `tolerance`) — only meaningful when
    /// [`constraints_hold`](MetricAudit::constraints_hold), since Lemma 2
    /// needs a feasible metric.
    pub fn bounds_cost(&self, achieved_cost: f64, tolerance: f64) -> bool {
        self.objective <= achieved_cost + tolerance
    }
}

/// Audits the claimed net lengths `d` against the (P1) constraints.
///
/// For every source in `sources` the full shortest-path order is grown
/// with [`shortest_distances`] and every reachable prefix is checked:
/// `Σ dist(v,u)·s(u) >= g(s(prefix)) − tolerance`. Pass `h.nodes()` for
/// an exhaustive audit or a seeded sample for a spot check.
pub fn audit_metric<I>(
    h: &Hypergraph,
    spec: &TreeSpec,
    d: &[f64],
    sources: I,
    tolerance: f64,
) -> MetricAudit
where
    I: IntoIterator<Item = NodeId>,
{
    assert_eq!(d.len(), h.num_nets(), "one length per net");
    let csr = CsrHypergraph::with_lengths(h, d);
    let mut worst_shortfall = 0.0f64;
    let mut worst_source = None;
    let mut sources_checked = 0;
    let mut scratch = DistanceScratch::default();
    let mut dist = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    for v in sources {
        sources_checked += 1;
        shortest_distances_csr(&csr, v.index() as u32, &mut scratch, &mut dist);
        // Prefixes of the distance order: sort reachable nodes by
        // distance (ties broken by index, matching the heap's order).
        order.clear();
        order.extend((0..h.num_nodes()).filter(|&u| dist[u].is_finite()));
        order.sort_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
        let mut size = 0u64;
        let mut lhs = 0.0f64;
        for &u in &order {
            let s = h.node_size(NodeId::new(u));
            size += s;
            lhs += dist[u] * s as f64;
            let shortfall = spreading_bound(spec, size) - lhs;
            if shortfall > worst_shortfall {
                worst_shortfall = shortfall;
                worst_source = Some(v);
            }
        }
    }
    let objective = h
        .nets()
        .map(|e| h.net_capacity(e) * d[e.index()])
        .sum::<f64>();
    MetricAudit {
        constraints_hold: worst_shortfall <= tolerance,
        worst_shortfall,
        worst_source,
        objective,
        sources_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_model::TreeSpec;
    use htp_netlist::{HypergraphBuilder, NodeId};

    fn path(lengths: &[f64]) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(lengths.len() + 1);
        for i in 0..lengths.len() as u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn distances_accumulate_along_a_path() {
        let h = path(&[1.0, 2.0, 0.5]);
        let d = shortest_distances(&h, &[1.0, 2.0, 0.5], NodeId(0));
        assert_eq!(d, vec![0.0, 1.0, 3.0, 3.5]);
    }

    #[test]
    fn multi_pin_nets_are_single_hops() {
        // One 4-pin net: every node is one hop (= its length) away.
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        let h = b.build().unwrap();
        let d = shortest_distances(&h, &[2.5], NodeId(1));
        assert_eq!(d, vec![2.5, 0.0, 2.5, 2.5]);
    }

    #[test]
    fn disconnected_nodes_stay_infinite() {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        let h = b.build().unwrap();
        let d = shortest_distances(&h, &[1.0, 1.0], NodeId(0));
        assert!(d[2].is_infinite() && d[3].is_infinite());
    }

    #[test]
    fn reused_buffers_match_fresh_allocations() {
        // One scratch across sources and even across graphs of different
        // shape must reproduce the allocating path exactly.
        let chain = path(&[1.0, 2.0, 0.5]);
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.5, [NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();
        let star = b.build().unwrap();
        let mut scratch = DistanceScratch::default();
        let mut dist = Vec::new();
        for _ in 0..2 {
            for s in 0..4 {
                shortest_distances_into(
                    &chain,
                    &[1.0, 2.0, 0.5],
                    NodeId::new(s),
                    &mut scratch,
                    &mut dist,
                );
                assert_eq!(
                    dist,
                    shortest_distances(&chain, &[1.0, 2.0, 0.5], NodeId::new(s))
                );
                shortest_distances_into(&star, &[1.5], NodeId::new(s), &mut scratch, &mut dist);
                assert_eq!(dist, shortest_distances(&star, &[1.5], NodeId::new(s)));
            }
        }
    }

    #[test]
    fn a_shared_view_matches_the_per_call_wrappers() {
        // One CsrHypergraph swept over every source must reproduce the
        // allocating wrapper bit for bit (same settle order, same sums).
        let h = path(&[1.0, 2.0, 0.5]);
        let d = [1.0, 2.0, 0.5];
        let csr = CsrHypergraph::with_lengths(&h, &d);
        let mut scratch = DistanceScratch::default();
        let mut dist = Vec::new();
        for s in 0..h.num_nodes() {
            shortest_distances_csr(&csr, s as u32, &mut scratch, &mut dist);
            assert_eq!(dist, shortest_distances(&h, &d, NodeId::new(s)));
        }
    }

    #[test]
    fn spreading_bound_matches_the_paper_shape() {
        // Figure 2: C_0 = 4 (w 1), C_1 = 8 (w 2), root at 2.
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 2.0), (16, 2, 1.0)]).unwrap();
        assert_eq!(spreading_bound(&spec, 4), 0.0);
        assert_eq!(spreading_bound(&spec, 5), 2.0); // 2(5-4)·1
        assert_eq!(spreading_bound(&spec, 8), 8.0); // 2(8-4)·1
        assert_eq!(spreading_bound(&spec, 10), 20.0); // 2(10-4)·1 + 2(10-8)·2
    }

    #[test]
    fn zero_metric_fails_the_audit_on_an_overflowing_instance() {
        // 4 unit nodes, C_0 = 2: the all-zero metric cannot spread
        // anything, so some prefix must fall short of g.
        let h = path(&[1.0, 1.0, 1.0]);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let audit = audit_metric(&h, &spec, &[0.0, 0.0, 0.0], h.nodes(), 1e-9);
        assert!(!audit.constraints_hold);
        assert!(audit.worst_shortfall > 0.0);
        assert_eq!(audit.objective, 0.0);
    }

    #[test]
    fn a_generous_metric_passes_the_audit() {
        // Unit lengths on a 4-path with C_0 = 2, w_0 = 1: the worst
        // prefix is the full set from an end, lhs = 0+1+2+3 = 6 >=
        // g(4) = 2(4-2) = 4; from the middle lhs = 0+1+1+2 = 4 >= 4.
        let h = path(&[1.0, 1.0, 1.0]);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let audit = audit_metric(&h, &spec, &[1.0, 1.0, 1.0], h.nodes(), 1e-9);
        assert!(
            audit.constraints_hold,
            "shortfall {}",
            audit.worst_shortfall
        );
        assert_eq!(audit.objective, 3.0);
        assert_eq!(audit.sources_checked, 4);
        assert!(audit.bounds_cost(4.0, 1e-9));
        assert!(!audit.bounds_cost(2.0, 1e-9));
    }
}
