//! Seeded adversarial instance families for conformance testing.
//!
//! Each generator builds a `(Hypergraph, TreeSpec)` pair from a seed
//! alone, so a family name plus a seed pins down an instance exactly —
//! that is what lets the differential harness snapshot golden digests.
//! The families deliberately stress different parts of the pipeline:
//!
//! * [`rent_like`] — recursive-bisection circuits with Rent-style
//!   locality (the "realistic" family),
//! * [`geometric`] — mesh neighbourhoods plus a few long-range nets,
//! * [`star`] — high-fanout hub nets (span counting on big nets),
//! * [`clique`] — dense intra-group 2-pin cliques (FM-friendly, flow
//!   injection heavy),
//! * [`chain`] — the deterministic path pathology (deep recursion in
//!   top-down splitters),
//! * [`zero_weight`] — a hierarchy level with `w_l = 0` (cost ties),
//! * [`duplicate_nets`] — every net repeated verbatim (span counters
//!   must price each copy).
//!
//! These generators are written against `HypergraphBuilder` directly and
//! share no code with `htp_netlist::gen`.

use htp_model::TreeSpec;
use htp_netlist::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One generated instance: a family name, the seed that produced it, and
/// the problem pair.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The family this instance belongs to.
    pub family: &'static str,
    /// The seed it was generated from.
    pub seed: u64,
    /// The netlist.
    pub hypergraph: Hypergraph,
    /// The hierarchy specification.
    pub spec: TreeSpec,
}

/// The default experiment hierarchy for a generated netlist: a full
/// binary tree of height 3 with 25% capacity slack and unit weights.
fn default_spec(h: &Hypergraph) -> TreeSpec {
    TreeSpec::full_tree(h.total_size(), 3, 2, 1.25, 1.0).expect("generated spec is valid")
}

/// Chains `lo..hi` with unit 2-pin nets (local connectivity for the
/// recursive generators).
fn chain_range(b: &mut HypergraphBuilder, lo: usize, hi: usize) {
    for i in lo..hi.saturating_sub(1) {
        b.add_net(1.0, [NodeId::new(i), NodeId::new(i + 1)])
            .expect("chain pins are in range");
    }
}

/// Rent-style recursive bisection: split the index range in half, add
/// `~n^0.6` nets crossing the split, recurse. Mirrors how Rent's rule
/// emerges from hierarchical layouts without reusing the repo's own
/// `rent_circuit` generator.
pub fn rent_like(nodes: usize, seed: u64) -> Instance {
    assert!(nodes >= 4, "rent_like needs at least 4 nodes");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5245_4e54); // "RENT"
    let mut b = HypergraphBuilder::with_unit_nodes(nodes);
    let mut stack = vec![(0usize, nodes)];
    while let Some((lo, hi)) = stack.pop() {
        let n = hi - lo;
        if n <= 3 {
            chain_range(&mut b, lo, hi);
            continue;
        }
        let mid = lo + n / 2;
        let crossings = (n as f64).powf(0.6).ceil() as usize;
        for _ in 0..crossings {
            let left = NodeId::new(rng.random_range(lo..mid));
            let right = NodeId::new(rng.random_range(mid..hi));
            let mut pins = vec![left, right];
            // Every fourth crossing becomes a 3-pin net.
            if rng.random_range(0..4usize) == 0 {
                pins.push(NodeId::new(rng.random_range(lo..hi)));
            }
            b.add_net_lenient(1.0, pins)
                .expect("crossing pins are in range");
        }
        stack.push((lo, mid));
        stack.push((mid, hi));
    }
    let hypergraph = b.build().expect("rent-like instances are well-formed");
    let spec = default_spec(&hypergraph);
    Instance {
        family: "rent-like",
        seed,
        hypergraph,
        spec,
    }
}

/// A `side × side` mesh with right/down neighbour nets plus a sprinkle
/// of seeded long-range 3-pin nets.
pub fn geometric(side: usize, seed: u64) -> Instance {
    assert!(side >= 2, "geometric needs at least a 2x2 mesh");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4745_4f4d); // "GEOM"
    let n = side * side;
    let mut b = HypergraphBuilder::with_unit_nodes(n);
    let at = |r: usize, c: usize| NodeId::new(r * side + c);
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                b.add_net(1.0, [at(r, c), at(r, c + 1)])
                    .expect("mesh pins are in range");
            }
            if r + 1 < side {
                b.add_net(1.0, [at(r, c), at(r + 1, c)])
                    .expect("mesh pins are in range");
            }
        }
    }
    for _ in 0..side {
        let pins = [
            NodeId::new(rng.random_range(0..n)),
            NodeId::new(rng.random_range(0..n)),
            NodeId::new(rng.random_range(0..n)),
        ];
        b.add_net_lenient(0.5, pins)
            .expect("long-range pins are in range");
    }
    let hypergraph = b.build().expect("mesh instances are well-formed");
    let spec = default_spec(&hypergraph);
    Instance {
        family: "geometric",
        seed,
        hypergraph,
        spec,
    }
}

/// Hub-and-spoke: a handful of hubs, each broadcasting one high-fanout
/// net to a random subset of the leaves; leaves carry mixed sizes 1–3.
pub fn star(nodes: usize, seed: u64) -> Instance {
    assert!(nodes >= 8, "star needs at least 8 nodes");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5354_4152); // "STAR"
    let hubs = (nodes / 16).max(2);
    let mut b = HypergraphBuilder::new();
    for i in 0..nodes {
        // Hubs are unit-size; leaves vary to stress capacity checks.
        let size = if i < hubs {
            1
        } else {
            1 + rng.random_range(0..3u64)
        };
        b.add_node(size);
    }
    // A weak chain keeps everything connected regardless of sampling.
    chain_range(&mut b, 0, nodes);
    for hub in 0..hubs {
        let fanout = nodes / 4;
        let mut pins = vec![NodeId::new(hub)];
        for _ in 0..fanout {
            pins.push(NodeId::new(rng.random_range(hubs..nodes)));
        }
        b.add_net_lenient(2.0, pins)
            .expect("hub spoke pins are in range");
    }
    let hypergraph = b.build().expect("star instances are well-formed");
    let spec = default_spec(&hypergraph);
    Instance {
        family: "star",
        seed,
        hypergraph,
        spec,
    }
}

/// Dense groups: all-pairs 2-pin nets inside each group, one bridging
/// net between consecutive groups. The intended partition is obvious,
/// which makes cost regressions stand out starkly.
pub fn clique(groups: usize, group_size: usize, seed: u64) -> Instance {
    assert!(
        groups >= 2 && group_size >= 2,
        "clique needs at least 2 groups of 2"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434c_4951); // "CLIQ"
    let n = groups * group_size;
    let mut b = HypergraphBuilder::with_unit_nodes(n);
    for g in 0..groups {
        let base = g * group_size;
        for i in 0..group_size {
            for j in (i + 1)..group_size {
                b.add_net(1.0, [NodeId::new(base + i), NodeId::new(base + j)])
                    .expect("clique pins are in range");
            }
        }
    }
    for g in 0..groups - 1 {
        let a = g * group_size + rng.random_range(0..group_size);
        let c = (g + 1) * group_size + rng.random_range(0..group_size);
        b.add_net(0.25, [NodeId::new(a), NodeId::new(c)])
            .expect("bridge pins are in range");
    }
    let hypergraph = b.build().expect("clique instances are well-formed");
    let spec = default_spec(&hypergraph);
    Instance {
        family: "clique",
        seed,
        hypergraph,
        spec,
    }
}

/// The deterministic path: `n` unit nodes, `n − 1` unit nets. The `seed`
/// is recorded but unused — the family has a single member per size.
pub fn chain(nodes: usize, seed: u64) -> Instance {
    assert!(nodes >= 4, "chain needs at least 4 nodes");
    let mut b = HypergraphBuilder::with_unit_nodes(nodes);
    chain_range(&mut b, 0, nodes);
    let hypergraph = b.build().expect("chain instances are well-formed");
    let spec = default_spec(&hypergraph);
    Instance {
        family: "chain",
        seed,
        hypergraph,
        spec,
    }
}

/// A rent-like netlist under a spec whose *middle* level has weight
/// zero: cuts at that level are free, so cost ties abound and any code
/// that conflates "span > 1" with "costs something" shows up.
pub fn zero_weight(nodes: usize, seed: u64) -> Instance {
    let base = rent_like(nodes, seed ^ 0x5a45_524f); // "ZERO"
    let h = base.hypergraph;
    let total = h.total_size();
    let cap = |l: usize| {
        ((1.25 * total as f64) / (1 << (3 - l)) as f64)
            .ceil()
            .max(1.0) as u64
    };
    let spec = TreeSpec::new(vec![
        (cap(0), 2, 1.0),
        (cap(1), 2, 0.0),
        (cap(2), 2, 1.0),
        (cap(3), 2, 1.0),
    ])
    .expect("zero-weight spec is valid");
    Instance {
        family: "zero-weight",
        seed,
        hypergraph: h,
        spec,
    }
}

/// A chain in which every net appears three times verbatim: duplicate
/// nets are legal inputs, and a correct span counter must price every
/// copy separately.
pub fn duplicate_nets(nodes: usize, seed: u64) -> Instance {
    assert!(nodes >= 4, "duplicate_nets needs at least 4 nodes");
    let mut b = HypergraphBuilder::with_unit_nodes(nodes);
    for _ in 0..3 {
        chain_range(&mut b, 0, nodes);
    }
    let hypergraph = b.build().expect("duplicate-net instances are well-formed");
    let spec = default_spec(&hypergraph);
    Instance {
        family: "duplicate-nets",
        seed,
        hypergraph,
        spec,
    }
}

/// The registry the conformance harness and the differential binary
/// iterate: one modest instance per family, all derived from `seed`.
pub fn all_families(seed: u64) -> Vec<Instance> {
    vec![
        rent_like(64, seed),
        geometric(8, seed),
        star(64, seed),
        clique(8, 8, seed),
        chain(48, seed),
        zero_weight(64, seed),
        duplicate_nets(48, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_families_cover_the_advertised_names() {
        let names: Vec<&str> = all_families(7).iter().map(|i| i.family).collect();
        assert_eq!(
            names,
            vec![
                "rent-like",
                "geometric",
                "star",
                "clique",
                "chain",
                "zero-weight",
                "duplicate-nets"
            ]
        );
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for (a, b) in all_families(11).into_iter().zip(all_families(11)) {
            assert_eq!(a.hypergraph.num_nodes(), b.hypergraph.num_nodes());
            assert_eq!(a.hypergraph.num_nets(), b.hypergraph.num_nets());
            assert_eq!(a.hypergraph.num_pins(), b.hypergraph.num_pins());
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn specs_admit_the_instance() {
        for inst in all_families(3) {
            let root = inst.spec.root_level();
            assert!(
                inst.hypergraph.total_size() <= inst.spec.capacity(root),
                "{}: total size exceeds the root capacity",
                inst.family
            );
        }
    }

    #[test]
    fn duplicate_nets_really_repeats_every_net() {
        let inst = duplicate_nets(8, 0);
        assert_eq!(inst.hypergraph.num_nets(), 3 * 7);
    }

    proptest! {
        // Bounded fuzz-smoke: every family builds a structurally sound
        // netlist for arbitrary seeds and a range of sizes.
        #[test]
        fn families_build_well_formed_instances(seed in 0u64..1000, scale in 0usize..3) {
            let sizes = [16, 36, 64];
            let n = sizes[scale];
            let side = [4, 6, 8][scale];
            for inst in [
                rent_like(n, seed),
                geometric(side, seed),
                star(n.max(8), seed),
                clique(4, n / 4, seed),
                chain(n, seed),
                zero_weight(n, seed),
                duplicate_nets(n, seed),
            ] {
                let h = &inst.hypergraph;
                prop_assert!(h.num_nodes() > 0);
                for e in h.nets() {
                    prop_assert!(h.net_pins(e).len() >= 2, "{}: degenerate net", inst.family);
                    prop_assert!(h.net_capacity(e) > 0.0);
                }
                for v in h.nodes() {
                    prop_assert!(h.node_size(v) >= 1);
                }
                prop_assert!(inst.spec.num_levels() >= 2);
            }
        }
    }
}
