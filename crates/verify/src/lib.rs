//! Independent verification oracles for hierarchical tree partitioning.
//!
//! Every correctness claim the FLOW pipeline makes — "this partition is
//! feasible", "its cost is `Σ_l w_l·span(e,l)·c(e)`", "this metric
//! satisfies the spreading constraints", "`Σ c(e)·d(e)` lower-bounds the
//! achieved cost" — is normally asserted by the same `htp-core`/`htp-model`
//! code that produced the result, so a shared bug would be invisible. This
//! crate re-derives those claims from scratch:
//!
//! * [`certificate`] — [`certify`] re-checks leaf
//!   capacities `C_l`, fanout bounds `K_l`, and assignment totality, and
//!   recomputes the HTP cost from the raw netlist with its own span
//!   counter (per-pin ancestor walks, no
//!   [`block_matrix`](htp_model::HierarchicalPartition::block_matrix)),
//!   returning typed [`Violation`]s.
//! * [`audit`] — its own binary-heap hypergraph Dijkstra and its own
//!   spreading bound `g(x)`, used to spot-check the (P1) constraints
//!   `Σ dist(v,u)·s(u) >= g(s(S(v,k)))` of a claimed metric and to
//!   cross-check the `Σ c(e)·d(e)` lower bound against an achieved cost.
//! * [`gen`] — seeded instance-family generators (rent-like, geometric,
//!   star/clique/chain pathologies, zero-weight and duplicate-net edge
//!   cases) feeding the differential conformance harness.
//! * [`assignment`] — a strict parser for `<node> <leaf>` assignment
//!   files with typed errors for truncated, out-of-range, and duplicate
//!   entries (the `htp verify` CLI input format).
//!
//! The only `htp` imports here are the problem *types* ([`Hypergraph`],
//! [`TreeSpec`], [`HierarchicalPartition`]) and their pure accessors —
//! no computation code is shared with the system under test.
//!
//! [`Hypergraph`]: htp_netlist::Hypergraph
//! [`TreeSpec`]: htp_model::TreeSpec
//! [`HierarchicalPartition`]: htp_model::HierarchicalPartition

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod assignment;
pub mod audit;
pub mod certificate;
pub mod gen;

pub use assignment::{parse_assignment, AssignmentError};
pub use audit::{
    audit_metric, shortest_distances, shortest_distances_csr, shortest_distances_into,
    spreading_bound, DistanceScratch, MetricAudit,
};
pub use certificate::{certify, PartitionCertificate, Violation};
