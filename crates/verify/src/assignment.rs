//! Strict parsing of `<node-index> <leaf-index>` assignment files.
//!
//! This is the format `htp partition --out` writes and `htp verify`
//! reads back. External tools produce these files too, so the parser
//! trusts nothing: every defect is a typed [`AssignmentError`], never a
//! panic, and the CLI maps them to exit code 2.

/// Why an assignment file was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssignmentError {
    /// A line was not two whitespace-separated non-negative integers.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending line's content (trimmed).
        content: String,
    },
    /// A node index at or beyond the netlist's node count.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The out-of-range node index.
        node: usize,
        /// The netlist's node count.
        num_nodes: usize,
    },
    /// A leaf index at or beyond the declared leaf count.
    LeafOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The out-of-range leaf index.
        leaf: usize,
        /// The number of available leaves.
        num_leaves: usize,
    },
    /// The same node was assigned twice.
    DuplicateNode {
        /// 1-based line number of the second assignment.
        line: usize,
        /// The node assigned twice.
        node: usize,
    },
    /// The file ended before every node was assigned (truncated file).
    MissingNodes {
        /// How many nodes have no assignment.
        missing: usize,
        /// The smallest unassigned node index.
        first: usize,
    },
}

impl std::fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentError::Syntax { line, content } => {
                write!(f, "line {line}: expected `<node> <leaf>`, got `{content}`")
            }
            AssignmentError::NodeOutOfRange {
                line,
                node,
                num_nodes,
            } => write!(
                f,
                "line {line}: node {node} out of range (netlist has {num_nodes} nodes)"
            ),
            AssignmentError::LeafOutOfRange {
                line,
                leaf,
                num_leaves,
            } => write!(
                f,
                "line {line}: leaf {leaf} out of range ({num_leaves} leaves available)"
            ),
            AssignmentError::DuplicateNode { line, node } => {
                write!(f, "line {line}: node {node} assigned twice")
            }
            AssignmentError::MissingNodes { missing, first } => write!(
                f,
                "truncated assignment: {missing} nodes unassigned (first: node {first})"
            ),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Parses an assignment file into `leaf_of[node]`, requiring totality:
/// exactly one line per node of the netlist, every leaf index below
/// `num_leaves`. Blank lines and `#` comment lines are skipped.
///
/// # Errors
///
/// The first defect found, as an [`AssignmentError`].
pub fn parse_assignment(
    text: &str,
    num_nodes: usize,
    num_leaves: usize,
) -> Result<Vec<usize>, AssignmentError> {
    let mut leaf_of: Vec<Option<usize>> = vec![None; num_nodes];
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (node, leaf) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), None) => match (a.parse::<usize>(), b.parse::<usize>()) {
                (Ok(node), Ok(leaf)) => (node, leaf),
                _ => {
                    return Err(AssignmentError::Syntax {
                        line,
                        content: trimmed.to_owned(),
                    })
                }
            },
            _ => {
                return Err(AssignmentError::Syntax {
                    line,
                    content: trimmed.to_owned(),
                })
            }
        };
        if node >= num_nodes {
            return Err(AssignmentError::NodeOutOfRange {
                line,
                node,
                num_nodes,
            });
        }
        if leaf >= num_leaves {
            return Err(AssignmentError::LeafOutOfRange {
                line,
                leaf,
                num_leaves,
            });
        }
        if leaf_of[node].is_some() {
            return Err(AssignmentError::DuplicateNode { line, node });
        }
        leaf_of[node] = Some(leaf);
    }
    let missing = leaf_of.iter().filter(|a| a.is_none()).count();
    if missing > 0 {
        let first = leaf_of.iter().position(Option::is_none).unwrap_or_default();
        return Err(AssignmentError::MissingNodes { missing, first });
    }
    Ok(leaf_of.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_complete_file_parses() {
        let text = "0 1\n1 0\n# comment\n\n2 1\n";
        assert_eq!(parse_assignment(text, 3, 2), Ok(vec![1, 0, 1]));
    }

    #[test]
    fn garbage_is_a_syntax_error() {
        for bad in ["zero one", "0", "0 1 2", "0 -1", "1.5 0"] {
            assert!(
                matches!(
                    parse_assignment(bad, 3, 2),
                    Err(AssignmentError::Syntax { line: 1, .. })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn out_of_range_indices_are_typed() {
        assert_eq!(
            parse_assignment("5 0\n", 3, 2),
            Err(AssignmentError::NodeOutOfRange {
                line: 1,
                node: 5,
                num_nodes: 3
            })
        );
        assert_eq!(
            parse_assignment("0 9\n", 3, 2),
            Err(AssignmentError::LeafOutOfRange {
                line: 1,
                leaf: 9,
                num_leaves: 2
            })
        );
    }

    #[test]
    fn duplicates_and_truncation_are_typed() {
        assert_eq!(
            parse_assignment("0 0\n1 1\n0 1\n", 3, 2),
            Err(AssignmentError::DuplicateNode { line: 3, node: 0 })
        );
        assert_eq!(
            parse_assignment("0 0\n", 3, 2),
            Err(AssignmentError::MissingNodes {
                missing: 2,
                first: 1
            })
        );
    }
}
