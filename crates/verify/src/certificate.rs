//! Partition certificates: independent re-validation and re-pricing.
//!
//! [`certify`] answers "is this partition feasible under this spec, and
//! what does it really cost?" using only the partition's raw accessors
//! (`leaf_of`, `parent`, `level`, `children`). Subtree sizes are
//! re-accumulated with per-node leaf-to-root walks and spans are counted
//! from per-pin ancestor chains, so none of `htp-model`'s `subtree_sizes`
//! / `block_matrix` / `cost` machinery is on the trusted path.

use htp_model::{HierarchicalPartition, TreeSpec};
use htp_netlist::Hypergraph;

/// One independently detected defect of a claimed partition.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// The partition assigns a different number of nodes than the netlist
    /// has.
    NodeCountMismatch {
        /// Nodes assigned by the partition.
        partition: usize,
        /// Nodes in the netlist.
        hypergraph: usize,
    },
    /// The partition tree is taller than the specification allows.
    HeightExceeded {
        /// The partition's root level.
        partition: usize,
        /// The spec's root level.
        spec: usize,
    },
    /// A node's assigned vertex is not a level-0 leaf.
    NodeNotAtLeaf {
        /// The netlist node.
        node: u32,
        /// The level of the vertex it was assigned to.
        level: usize,
    },
    /// A vertex's parent chain does not climb strictly in level towards
    /// the root (a malformed tree).
    BrokenParentChain {
        /// The vertex whose chain is broken.
        vertex: u32,
    },
    /// A vertex holds more total node size than its level's capacity
    /// `C_l`.
    CapacityExceeded {
        /// The offending vertex.
        vertex: u32,
        /// Its level.
        level: usize,
        /// Total size of the nodes in its subtree.
        size: u64,
        /// The capacity bound `C_l`.
        bound: u64,
    },
    /// A vertex has more children than its level's fanout bound `K_l`.
    FanoutExceeded {
        /// The offending vertex.
        vertex: u32,
        /// Its level.
        level: usize,
        /// Its child count.
        children: usize,
        /// The fanout bound `K_l`.
        bound: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NodeCountMismatch {
                partition,
                hypergraph,
            } => write!(
                f,
                "partition assigns {partition} nodes but the netlist has {hypergraph}"
            ),
            Violation::HeightExceeded { partition, spec } => write!(
                f,
                "partition root level {partition} exceeds spec root level {spec}"
            ),
            Violation::NodeNotAtLeaf { node, level } => {
                write!(f, "node {node} is assigned to a level-{level} vertex")
            }
            Violation::BrokenParentChain { vertex } => {
                write!(f, "vertex {vertex} has a malformed parent chain")
            }
            Violation::CapacityExceeded {
                vertex,
                level,
                size,
                bound,
            } => write!(
                f,
                "vertex {vertex} at level {level} holds size {size} > C_{level} = {bound}"
            ),
            Violation::FanoutExceeded {
                vertex,
                level,
                children,
                bound,
            } => write!(
                f,
                "vertex {vertex} at level {level} has {children} children > K_{level} = {bound}"
            ),
        }
    }
}

/// The result of independently certifying a partition.
#[derive(Clone, Debug)]
pub struct PartitionCertificate {
    /// Every defect found; empty for a valid partition.
    pub violations: Vec<Violation>,
    /// The independently recomputed cost `Σ_e Σ_l w_l·span(e,l)·c(e)`,
    /// or `None` when the structure is too malformed to price (node
    /// count or height mismatch).
    pub cost: Option<f64>,
    /// Per-level slices of [`cost`](PartitionCertificate::cost) (empty
    /// when `cost` is `None`).
    pub per_level_cost: Vec<f64>,
}

impl PartitionCertificate {
    /// `true` when no violation was found.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The leaf-to-root vertex chain of one node, or `None` if malformed.
///
/// Chains are valid when levels strictly increase and the walk ends at
/// the root within `num_vertices` steps.
fn parent_chain(p: &HierarchicalPartition, leaf: htp_model::VertexId) -> Option<Vec<(usize, u32)>> {
    let mut chain = Vec::new();
    let mut q = leaf;
    for _ in 0..=p.num_vertices() {
        chain.push((p.level(q), q.0));
        match p.parent(q) {
            Some(up) => {
                if p.level(up) <= p.level(q) {
                    return None;
                }
                q = up;
            }
            None => {
                return if q == p.root() { Some(chain) } else { None };
            }
        }
    }
    None
}

/// Expands a leaf-to-root chain into the per-level block ids
/// `block[l]` for `l` in `0..levels`: the highest ancestor with level
/// `<= l` (level gaps inherit the block below them).
fn blocks_per_level(chain: &[(usize, u32)], levels: usize) -> Vec<u32> {
    let mut blocks = vec![0u32; levels];
    for window in chain.windows(2) {
        let (lo, id) = window[0];
        let (hi, _) = window[1];
        for slot in blocks.iter_mut().take(hi.min(levels)).skip(lo) {
            *slot = id;
        }
    }
    if let Some(&(lo, id)) = chain.last() {
        for slot in blocks.iter_mut().skip(lo) {
            *slot = id;
        }
    }
    blocks
}

/// Independently certifies `p` as a hierarchical tree partition of `h`
/// under `spec`.
///
/// Checks, from the raw structure only:
///
/// * assignment totality (node counts agree, every node sits on a
///   level-0 leaf, every leaf's chain reaches the root),
/// * tree height within the spec,
/// * subtree size `<= C_l` for every vertex at level `l`,
/// * child count `<= K_l` for every vertex at level `l >= 1`,
///
/// and re-prices the paper objective `Σ_e Σ_{0<=l<L} w_l·span(e,l)·c(e)`
/// with its own span counter. All violations are collected, not just the
/// first.
pub fn certify(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> PartitionCertificate {
    let mut violations = Vec::new();

    if p.num_nodes() != h.num_nodes() {
        violations.push(Violation::NodeCountMismatch {
            partition: p.num_nodes(),
            hypergraph: h.num_nodes(),
        });
    }
    if p.root_level() > spec.root_level() {
        violations.push(Violation::HeightExceeded {
            partition: p.root_level(),
            spec: spec.root_level(),
        });
    }
    if !violations.is_empty() {
        return PartitionCertificate {
            violations,
            cost: None,
            per_level_cost: Vec::new(),
        };
    }

    // Leaf-to-root chains, independently re-walked per node.
    let levels = p.root_level();
    let mut subtree_size = vec![0u64; p.num_vertices()];
    let mut node_blocks: Vec<Vec<u32>> = Vec::with_capacity(h.num_nodes());
    let mut chains_ok = true;
    for v in h.nodes() {
        let leaf = p.leaf_of(v);
        if p.level(leaf) != 0 {
            violations.push(Violation::NodeNotAtLeaf {
                node: v.0,
                level: p.level(leaf),
            });
            chains_ok = false;
            node_blocks.push(vec![0; levels]);
            continue;
        }
        match parent_chain(p, leaf) {
            Some(chain) => {
                for &(_, id) in &chain {
                    subtree_size[id as usize] += h.node_size(v);
                }
                node_blocks.push(blocks_per_level(&chain, levels));
            }
            None => {
                violations.push(Violation::BrokenParentChain { vertex: leaf.0 });
                chains_ok = false;
                node_blocks.push(vec![0; levels]);
            }
        }
    }

    // Capacity and fanout, vertex by vertex. Vertices holding no node
    // (empty leaves) have accumulated size 0 and trivially pass.
    for q in p.vertices() {
        let level = p.level(q);
        let bound = spec.capacity(level);
        if subtree_size[q.index()] > bound {
            violations.push(Violation::CapacityExceeded {
                vertex: q.0,
                level,
                size: subtree_size[q.index()],
                bound,
            });
        }
        if level >= 1 && p.children(q).len() > spec.max_children(level) {
            violations.push(Violation::FanoutExceeded {
                vertex: q.0,
                level,
                children: p.children(q).len(),
                bound: spec.max_children(level),
            });
        }
    }

    if !chains_ok {
        return PartitionCertificate {
            violations,
            cost: None,
            per_level_cost: Vec::new(),
        };
    }

    // Re-price the objective: at each level, a net spanning f >= 2
    // distinct blocks pays w_l·f·c(e); uncut nets pay nothing. The root
    // level never counts (everything shares the root).
    let mut per_level_cost = vec![0.0f64; levels];
    let mut distinct: Vec<u32> = Vec::new();
    for e in h.nets() {
        let c = h.net_capacity(e);
        for (l, acc) in per_level_cost.iter_mut().enumerate() {
            distinct.clear();
            distinct.extend(h.net_pins(e).iter().map(|&v| node_blocks[v.index()][l]));
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() >= 2 {
                *acc += spec.weight(l) * distinct.len() as f64 * c;
            }
        }
    }
    let cost = per_level_cost.iter().sum();
    PartitionCertificate {
        violations,
        cost: Some(cost),
        per_level_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_model::{HierarchicalPartition, PartitionBuilder, TreeSpec};
    use htp_netlist::{HypergraphBuilder, NodeId};

    fn chain_graph(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(n);
        for i in 0..n as u32 - 1 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn valid_partition_certifies_with_the_expected_cost() {
        // 4-node chain split into [0,1] | [2,3]: exactly the middle net
        // is cut, span 2 at level 0.
        let h = chain_graph(4);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        let cert = certify(&h, &spec, &p);
        assert!(cert.is_valid(), "{:?}", cert.violations);
        assert_eq!(cert.cost, Some(2.0));
        assert_eq!(cert.per_level_cost, vec![2.0]);
    }

    #[test]
    fn weighted_levels_multiply_the_span() {
        // Same cut seen at two levels with w_0 = 1, w_1 = 3.
        let h = chain_graph(4);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 3.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(2, &[0, 0, 1, 1]).unwrap();
        let cert = certify(&h, &spec, &p);
        assert!(cert.is_valid(), "{:?}", cert.violations);
        // Level 0: span 2 · w 1; level 1 (leaf blocks inherited): span 2 · w 3.
        assert_eq!(cert.cost, Some(2.0 + 6.0));
    }

    #[test]
    fn capacity_violations_are_reported_per_vertex() {
        let h = chain_graph(4);
        let spec = TreeSpec::new(vec![(1, 2, 1.0), (4, 4, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        let cert = certify(&h, &spec, &p);
        assert!(!cert.is_valid());
        let caps = cert
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::CapacityExceeded { level: 0, .. }))
            .count();
        assert_eq!(caps, 2, "{:?}", cert.violations);
        // A capacity violation still prices the partition.
        assert_eq!(cert.cost, Some(2.0));
    }

    #[test]
    fn fanout_violations_are_reported() {
        let h = chain_graph(6);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (6, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1, 2, 2]).unwrap();
        let cert = certify(&h, &spec, &p);
        assert!(cert.violations.iter().any(|v| matches!(
            v,
            Violation::FanoutExceeded {
                children: 3,
                bound: 2,
                ..
            }
        )));
    }

    #[test]
    fn node_count_mismatch_short_circuits() {
        let h = chain_graph(4);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1]).unwrap();
        let cert = certify(&h, &spec, &p);
        assert!(matches!(
            cert.violations.as_slice(),
            [Violation::NodeCountMismatch {
                partition: 3,
                hypergraph: 4
            }]
        ));
        assert_eq!(cert.cost, None);
    }

    #[test]
    fn height_mismatch_is_caught() {
        let h = chain_graph(4);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(2, &[0, 0, 1, 1]).unwrap();
        let cert = certify(&h, &spec, &p);
        assert!(matches!(
            cert.violations.as_slice(),
            [Violation::HeightExceeded {
                partition: 2,
                spec: 1
            }]
        ));
    }

    #[test]
    fn level_gaps_inherit_the_block_below() {
        // A three-level tree where one leaf hangs directly off the root
        // (levels 0 -> 2): at level 1 it must count as its own block.
        let h = chain_graph(3);
        let spec = TreeSpec::new(vec![(1, 2, 1.0), (2, 2, 1.0), (3, 2, 1.0)]).unwrap();
        let mut b = PartitionBuilder::new(3, 2);
        let root = b.root();
        let mid = b.add_child(root, 1).unwrap();
        let l0 = b.add_child(mid, 0).unwrap();
        let l1 = b.add_child(mid, 0).unwrap();
        let l2 = b.add_child(root, 0).unwrap(); // the level gap
        b.assign(NodeId(0), l0).unwrap();
        b.assign(NodeId(1), l1).unwrap();
        b.assign(NodeId(2), l2).unwrap();
        let p = b.build().unwrap();

        let cert = certify(&h, &spec, &p);
        assert!(cert.is_valid(), "{:?}", cert.violations);
        // Net (0,1): level 0 span 2, level 1 uncut. Net (1,2): span 2 at
        // both levels (leaf l2 represents itself at level 1).
        assert_eq!(cert.cost, Some(2.0 + 2.0 + 2.0));
        // Cross-check the whole certificate against the reference
        // implementation (allowed here: tests are not the trusted path).
        assert_eq!(
            cert.cost,
            Some(htp_model::cost::partition_cost(&h, &spec, &p))
        );
    }
}
