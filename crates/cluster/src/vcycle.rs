//! The multilevel V-cycle: recursive coarsening, FLOW at the coarsest
//! level, and level-by-level uncoarsening with flow-based refinement.
//!
//! The two-level [`crate::pipeline`] proves the coarsen→FLOW→project
//! scheme; this module recurses it. The down pass agglomerates repeatedly
//! — congestion-guided while the graph is small enough to afford the
//! stochastic routing, heavy-edge-rated above that — until the coarsest
//! netlist fits a node threshold. FLOW solves the coarsest instance, and
//! the up pass projects through each level, running a flow-based
//! boundary-refinement pass ([`crate::refine`]) with a hierarchical-FM
//! fallback at sizes where FM is affordable.
//!
//! Every phase polls the caller's [`Budget`]: a deadline or cancellation
//! mid-cycle stops refinement and projects the best partition found so
//! far straight up to the fine level, so the caller always receives a
//! valid (certifiable) partition plus an honest [`RunOutcome`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use rand::Rng;

use htp_core::injector::FlowParams;
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::runtime::{Budget, RunOutcome};
use htp_core::CoreError;
use htp_model::{cost, HierarchicalPartition, TreeSpec};
use htp_netlist::{contract_with, ContractScratch, Hypergraph};

use crate::clusters::{agglomerate_ordered, net_order, Clustering};
use crate::congestion::{flow_congestion, CongestionParams, CongestionProfile};
use crate::pipeline::{project, refine_partition, solve_budgeted};
use crate::refine::{flow_refine_pass, FlowRefineParams, FlowRefineReport};

/// A coarsening level is abandoned when it shrinks the node count by less
/// than this factor — further passes would stall at the same size.
const MIN_SHRINK: f64 = 0.95;

/// Node-count fractions the adaptive filler policy tries to freeze, in
/// escalation order: start with nothing frozen and add smallest-first
/// stripes until the coarse size distribution passes the packing screen.
const ADAPTIVE_FRACTIONS: [f64; 6] = [
    0.0,
    1.0 / 64.0,
    1.0 / 32.0,
    1.0 / 16.0,
    1.0 / 8.0,
    1.0 / 4.0,
];

/// How coarsening picks filler singletons — the small nodes frozen out of
/// agglomeration at each level so the coarsest carve can still land inside
/// the spec's tight block-size windows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FillerPolicy {
    /// Freeze every `stride`-th node (`0` freezes nothing) — the legacy
    /// fixed stripe. Simple, but it freezes the same 1/stride of the
    /// graph whether the level needs fillers or not, which inflates the
    /// level count and the coarsest size on large instances.
    Stride(usize),
    /// Freeze only as much as the level provably needs: escalate through
    /// fixed freeze fractions (0, 1/64, …, 1/4 — smallest nodes first,
    /// ties by index) and accept the first clustering whose coarse sizes pass the
    /// [`packing_infeasibility`] screen. Levels that never need fillers
    /// freeze nothing and shrink at full speed; only the levels whose
    /// size distribution actually threatens carve feasibility pay for a
    /// singleton tail.
    Adaptive,
}

/// Parameters of the multilevel V-cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VCycleParams {
    /// Stop coarsening once the graph has at most this many nodes; FLOW
    /// runs on that coarsest netlist.
    pub coarsest_nodes: usize,
    /// Floor of the node-count target that sets the per-level cluster
    /// size cap. Normally the target is `n / level_shrink` (so the cap
    /// is the average cluster size that shrink would need), but when a
    /// level stalls — the cap leaves almost nothing to merge — the
    /// target decays by another `level_shrink` factor and the level
    /// retries with the larger cap, down to this floor. Keep it below
    /// `coarsest_nodes`: the old behaviour (give up on the first
    /// stall, target never below `coarsest_nodes`) coupled cap growth
    /// to merge success, a feedback loop that stalled coarsening
    /// several times above the threshold so the coarsest solve
    /// dominated the cycle.
    pub cap_decay_floor: usize,
    /// Hard cap on coarsening levels (safety net for pathological
    /// instances).
    pub max_levels: usize,
    /// Target node-count shrink factor per level (must exceed 1).
    pub level_shrink: f64,
    /// Cluster size cap as a fraction of the leaf capacity `C_0`, in
    /// `(0, 1]`. Bounds how big a coarse node may grow at any level.
    pub cluster_cap_fraction: f64,
    /// How filler singletons are chosen at each coarsening level. The
    /// preserved small-size tail is what lets the coarsest carve land
    /// inside tight size windows; see [`FillerPolicy`].
    pub fillers: FillerPolicy,
    /// Congestion-profile parameters for congestion-guided coarsening.
    pub congestion: CongestionParams,
    /// Use congestion-guided coarsening up to this many nodes; larger
    /// graphs are rated by the cheap heavy-edge heuristic instead.
    pub congestion_max_nodes: usize,
    /// Inner partitioner parameters for the coarsest solve.
    pub partitioner: PartitionerParams,
    /// Run the flow-based boundary refinement at each uncoarsening level.
    pub flow_refine: bool,
    /// Parameters of the flow-refinement pass.
    pub refine: FlowRefineParams,
    /// Fall back to the hierarchical-FM pass (when the flow pass moved
    /// nothing) only at levels with at most this many nodes — FM's move
    /// scan is too expensive above it.
    pub hfm_max_nodes: usize,
    /// Keep a snapshot of the (projected, refined) partition at every
    /// uncoarsening level in [`VCycleResult::level_partitions`] (test and
    /// audit hook; costs memory on big instances).
    pub record_levels: bool,
}

impl Default for VCycleParams {
    fn default() -> Self {
        VCycleParams {
            // Coarser than this and the coarse node granularity starts
            // missing the spec's carve windows (NoFeasibleCut).
            coarsest_nodes: 512,
            // Half of `coarsest_nodes`: stalled levels retry with caps
            // up to total/256 instead of giving up (measured on
            // rent:100000: the plateau drops from ~2.4k nodes to near
            // the threshold). Lower floors raise the caps past the
            // carve-window granularity and the coarsest levels go
            // infeasible.
            cap_decay_floor: 256,
            max_levels: 12,
            level_shrink: 4.0,
            cluster_cap_fraction: 0.5,
            fillers: FillerPolicy::Adaptive,
            congestion: CongestionParams::default(),
            congestion_max_nodes: 4096,
            // One metric iteration suffices at the coarsest level: the
            // per-level refinement passes recover what a longer coarse
            // solve would buy, at a fraction of the cost. Constructions
            // are nearly free next to the metric (a few ms each at
            // coarse sizes), and extra rolls make a feasible carve far
            // more likely on chunky coarse nodes — the spec's carve
            // windows are near-exact between levels, so whether a roll
            // lands is noisy, and every level the backoff pops costs a
            // full paid metric.
            partitioner: PartitionerParams {
                iterations: 1,
                constructions_per_metric: 64,
                // Round cap on the coarse metric: a well-clustered coarse
                // graph converges in a few dozen rounds, a fragmented one
                // can crawl for hundreds while the refinement passes would
                // recover the difference anyway. Hitting the cap is honest
                // convergence (`converged = false`), not an interrupt.
                flow: FlowParams {
                    max_rounds: 128,
                    ..FlowParams::default()
                },
            },
            flow_refine: true,
            refine: FlowRefineParams::default(),
            hfm_max_nodes: 4096,
            record_levels: false,
        }
    }
}

/// What happened at one uncoarsening level (coarse→fine order in
/// [`VCycleResult::levels`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VCycleLevelReport {
    /// Nodes of the fine graph at this level.
    pub nodes: usize,
    /// Nets of the fine graph at this level.
    pub nets: usize,
    /// Time spent coarsening this graph during the down pass.
    pub coarsen_seconds: f64,
    /// Time spent refining after projection.
    pub refine_seconds: f64,
    /// Cost right after projecting the coarser partition.
    pub projected_cost: f64,
    /// Cost after refinement (never above `projected_cost`).
    pub refined_cost: f64,
    /// Block pairs the flow refiner took to the max-flow stage.
    pub flow_pairs_tried: usize,
    /// Pairs whose min-cut move was accepted.
    pub flow_pairs_accepted: usize,
    /// Pairs the estimated-gain gate skipped before max-flow.
    pub flow_pairs_skipped: usize,
    /// Sum of the gain upper bounds the gate discarded (near zero when
    /// the gate only skips genuinely hopeless pairs).
    pub flow_skipped_gain_bound: f64,
    /// Nodes moved by accepted flow proposals.
    pub flow_moved_nodes: usize,
    /// Whether the hierarchical-FM fallback ran at this level.
    pub hfm_used: bool,
    /// Filler singletons frozen while coarsening this graph.
    pub frozen_fillers: usize,
    /// Fine nets of this graph that merged into an identical-pin-set
    /// survivor while contracting it to the next coarser level.
    pub merged_nets: usize,
    /// Fine nets of this graph the contraction dropped (single coarse
    /// pin).
    pub dropped_nets: usize,
}

/// Result of a V-cycle run.
#[derive(Clone, Debug)]
pub struct VCycleResult {
    /// The final fine-level partition (always valid under the spec).
    pub partition: HierarchicalPartition,
    /// Its exact interconnection cost.
    pub cost: f64,
    /// How the budgeted run ended.
    pub outcome: RunOutcome,
    /// Coarsening levels performed (0 means FLOW ran directly on the
    /// input).
    pub num_levels: usize,
    /// Node count of the coarsest netlist FLOW solved.
    pub coarsest_nodes: usize,
    /// Cost of the coarsest solve (on the coarse netlist).
    pub coarsest_cost: f64,
    /// Total down-pass (coarsening) time.
    pub coarsen_seconds: f64,
    /// Coarsest FLOW solve time.
    pub solve_seconds: f64,
    /// Per-level uncoarsening reports, coarsest-to-finest.
    pub levels: Vec<VCycleLevelReport>,
    /// Coarse levels rejected by the size-packing pre-check before any
    /// metric run (each would otherwise have cost one full metric under
    /// the `NoFeasibleCut` backoff).
    pub precheck_rejected_levels: usize,
    /// Coarse levels popped by the `NoFeasibleCut` backoff after a paid
    /// solve attempt (the pre-check is a necessary condition only, so
    /// heuristically infeasible levels still reach the solver).
    pub backoff_popped_levels: usize,
    /// Panics contained by the fault isolation around coarsening and
    /// refinement; each degrades the outcome instead of aborting the run.
    pub contained_panics: usize,
    /// `(projected, refined)` partitions per uncoarsening level when
    /// [`VCycleParams::record_levels`] is set (coarsest-to-finest, same
    /// order as `levels`).
    pub level_partitions: Vec<(HierarchicalPartition, HierarchicalPartition)>,
    /// The coarse netlists, finest-to-coarsest, when
    /// [`VCycleParams::record_levels`] is set (audit hook: the partition
    /// pair `level_partitions[j]` lives on `coarse_graphs[L - 2 - j]`
    /// where `L = num_levels`, and on the input netlist for
    /// `j == L - 1`).
    pub coarse_graphs: Vec<Hypergraph>,
}

/// Runs the multilevel V-cycle with no budget.
///
/// # Errors
///
/// Propagates [`CoreError`] from parameter validation, the coarsest FLOW
/// solve, projection, and refinement.
pub fn vcycle_partition<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: VCycleParams,
    rng: &mut R,
) -> Result<VCycleResult, CoreError> {
    vcycle_partition_with_budget(h, spec, params, rng, &Budget::unlimited())
}

/// Runs the multilevel V-cycle under `budget`.
///
/// The coarsest FLOW solve consumes the budget's rounds and probes; every
/// other phase polls its deadline and cancel token. When the budget fires
/// mid-cycle, the best partition found so far is projected up the
/// remaining levels without refinement, so the caller still receives a
/// valid partition and an outcome naming the interrupt.
///
/// # Errors
///
/// Propagates [`CoreError`] from parameter validation, the coarsest FLOW
/// solve, projection, and refinement.
pub fn vcycle_partition_with_budget<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: VCycleParams,
    rng: &mut R,
    budget: &Budget,
) -> Result<VCycleResult, CoreError> {
    validate_params(&params)?;
    if h.num_nodes() == 0 {
        return Err(CoreError::EmptyNetlist);
    }

    let mut precheck_rejected_levels = 0usize;
    let mut backoff_popped_levels = 0usize;

    // ---- Down pass: recursive coarsening. -------------------------------
    let down = down_pass(h, spec, &params, rng, budget);
    let DownPass {
        mut coarse_graphs,
        mut maps,
        mut coarsen_times,
        mut coarsen_stats,
        mut outcome,
        mut contained_panics,
        seconds: coarsen_seconds,
    } = down;

    // ---- Coarsest solve. ------------------------------------------------
    // Coarse nodes can be too chunky to land inside the spec's carve
    // windows; when the coarsest solve finds no feasible cut, back off one
    // level and solve the next-finer graph instead of failing.
    let solve_start = Instant::now();
    let partitioner = FlowPartitioner::try_new(params.partitioner)?;
    let (mut partition, coarsest_node_count, coarsest_cost) = loop {
        // Cheap necessary-condition screen first: when the coarse node
        // sizes provably cannot be packed into the spec's carve windows,
        // back off without paying the full metric run the NoFeasibleCut
        // backoff below would cost.
        let provably_infeasible = {
            let coarsest = coarse_graphs.last().unwrap_or(h);
            let sizes: Vec<u64> = coarsest.nodes().map(|v| coarsest.node_size(v)).collect();
            packing_infeasibility(&sizes, spec)
        };
        if let Some(e) = provably_infeasible {
            if coarse_graphs.is_empty() {
                // The input netlist itself cannot fit the spec; surface
                // the same typed error the construction would raise.
                return Err(e);
            }
            precheck_rejected_levels += 1;
            coarse_graphs.pop();
            maps.pop();
            coarsen_times.pop();
            coarsen_stats.pop();
            continue;
        }
        let attempt = {
            let coarsest = coarse_graphs.last().unwrap_or(h);
            solve_budgeted(&partitioner, coarsest, spec, rng, budget).map(|(p, o)| {
                let c = cost::partition_cost(coarsest, spec, &p);
                (p, o, coarsest.num_nodes(), c)
            })
        };
        match attempt {
            Ok((p, solve_outcome, n, c)) => {
                outcome = outcome.combine(solve_outcome);
                break (p, n, c);
            }
            Err(CoreError::NoFeasibleCut { .. }) if !coarse_graphs.is_empty() => {
                backoff_popped_levels += 1;
                coarse_graphs.pop();
                maps.pop();
                coarsen_times.pop();
                coarsen_stats.pop();
            }
            Err(e) => return Err(e),
        }
    };
    let solve_seconds = solve_start.elapsed().as_secs_f64();

    // ---- Up pass: project + refine level by level. ----------------------
    let mut levels = Vec::with_capacity(maps.len());
    let mut level_partitions = Vec::new();
    let mut cost_now = coarsest_cost;
    for i in (0..maps.len()).rev() {
        let fine: &Hypergraph = if i == 0 { h } else { &coarse_graphs[i - 1] };
        let projected = project(&partition, &maps[i], fine.num_nodes())?;
        htp_model::validate::validate(fine, spec, &projected)?;
        let projected_cost = cost::partition_cost(fine, spec, &projected);

        let refine_start = Instant::now();
        let budget_ok = match budget.check_time() {
            Ok(()) => true,
            Err(irq) => {
                outcome = outcome.combine(RunOutcome::from_interrupt(irq));
                false
            }
        };
        // The whole refinement stage (flow pass + HFM sweep) is
        // fault-isolated: a panic inside either refiner keeps the valid
        // projected partition for this level and degrades the outcome
        // instead of aborting the cycle.
        type RefineAttempt =
            Result<(HierarchicalPartition, f64, FlowRefineReport, bool), CoreError>;
        let attempt: std::thread::Result<RefineAttempt> = if budget_ok {
            catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if let Some(plan) = budget.fault_plan() {
                    if plan.should_panic_refinement(levels.len() as u64) {
                        panic!("fault injection: scripted refinement panic");
                    }
                }
                let (refined, refined_cost, report) = if params.flow_refine {
                    flow_refine_pass(
                        fine,
                        spec,
                        &projected,
                        projected_cost,
                        &params.refine,
                        budget,
                    )?
                } else {
                    (
                        projected.clone(),
                        projected_cost,
                        FlowRefineReport::default(),
                    )
                };
                // HFM sweep on top of the flow pass, at levels small
                // enough for FM's full move scan; kept only when it
                // strictly improves.
                let mut hfm_used = false;
                let (refined, refined_cost) =
                    if fine.num_nodes() <= params.hfm_max_nodes && budget.check_time().is_ok() {
                        let (p2, c2) = refine_partition(fine, spec, &refined)?;
                        if c2 < refined_cost - 1e-12 {
                            hfm_used = true;
                            (p2, c2)
                        } else {
                            (refined, refined_cost)
                        }
                    } else {
                        (refined, refined_cost)
                    };
                Ok((refined, refined_cost, report, hfm_used))
            }))
        } else {
            Ok(Ok((
                projected.clone(),
                projected_cost,
                FlowRefineReport::default(),
                false,
            )))
        };
        let (refined, refined_cost, report, hfm_used) = match attempt {
            Ok(Ok(stage)) => stage,
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                contained_panics += 1;
                outcome = outcome.combine(RunOutcome::Degraded);
                (
                    projected.clone(),
                    projected_cost,
                    FlowRefineReport::default(),
                    false,
                )
            }
        };
        if let Some(irq) = report.interrupt {
            outcome = outcome.combine(RunOutcome::from_interrupt(irq));
        }
        let refine_seconds = refine_start.elapsed().as_secs_f64();

        levels.push(VCycleLevelReport {
            nodes: fine.num_nodes(),
            nets: fine.num_nets(),
            coarsen_seconds: coarsen_times[i],
            refine_seconds,
            projected_cost,
            refined_cost,
            flow_pairs_tried: report.pairs_tried,
            flow_pairs_accepted: report.pairs_accepted,
            flow_pairs_skipped: report.pairs_skipped,
            flow_skipped_gain_bound: report.skipped_gain_bound,
            flow_moved_nodes: report.moved_nodes,
            hfm_used,
            frozen_fillers: coarsen_stats[i].frozen_fillers,
            merged_nets: coarsen_stats[i].merged_nets,
            dropped_nets: coarsen_stats[i].dropped_nets,
        });
        if params.record_levels {
            level_partitions.push((projected, refined.clone()));
        }
        partition = refined;
        cost_now = refined_cost;
    }

    Ok(VCycleResult {
        partition,
        cost: cost_now,
        outcome,
        num_levels: maps.len(),
        coarsest_nodes: coarsest_node_count,
        coarsest_cost,
        coarsen_seconds,
        solve_seconds,
        precheck_rejected_levels,
        backoff_popped_levels,
        contained_panics,
        levels,
        level_partitions,
        coarse_graphs: if params.record_levels {
            coarse_graphs
        } else {
            Vec::new()
        },
    })
}

/// Per-level counters from the coarsening down pass, aligned with
/// `coarsen_times` (index `i` describes contracting the level-`i` fine
/// graph into the next coarser one).
#[derive(Clone, Copy, Default)]
struct CoarsenLevelStats {
    frozen_fillers: usize,
    merged_nets: usize,
    dropped_nets: usize,
}

/// Everything the coarsening down pass produced: the coarse cascade
/// (finest-to-coarsest), its projection maps, per-level times and
/// counters, and how the pass ended.
struct DownPass {
    coarse_graphs: Vec<Hypergraph>,
    maps: Vec<Vec<usize>>,
    coarsen_times: Vec<f64>,
    coarsen_stats: Vec<CoarsenLevelStats>,
    outcome: RunOutcome,
    contained_panics: usize,
    seconds: f64,
}

/// The recursive coarsening loop: agglomerate level by level until the
/// coarsest threshold, the level cap, a budget interrupt, or a stall
/// (a level that shrinks by less than [`MIN_SHRINK`]) stops it.
fn down_pass<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: &VCycleParams,
    rng: &mut R,
    budget: &Budget,
) -> DownPass {
    let down_start = Instant::now();
    let mut outcome = RunOutcome::Complete;
    let mut contained_panics = 0usize;
    let mut coarse_graphs: Vec<Hypergraph> = Vec::new();
    let mut maps: Vec<Vec<usize>> = Vec::new();
    let mut coarsen_times: Vec<f64> = Vec::new();
    let mut coarsen_stats: Vec<CoarsenLevelStats> = Vec::new();
    // Contraction scratch shared across every level: the buffers grow to
    // the finest level's size once and are reused all the way down.
    let mut scratch = ContractScratch::new();
    let global_cap =
        ((spec.capacity(0) as f64 * params.cluster_cap_fraction).floor() as u64).max(1);
    loop {
        let cur = coarse_graphs.last().unwrap_or(h);
        let n = cur.num_nodes();
        if n <= params.coarsest_nodes || maps.len() >= params.max_levels || n < 2 {
            break;
        }
        if let Err(irq) = budget.check_time() {
            outcome = outcome.combine(RunOutcome::from_interrupt(irq));
            break;
        }
        let t0 = Instant::now();
        let max_node = cur.nodes().map(|v| cur.node_size(v)).max().unwrap_or(1);
        // The level body is fault-isolated: a panic while rating or
        // contracting stops the down pass at the last good level and the
        // cycle solves that graph instead, degrading the outcome.
        let step = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = budget.fault_plan() {
                if plan.should_panic_coarsening(maps.len() as u64) {
                    panic!("fault injection: scripted coarsening panic");
                }
            }
            let profile = if n <= params.congestion_max_nodes {
                flow_congestion(cur, params.congestion, rng)
            } else {
                heavy_edge_profile(cur)
            };
            // Sorted once per level and reused across every cap-decay and
            // filler-escalation retry below.
            let order = net_order(cur, &profile);
            let freeze_order = match params.fillers {
                FillerPolicy::Adaptive => {
                    let sizes: Vec<u64> = cur.nodes().map(|v| cur.node_size(v)).collect();
                    let mut o: Vec<usize> = (0..n).collect();
                    o.sort_by_key(|&v| (sizes[v], v));
                    o
                }
                FillerPolicy::Stride(_) => Vec::new(),
            };
            // A stall — the cap leaves (almost) nothing to merge — does
            // not end the down pass outright: the cap target decays
            // another `level_shrink` step and the level retries with
            // the larger cap, until the `cap_decay_floor`. Giving up on
            // the first stall coupled cap growth to merge success, a
            // feedback loop that plateaued rent:100000 around 2.4k
            // nodes with the coarsest solve dominating the cycle.
            let mut target = (n as f64 / params.level_shrink)
                .ceil()
                .max(params.coarsest_nodes as f64);
            loop {
                let cap = ((cur.total_size() as f64 / target).ceil() as u64)
                    .min(global_cap)
                    .max(max_node);
                let (clustering, frozen_fillers) =
                    cluster_level(cur, &order, &freeze_order, cap, params.fillers, spec);
                if clustering.count as f64 <= n as f64 * MIN_SHRINK {
                    let (coarse, cstats) = contract_with(cur, &clustering.cluster_of, &mut scratch);
                    let stats = CoarsenLevelStats {
                        frozen_fillers,
                        merged_nets: cstats.merged_nets,
                        dropped_nets: cstats.dropped_nets,
                    };
                    return Some((clustering.cluster_of, coarse, stats));
                }
                if target <= params.cap_decay_floor as f64 {
                    return None; // stalled even at the decay floor
                }
                target = (target / params.level_shrink).max(params.cap_decay_floor as f64);
            }
        }));
        match step {
            Ok(Some((map, coarse, stats))) => {
                maps.push(map);
                coarse_graphs.push(coarse);
                coarsen_times.push(t0.elapsed().as_secs_f64());
                coarsen_stats.push(stats);
            }
            Ok(None) => break,
            Err(_) => {
                contained_panics += 1;
                outcome = outcome.combine(RunOutcome::Degraded);
                break;
            }
        }
    }
    DownPass {
        coarse_graphs,
        maps,
        coarsen_times,
        coarsen_stats,
        outcome,
        contained_panics,
        seconds: down_start.elapsed().as_secs_f64(),
    }
}

/// Clusters one coarsening level under `policy`, returning the clustering
/// and how many filler singletons were frozen.
///
/// For [`FillerPolicy::Adaptive`], walks the [`ADAPTIVE_FRACTIONS`]
/// escalation — freezing the `freeze_order` prefix (smallest nodes first)
/// — and accepts the first clustering whose coarse sizes pass the
/// [`packing_infeasibility`] screen. When even the largest stripe fails
/// the screen, the last clustering is returned anyway: the screen is a
/// necessary condition only, and the coarsest-solve pre-check/backoff
/// pops genuinely infeasible levels.
fn cluster_level(
    cur: &Hypergraph,
    order: &[usize],
    freeze_order: &[usize],
    cap: u64,
    policy: FillerPolicy,
    spec: &TreeSpec,
) -> (Clustering, usize) {
    match policy {
        FillerPolicy::Stride(stride) => {
            let frozen: Vec<bool> = if stride == 0 {
                Vec::new()
            } else {
                (0..cur.num_nodes())
                    .map(|v| v.is_multiple_of(stride))
                    .collect()
            };
            let count = frozen.iter().filter(|&&f| f).count();
            (agglomerate_ordered(cur, order, &frozen, cap), count)
        }
        FillerPolicy::Adaptive => {
            let n = cur.num_nodes();
            let mut frozen = vec![false; n];
            let mut prev = 0usize;
            let mut last = None;
            for &frac in &ADAPTIVE_FRACTIONS {
                let count = (((n as f64) * frac).ceil() as usize).min(n);
                for &v in &freeze_order[prev..count] {
                    frozen[v] = true;
                }
                prev = count;
                let clustering = agglomerate_ordered(cur, order, &frozen, cap);
                let sizes = clustering.sizes(cur);
                let feasible = packing_infeasibility(&sizes, spec).is_none();
                last = Some((clustering, count));
                if feasible {
                    break;
                }
            }
            last.expect("ADAPTIVE_FRACTIONS is non-empty")
        }
    }
}

/// Provable size-packing infeasibility screen.
///
/// Returns the typed [`CoreError`] the construction would eventually
/// raise when `sizes` provably cannot be packed under `spec`, or `None`
/// when packing *may* be possible. The check is a sound necessary
/// condition — it never condemns a packable instance — built from three
/// facts about any valid partition:
///
/// - every node must fit a leaf, so a node bigger than `C_0` is hopeless;
/// - the total must fit the root capacity;
/// - the root carve splits the total into at most `K_top` blocks of at
///   most `ub = C_{top-1}` each, so some block's size is a subset sum of
///   `sizes` inside the window `[total - (K_top - 1)·ub, ub]`; a bitset
///   subset-sum sweep proves when no such subset exists.
///
/// The subset-sum sweep is skipped (assumed packable) when `ub` exceeds
/// 2^22, bounding the screen at a few milliseconds on any input.
pub fn packing_infeasibility(sizes: &[u64], spec: &TreeSpec) -> Option<CoreError> {
    const MAX_DP_SUM: u64 = 1 << 22;
    let total: u64 = sizes.iter().sum();
    if total == 0 {
        return None;
    }
    let leaf_cap = spec.capacity(0);
    if let Some(&big) = sizes.iter().find(|&&s| s > leaf_cap) {
        return Some(CoreError::NoFeasibleCut {
            level: 0,
            remaining: big,
            lb: 1,
            ub: leaf_cap,
        });
    }
    let Some(top) = spec.level_for_size(total) else {
        return Some(CoreError::Infeasible {
            total_size: total,
            root_capacity: spec.capacity(spec.root_level()),
        });
    };
    if top == 0 {
        return None; // everything fits a single leaf
    }
    let k = spec.max_children(top) as u64;
    let ub = spec.capacity(top - 1);
    let lb = total.saturating_sub((k - 1).saturating_mul(ub)).max(1);
    if u128::from(total) > u128::from(k) * u128::from(ub) {
        return Some(CoreError::NoFeasibleCut {
            level: top,
            remaining: total,
            lb,
            ub,
        });
    }
    if ub > MAX_DP_SUM {
        return None; // too wide to prove anything cheaply
    }
    // Bitset subset-sum DP: bit `s` of `reach` means some subset of
    // `sizes` sums to exactly `s` (sums above `ub` are truncated — no
    // block may exceed `ub` anyway).
    let ubz = ub as usize;
    let words = ubz / 64 + 1;
    let mut reach = vec![0u64; words];
    reach[0] = 1; // the empty subset
    for &s in sizes {
        let s = s as usize;
        if s == 0 || s > ubz {
            continue;
        }
        let (ws, bs) = (s / 64, s % 64);
        for i in (ws..words).rev() {
            let mut v = reach[i - ws] << bs;
            if bs != 0 && i > ws {
                v |= reach[i - ws - 1] >> (64 - bs);
            }
            reach[i] |= v;
        }
    }
    let window_hit = (lb as usize..=ubz).any(|s| (reach[s / 64] >> (s % 64)) & 1 == 1);
    if window_hit {
        None
    } else {
        Some(CoreError::NoFeasibleCut {
            level: top,
            remaining: total,
            lb,
            ub,
        })
    }
}

/// Rates every net for heavy-edge coarsening: utilization becomes
/// `pins/capacity`, so small, heavy nets merge first — the classic
/// heavy-edge rating expressed as a [`CongestionProfile`] so
/// [`agglomerate`] can consume it unchanged.
fn heavy_edge_profile(h: &Hypergraph) -> CongestionProfile {
    CongestionProfile {
        flow: h.nets().map(|e| h.net_pins(e).len() as f64).collect(),
        routed: 0,
    }
}

fn validate_params(p: &VCycleParams) -> Result<(), CoreError> {
    if p.coarsest_nodes == 0 {
        return Err(CoreError::InvalidParams {
            what: "coarsest_nodes must be at least 1",
        });
    }
    if p.max_levels == 0 {
        return Err(CoreError::InvalidParams {
            what: "max_levels must be at least 1",
        });
    }
    if p.cap_decay_floor == 0 {
        return Err(CoreError::InvalidParams {
            what: "cap_decay_floor must be at least 1",
        });
    }
    // `>` is false for NaN, so this also rejects NaN shrink factors.
    if p.level_shrink.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
        return Err(CoreError::InvalidParams {
            what: "level_shrink must exceed 1",
        });
    }
    if !(p.cluster_cap_fraction > 0.0 && p.cluster_cap_fraction <= 1.0) {
        return Err(CoreError::InvalidParams {
            what: "cluster_cap_fraction must be in (0, 1]",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_core::runtime::CancelToken;
    use htp_model::validate;
    use htp_netlist::gen::rent::{rent_circuit, RentParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(nodes: usize, height: usize) -> (Hypergraph, TreeSpec) {
        let mut rng = StdRng::seed_from_u64(41);
        let h = rent_circuit(
            RentParams {
                nodes,
                primary_inputs: (nodes / 16).max(1),
                locality: 0.8,
                ..RentParams::default()
            },
            &mut rng,
        );
        let spec = TreeSpec::full_tree(h.total_size(), height, 2, 1.15, 1.0).unwrap();
        (h, spec)
    }

    fn quick_params() -> VCycleParams {
        VCycleParams {
            coarsest_nodes: 64,
            congestion: CongestionParams {
                pairs: 64,
                ..CongestionParams::default()
            },
            partitioner: PartitionerParams {
                iterations: 2,
                ..PartitionerParams::default()
            },
            ..VCycleParams::default()
        }
    }

    #[test]
    fn vcycle_produces_valid_multilevel_partitions() {
        let (h, spec) = workload(1024, 3);
        let mut rng = StdRng::seed_from_u64(42);
        let r = vcycle_partition(&h, &spec, quick_params(), &mut rng).unwrap();
        validate::validate(&h, &spec, &r.partition).unwrap();
        assert!(r.num_levels >= 2, "1024 -> 64 needs >= 2 shrink-4 levels");
        assert!(r.coarsest_nodes <= 4 * 64, "coarsest level near threshold");
        assert!(r.outcome.is_complete());
        assert_eq!(r.contained_panics, 0);
        assert!((cost::partition_cost(&h, &spec, &r.partition) - r.cost).abs() < 1e-9);
        for lvl in &r.levels {
            assert!(
                lvl.refined_cost <= lvl.projected_cost + 1e-9,
                "refinement never hurts at any level"
            );
        }
    }

    #[test]
    fn tiny_instances_skip_coarsening() {
        let (h, spec) = workload(128, 3);
        let mut rng = StdRng::seed_from_u64(43);
        let params = VCycleParams {
            coarsest_nodes: 512,
            ..quick_params()
        };
        let r = vcycle_partition(&h, &spec, params, &mut rng).unwrap();
        assert_eq!(r.num_levels, 0, "already below the threshold");
        assert!(r.levels.is_empty());
        validate::validate(&h, &spec, &r.partition).unwrap();
    }

    #[test]
    fn pre_cancelled_token_degrades_to_a_valid_projection() {
        let (h, spec) = workload(1024, 3);
        let mut rng = StdRng::seed_from_u64(44);
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(token);
        let r = vcycle_partition_with_budget(&h, &spec, quick_params(), &mut rng, &budget).unwrap();
        assert_eq!(r.outcome, RunOutcome::Cancelled);
        validate::validate(&h, &spec, &r.partition).unwrap();
        // Refinement was skipped on every level.
        assert!(r.levels.iter().all(|l| l.flow_pairs_tried == 0));
    }

    #[test]
    fn record_levels_snapshots_every_boundary() {
        let (h, spec) = workload(1024, 3);
        let mut rng = StdRng::seed_from_u64(45);
        let params = VCycleParams {
            record_levels: true,
            ..quick_params()
        };
        let r = vcycle_partition(&h, &spec, params, &mut rng).unwrap();
        assert_eq!(r.level_partitions.len(), r.num_levels);
        assert_eq!(r.levels.len(), r.num_levels);
    }

    #[test]
    fn cap_decay_floor_deepens_coarsening_on_rent_100k() {
        // rent:100000 is the documented stall case: giving up on the
        // first stalled level left the coarsest graph several times
        // `coarsest_nodes`, so the coarsest solve dominated the cycle.
        // Only the down pass runs here — no coarsest solve, no up pass
        // — so the regression stays cheap, and heavy-edge rating is
        // used at every level for the same reason (the stall is about
        // size caps, not rating quality).
        let mut rng = StdRng::seed_from_u64(48);
        let h = rent_circuit(
            RentParams {
                nodes: 100_000,
                primary_inputs: 100_000 / 16,
                locality: 0.8,
                ..RentParams::default()
            },
            &mut rng,
        );
        let spec = TreeSpec::full_tree(h.total_size(), 4, 2, 1.10, 1.0).unwrap();
        let params = VCycleParams {
            congestion_max_nodes: 0,
            ..VCycleParams::default()
        };
        let budget = Budget::unlimited();
        let down = down_pass(&h, &spec, &params, &mut rng, &budget);
        let deep = down.coarse_graphs.last().unwrap().num_nodes();

        // The legacy behaviour — stop at the first stall — is exactly
        // the decay floor pinned at `coarsest_nodes`.
        let legacy = VCycleParams {
            cap_decay_floor: params.coarsest_nodes,
            ..params
        };
        let down = down_pass(&h, &spec, &legacy, &mut rng, &budget);
        let plateau = down.coarse_graphs.last().unwrap().num_nodes();

        assert!(
            deep < plateau,
            "the decay floor coarsens strictly deeper: {deep} vs the {plateau}-node plateau"
        );
        assert!(
            deep <= 3 * params.coarsest_nodes,
            "the down pass bottoms out near the threshold, got {deep} nodes"
        );
    }

    #[test]
    fn packing_precheck_is_a_sound_screen() {
        let spec = TreeSpec::new(vec![(16, 2, 1.0), (32, 2, 1.0)]).unwrap();
        // Unit sizes always pack: every window sum is reachable.
        assert!(packing_infeasibility(&[1; 30], &spec).is_none());
        // Three 10s must carve a block of size in [14, 16] at the top,
        // but subset sums are multiples of 10 — provably unpackable.
        assert!(matches!(
            packing_infeasibility(&[10, 10, 10], &spec),
            Some(CoreError::NoFeasibleCut {
                level: 1,
                remaining: 30,
                lb: 14,
                ub: 16,
            })
        ));
        // The same total with a finer tail closes the gap (10 + 6 = 16).
        assert!(packing_infeasibility(&[10, 6, 10, 4], &spec).is_none());
        // A node above the leaf capacity can never be placed.
        assert!(matches!(
            packing_infeasibility(&[20, 5], &spec),
            Some(CoreError::NoFeasibleCut { level: 0, .. })
        ));
        // A total above the root capacity is Infeasible, not NoFeasibleCut.
        assert!(matches!(
            packing_infeasibility(&[16, 16, 16], &spec),
            Some(CoreError::Infeasible { .. })
        ));
        // Total over K_top * C_{top-1} without any single oversized node.
        let deep = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 1.0), (32, 2, 1.0)]).unwrap();
        assert!(matches!(
            packing_infeasibility(&[4, 4, 4, 4, 4], &deep),
            Some(CoreError::NoFeasibleCut { level: 2, .. })
        ));
        // Empty input is trivially packable.
        assert!(packing_infeasibility(&[], &spec).is_none());
    }

    #[test]
    fn provably_unpackable_inputs_fail_fast_without_a_metric_run() {
        // Five size-6 nodes against a [14, 16] top window: subset sums
        // are multiples of 6, so no feasible carve exists. The pre-check
        // must reject before the budget is charged a single metric round.
        let mut b = htp_netlist::HypergraphBuilder::new();
        let nodes: Vec<_> = (0..5).map(|_| b.add_node(6)).collect();
        for w in nodes.windows(2) {
            b.add_net(1.0, w.iter().copied()).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(16, 2, 1.0), (32, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let budget = Budget::unlimited();
        let err =
            vcycle_partition_with_budget(&h, &spec, VCycleParams::default(), &mut rng, &budget)
                .unwrap_err();
        assert!(matches!(err, CoreError::NoFeasibleCut { .. }));
        assert_eq!(budget.rounds_used(), 0, "rejected before any metric run");
    }

    #[test]
    fn bad_params_are_typed_errors() {
        let (h, spec) = workload(128, 3);
        let mut rng = StdRng::seed_from_u64(46);
        for params in [
            VCycleParams {
                coarsest_nodes: 0,
                ..VCycleParams::default()
            },
            VCycleParams {
                level_shrink: 1.0,
                ..VCycleParams::default()
            },
            VCycleParams {
                cluster_cap_fraction: 0.0,
                ..VCycleParams::default()
            },
            VCycleParams {
                max_levels: 0,
                ..VCycleParams::default()
            },
            VCycleParams {
                cap_decay_floor: 0,
                ..VCycleParams::default()
            },
        ] {
            assert!(matches!(
                vcycle_partition(&h, &spec, params, &mut rng),
                Err(CoreError::InvalidParams { .. })
            ));
        }
    }
}
