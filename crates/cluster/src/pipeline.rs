//! The cluster-coarsened FLOW pipeline (a two-level multilevel scheme).
//!
//! 1. Compute a congestion profile and agglomerate nodes into clusters no
//!    bigger than a fraction of the leaf capacity `C_0`.
//! 2. Contract the netlist and run the flow-based partitioner on the
//!    (much smaller) coarse netlist.
//! 3. Project the coarse partition back to the fine netlist.
//! 4. Optionally refine with the hierarchical FM pass.
//!
//! Coarsening shrinks the dominant cost of Algorithm 2 (its Dijkstra
//! sweeps) roughly quadratically in the contraction factor, at some loss
//! of fine-grained freedom that step 4 wins back.
//!
//! The whole path is budget-aware: the coarse solve runs under the
//! caller's [`Budget`], refinement is skipped once the deadline or cancel
//! token fires, and the result reports how the run ended as a
//! [`RunOutcome`]. For more than two levels, see [`crate::vcycle`].

use rand::Rng;

use htp_baselines::hfm::{improve, HfmParams};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::runtime::{Budget, RunOutcome};
use htp_core::CoreError;
use htp_model::{cost, HierarchicalPartition, PartitionBuilder, TreeSpec, VertexId};
use htp_netlist::{Hypergraph, NodeId};

use crate::clusters::{agglomerate, Clustering};
use crate::congestion::{flow_congestion, CongestionParams};

/// Parameters of the coarsened pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusteredFlowParams {
    /// Congestion-profile parameters.
    pub congestion: CongestionParams,
    /// Cluster size cap as a fraction of the leaf capacity `C_0`
    /// (must be in `(0, 1]`; smaller keeps more placement freedom).
    pub cluster_cap_fraction: f64,
    /// Inner partitioner parameters (run on the coarse netlist).
    pub partitioner: PartitionerParams,
    /// Run the hierarchical FM refinement on the projected partition.
    pub refine: bool,
}

impl Default for ClusteredFlowParams {
    fn default() -> Self {
        ClusteredFlowParams {
            congestion: CongestionParams::default(),
            cluster_cap_fraction: 0.125,
            partitioner: PartitionerParams::default(),
            refine: true,
        }
    }
}

/// Result of the pipeline.
#[derive(Clone, Debug)]
pub struct ClusteredFlowResult {
    /// The final fine-level partition.
    pub partition: HierarchicalPartition,
    /// Its interconnection cost.
    pub cost: f64,
    /// Cost right after projection, before refinement.
    pub projected_cost: f64,
    /// The clustering used for coarsening.
    pub clustering: Clustering,
    /// Size of the coarse netlist.
    pub coarse_nodes: usize,
    /// How the budgeted run ended ([`RunOutcome::Complete`] when nothing
    /// fired; any other value means the partition was salvaged early).
    pub outcome: RunOutcome,
}

/// Runs the cluster → FLOW → project → refine pipeline with no budget.
///
/// # Errors
///
/// Propagates [`CoreError`] from the inner partitioner (infeasible specs,
/// no feasible cuts) and from projection.
///
/// # Panics
///
/// Panics if `cluster_cap_fraction` is outside `(0, 1]`.
pub fn clustered_flow_partition<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: ClusteredFlowParams,
    rng: &mut R,
) -> Result<ClusteredFlowResult, CoreError> {
    clustered_flow_partition_with_budget(h, spec, params, rng, &Budget::unlimited())
}

/// Runs the cluster → FLOW → project → refine pipeline under `budget`.
///
/// The coarse FLOW solve consumes the budget's rounds/probes and honours
/// its deadline and cancel token. When the budget fires before the coarse
/// solve can salvage anything (e.g. a pre-cancelled token), one bounded
/// salvage round still produces a valid partition, refinement is skipped,
/// and the interrupt is reported in
/// [`ClusteredFlowResult::outcome`] — the pipeline never runs to
/// completion past an exhausted budget, but it also never returns empty-
/// handed for a feasible instance.
///
/// # Errors
///
/// Propagates [`CoreError`] from the inner partitioner (infeasible specs,
/// no feasible cuts), from projection, and from refinement.
///
/// # Panics
///
/// Panics if `cluster_cap_fraction` is outside `(0, 1]`.
pub fn clustered_flow_partition_with_budget<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: ClusteredFlowParams,
    rng: &mut R,
    budget: &Budget,
) -> Result<ClusteredFlowResult, CoreError> {
    assert!(
        params.cluster_cap_fraction > 0.0 && params.cluster_cap_fraction <= 1.0,
        "cluster_cap_fraction must be in (0, 1]"
    );
    if h.num_nodes() == 0 {
        return Err(CoreError::EmptyNetlist);
    }

    // 1. Cluster under a cap that keeps coarse nodes placeable.
    let cap = ((spec.capacity(0) as f64 * params.cluster_cap_fraction).floor() as u64).max(1);
    let profile = flow_congestion(h, params.congestion, rng);
    let clustering = agglomerate(h, &profile, cap);

    // 2. Contract and partition the coarse netlist under the budget.
    let coarse = h.contract(&clustering.cluster_of);
    let partitioner = FlowPartitioner::try_new(params.partitioner)?;
    let (coarse_partition, mut outcome) = solve_budgeted(&partitioner, &coarse, spec, rng, budget)?;

    // 3. Project back.
    let partition = project(&coarse_partition, &clustering.cluster_of, h.num_nodes())?;
    htp_model::validate::validate(h, spec, &partition)?;
    let projected_cost = cost::partition_cost(h, spec, &partition);

    // 4. Refine, unless the budget has already fired.
    let refine_allowed = match budget.check_time() {
        Ok(()) => true,
        Err(irq) => {
            outcome = outcome.combine(RunOutcome::from_interrupt(irq));
            false
        }
    };
    let (partition, final_cost) = if params.refine && refine_allowed {
        refine_partition(h, spec, &partition)?
    } else {
        (partition, projected_cost)
    };

    Ok(ClusteredFlowResult {
        partition,
        cost: final_cost,
        projected_cost,
        clustering,
        coarse_nodes: coarse.num_nodes(),
        outcome,
    })
}

/// Runs the inner partitioner under `budget`, falling back to one bounded
/// salvage round when the budget fires before anything was found. Used by
/// this pipeline, the V-cycle's coarsest solve, and the job server's
/// flat path.
///
/// # Errors
///
/// Propagates [`CoreError`] from the partitioner; an interrupt with a
/// successful salvage round is *not* an error (the interrupt stays
/// visible in the returned [`RunOutcome`]).
pub fn solve_budgeted<R: Rng + ?Sized>(
    partitioner: &FlowPartitioner,
    h: &Hypergraph,
    spec: &TreeSpec,
    rng: &mut R,
    budget: &Budget,
) -> Result<(HierarchicalPartition, RunOutcome), CoreError> {
    match partitioner.run_with_budget(h, spec, rng, budget) {
        Ok(run) => Ok((run.result.partition, run.outcome)),
        Err(CoreError::Interrupted(irq)) => {
            // The budget died before the solver could salvage anything.
            // One bounded round still yields a valid (if rough) partition;
            // the interrupt stays visible in the outcome.
            let salvage = Budget::unlimited().with_max_rounds(1);
            let run = partitioner.run_with_budget(h, spec, rng, &salvage)?;
            Ok((run.result.partition, RunOutcome::from_interrupt(irq)))
        }
        Err(e) => Err(e),
    }
}

/// Improves `p` with the hierarchical FM pass, mapping every baseline
/// failure to a typed [`CoreError`] (an invalid partition surfaces as
/// [`CoreError::Model`], anything else as [`CoreError::Refinement`] —
/// never a panic).
///
/// # Errors
///
/// Returns [`CoreError::Model`] when `p` is not a valid partition of `h`,
/// and [`CoreError::Refinement`] for any other baseline-layer failure.
pub fn refine_partition(
    h: &Hypergraph,
    spec: &TreeSpec,
    p: &HierarchicalPartition,
) -> Result<(HierarchicalPartition, f64), CoreError> {
    match improve(h, spec, p, HfmParams::default()) {
        Ok(r) => {
            let c = r.cost_after;
            Ok((r.partition, c))
        }
        Err(htp_baselines::BaselineError::Model(m)) => Err(CoreError::Model(m)),
        Err(other) => Err(CoreError::Refinement {
            what: format!("hierarchical FM failed on the projected partition: {other}"),
        }),
    }
}

/// Replicates the coarse partition's tree for the fine netlist, assigning
/// each fine node to its cluster's leaf.
pub(crate) fn project(
    coarse: &HierarchicalPartition,
    cluster_of: &[usize],
    fine_nodes: usize,
) -> Result<HierarchicalPartition, htp_model::ModelError> {
    let mut b = PartitionBuilder::new(fine_nodes, coarse.root_level());
    let mut map = vec![VertexId(0); coarse.num_vertices()];
    map[coarse.root().index()] = b.root();
    let mut queue = vec![coarse.root()];
    while let Some(q) = queue.pop() {
        for &c in coarse.children(q) {
            let fine_vertex = b.add_child(map[q.index()], coarse.level(c))?;
            map[c.index()] = fine_vertex;
            queue.push(c);
        }
    }
    for (v, &cl) in cluster_of.iter().enumerate().take(fine_nodes) {
        let coarse_leaf = coarse.leaf_of(NodeId::new(cl));
        b.assign(NodeId::new(v), map[coarse_leaf.index()])?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_core::runtime::CancelToken;
    use htp_model::validate;
    use htp_netlist::gen::rent::{rent_circuit, RentParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (Hypergraph, TreeSpec) {
        let mut rng = StdRng::seed_from_u64(12);
        let h = rent_circuit(
            RentParams {
                nodes: 256,
                primary_inputs: 16,
                locality: 0.8,
                ..RentParams::default()
            },
            &mut rng,
        );
        let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.15, 1.0).unwrap();
        (h, spec)
    }

    #[test]
    fn pipeline_produces_valid_partitions() {
        let (h, spec) = workload();
        let mut rng = StdRng::seed_from_u64(13);
        let r =
            clustered_flow_partition(&h, &spec, ClusteredFlowParams::default(), &mut rng).unwrap();
        validate::validate(&h, &spec, &r.partition).unwrap();
        assert!(
            r.coarse_nodes < h.num_nodes(),
            "coarsening must shrink the netlist"
        );
        assert!(r.cost <= r.projected_cost + 1e-9, "refinement never hurts");
        assert!((cost::partition_cost(&h, &spec, &r.partition) - r.cost).abs() < 1e-9);
        assert!(r.outcome.is_complete(), "unbudgeted runs complete");
    }

    #[test]
    fn unrefined_pipeline_reports_projected_cost() {
        let (h, spec) = workload();
        let mut rng = StdRng::seed_from_u64(14);
        let params = ClusteredFlowParams {
            refine: false,
            ..Default::default()
        };
        let r = clustered_flow_partition(&h, &spec, params, &mut rng).unwrap();
        assert_eq!(r.cost, r.projected_cost);
    }

    #[test]
    fn coarse_quality_is_in_the_same_league_as_flat_flow() {
        let (h, spec) = workload();
        let mut rng = StdRng::seed_from_u64(15);
        let coarse =
            clustered_flow_partition(&h, &spec, ClusteredFlowParams::default(), &mut rng).unwrap();
        let flat = FlowPartitioner::try_new(PartitionerParams::default())
            .unwrap()
            .run(&h, &spec, &mut rng)
            .unwrap();
        assert!(
            coarse.cost <= 2.0 * flat.cost,
            "coarsened {} should not collapse vs flat {}",
            coarse.cost,
            flat.cost
        );
    }

    #[test]
    fn empty_netlist_is_rejected() {
        let h = htp_netlist::HypergraphBuilder::new().build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            clustered_flow_partition(&h, &spec, ClusteredFlowParams::default(), &mut rng),
            Err(CoreError::EmptyNetlist)
        ));
    }

    #[test]
    fn projection_preserves_block_comembership() {
        let (h, spec) = workload();
        let mut rng = StdRng::seed_from_u64(16);
        let params = ClusteredFlowParams {
            refine: false,
            ..Default::default()
        };
        let r = clustered_flow_partition(&h, &spec, params, &mut rng).unwrap();
        // Nodes in one cluster must share a leaf after projection.
        for v in 0..h.num_nodes() {
            for u in v + 1..h.num_nodes() {
                if r.clustering.cluster_of[v] == r.clustering.cluster_of[u] {
                    assert_eq!(
                        r.partition.leaf_of(NodeId::new(v)),
                        r.partition.leaf_of(NodeId::new(u))
                    );
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_token_interrupts_but_salvages_a_valid_partition() {
        let (h, spec) = workload();
        let mut rng = StdRng::seed_from_u64(17);
        let token = CancelToken::new();
        token.cancel(); // cancelled before the pipeline even starts
        let budget = Budget::unlimited().with_cancel_token(token);
        let r = clustered_flow_partition_with_budget(
            &h,
            &spec,
            ClusteredFlowParams::default(),
            &mut rng,
            &budget,
        )
        .unwrap();
        assert_eq!(
            r.outcome,
            RunOutcome::Cancelled,
            "the interrupt must be visible, not swallowed"
        );
        // Refinement was skipped: the salvaged result is the projection.
        assert_eq!(r.cost, r.projected_cost);
        validate::validate(&h, &spec, &r.partition).unwrap();
    }

    #[test]
    fn expired_deadline_reports_and_still_returns_valid_work() {
        let (h, spec) = workload();
        let mut rng = StdRng::seed_from_u64(18);
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = clustered_flow_partition_with_budget(
            &h,
            &spec,
            ClusteredFlowParams::default(),
            &mut rng,
            &budget,
        )
        .unwrap();
        assert_eq!(r.outcome, RunOutcome::DeadlineExceeded);
        validate::validate(&h, &spec, &r.partition).unwrap();
    }

    #[test]
    fn corrupted_partition_surfaces_a_typed_error_not_a_panic() {
        let (h, spec) = workload();
        // Cram every node into one leaf: wildly over capacity, so the FM
        // baseline must reject it — through a typed error, never a panic.
        let mut rng = StdRng::seed_from_u64(19);
        let good = clustered_flow_partition(
            &h,
            &spec,
            ClusteredFlowParams {
                refine: false,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap()
        .partition;
        let one_leaf = good.leaf_of(NodeId::new(0));
        let corrupted = good.with_assignment(vec![one_leaf; h.num_nodes()]).unwrap();
        let err = refine_partition(&h, &spec, &corrupted).unwrap_err();
        assert!(
            matches!(err, CoreError::Model(_) | CoreError::Refinement { .. }),
            "expected a typed refinement error, got {err:?}"
        );
    }
}
