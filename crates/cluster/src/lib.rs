//! Circuit clustering by stochastic flow injection, and a cluster-coarsened
//! FLOW pipeline.
//!
//! The paper's Algorithm 2 descends from the clustering method of Yeh,
//! Cheng & Lin (its reference \[17\]): inject flow on shortest paths between
//! randomly chosen node pairs, re-price nets exponentially in their
//! congestion, and read the cluster structure off the resulting
//! congestion profile — lightly-used nets are intra-cluster, saturated
//! nets separate clusters. This crate implements that ancestor technique
//! and puts it to work as a *coarsening stage* in front of the flow-based
//! partitioner (the multilevel pattern that later dominated the field):
//!
//! * [`congestion`] — pairwise stochastic flow injection; per-net flows.
//! * [`clusters`] — size-capped agglomeration along low-congestion nets.
//! * [`pipeline`] — cluster → contract → FLOW on the coarse netlist →
//!   project back → optional hierarchical-FM refinement (two levels).
//! * [`vcycle`] — the full multilevel V-cycle: recursive coarsening, FLOW
//!   at the coarsest level, flow-based boundary refinement per level.
//! * [`refine`] — the Heuer–Sanders–Schlag-style flow refinement pass.

// Library code must surface failures as typed errors, not panics.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod clusters;
pub mod congestion;
pub mod pipeline;
pub mod refine;
pub mod vcycle;
