//! Flow-based boundary refinement (Heuer–Sanders–Schlag style), with a
//! deterministic parallel proposal phase.
//!
//! For a pair of leaf blocks joined by cut nets, carve out the boundary
//! region, model it as a Lawler flow network (each net becomes a
//! bridge-arc gadget whose capacity is the net's marginal cost of
//! spanning both blocks), and re-split the region along a minimum cut.
//! The min-cut side assignment proposes a set of node moves; a proposal
//! is accepted only if it keeps every ancestor block within capacity
//! *and* strictly lowers the exact multilevel cost — so refinement can
//! never invalidate or worsen a partition, which is what lets the
//! V-cycle certify after every level.
//!
//! # Parallel structure
//!
//! The pass follows the same speculative-probe/sequential-commit
//! discipline as the metric injector's probe pool
//! ([`htp_core::pool`]): the ranked pair list is greedily packed into
//! **batches of vertex-disjoint pairs** (no leaf block appears twice in
//! a batch, and a boundary region only ever contains nodes of its own
//! two blocks, so regions in a batch cannot overlap). Each batch's
//! Lawler gadgets are built and min-cut against the batch-start
//! snapshot on a scoped worker pool, then the accepted moves are
//! committed sequentially in the batch's fixed order, each re-validated
//! exactly by the commit-time apply check. Proposals are a pure function
//! of the snapshot and commits are ordered, so the refined partition is
//! **bit-identical at any [`FlowRefineParams::threads`] setting**.
//!
//! # The estimated-gain gate
//!
//! A gadget whose min cut cannot beat the current pair cut is pure
//! waste (BENCH_6 showed `24 tried / 0 accepted` at *every* rent
//! level). Before running max-flow the engine bounds the achievable
//! modeled gain: every net anchored out-of-region to **both** blocks is
//! saturated in every s–t cut, so
//! `upper_gain = Σ w(spanning nets) − Σ w(doubly anchored nets)`.
//! When that bound is at most [`FlowRefineParams::min_gain`] the pair
//! is skipped — counted in [`FlowRefineReport::pairs_skipped`], its
//! discarded bound summed into
//! [`FlowRefineReport::skipped_gain_bound`] — and the region-halving
//! retries are skipped too (shrinking a region only adds anchors, so
//! the bound can only fall).

use std::collections::HashMap;

use htp_core::runtime::{Budget, Interrupt};
use htp_core::CoreError;
use htp_graph::maxflow::FlowNetwork;
use htp_model::{HierarchicalPartition, TreeSpec, VertexId};
use htp_netlist::{Hypergraph, NetId, NodeId};

/// Parameters of one flow-refinement pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRefineParams {
    /// Maximum number of block pairs to refine per pass, in descending
    /// cut-weight order.
    pub max_pairs: usize,
    /// Maximum boundary-region nodes per side; larger regions give the
    /// min-cut more freedom but cost more per pair.
    pub max_region: usize,
    /// Nets spanning more than this many leaves are ignored when ranking
    /// block pairs (they are cut whatever the pair decides).
    pub max_span_for_pairs: usize,
    /// Skip a pair when the gadget's modeled gain upper bound is at most
    /// this (see the [module docs](self)); `0.0` disables only for
    /// exactly-zero bounds.
    pub min_gain: f64,
    /// Worker threads for the proposal phase: `1` proposes inline, `0`
    /// uses all available parallelism. The refined partition is
    /// bit-identical at every setting.
    pub threads: usize,
}

impl Default for FlowRefineParams {
    fn default() -> Self {
        FlowRefineParams {
            max_pairs: 24,
            max_region: 1500,
            max_span_for_pairs: 8,
            min_gain: 1e-9,
            threads: 1,
        }
    }
}

/// What one flow-refinement pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowRefineReport {
    /// Block pairs whose gadget went to the max-flow stage.
    pub pairs_tried: usize,
    /// Pairs whose min-cut move was feasible and strictly improving.
    pub pairs_accepted: usize,
    /// Pairs skipped by the estimated-gain gate before max-flow.
    pub pairs_skipped: usize,
    /// Sum of the (non-negative) gain upper bounds the gate discarded;
    /// stays near zero when the gate only skips genuinely hopeless pairs.
    pub skipped_gain_bound: f64,
    /// Nodes that changed leaf.
    pub moved_nodes: usize,
    /// Total cost decrease (non-negative by construction).
    pub gain: f64,
    /// Set when the budget stopped the pass early.
    pub interrupt: Option<Interrupt>,
}

/// One refinement task: a ranked leaf pair plus the nets that spanned
/// both of its blocks at pass start (the gadget seeds, ascending id).
struct PairTask {
    ra: usize,
    rb: usize,
    seeds: Vec<NetId>,
}

/// Outcome of one gadget proposal.
enum Proposal {
    /// Min-cut node moves `(node index, target rank)`.
    Moves(Vec<(usize, usize)>),
    /// The estimated-gain gate fired; carries the discarded bound.
    Gated(f64),
    /// No boundary, or the min cut moves nothing.
    Empty,
}

/// Runs one flow-based boundary-refinement pass over the heaviest cut
/// pairs of `p`, returning the refined partition, its exact cost, and a
/// report. The result never costs more than `start_cost` and always stays
/// valid under `spec`.
///
/// # Errors
///
/// Returns [`CoreError::Model`] if an accepted assignment cannot be
/// rebuilt into a partition (cannot happen for in-range moves; surfaced
/// rather than unwrapped).
pub fn flow_refine_pass(
    h: &Hypergraph,
    spec: &TreeSpec,
    p: &HierarchicalPartition,
    start_cost: f64,
    params: &FlowRefineParams,
    budget: &Budget,
) -> Result<(HierarchicalPartition, f64, FlowRefineReport), CoreError> {
    let mut report = FlowRefineReport::default();
    let engine = RefineEngine::new(h, spec, p);
    let mut state = RefineState::new(h, p);

    let tasks = engine.ranked_tasks(&state, params);

    // Greedy first-fit batching: a pair joins the earliest batch in which
    // neither of its blocks already appears. Regions only contain nodes
    // of their own two blocks, so pairs in a batch touch disjoint nodes.
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut batch_ranks: Vec<Vec<usize>> = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let slot = batch_ranks
            .iter()
            .position(|ranks| !ranks.contains(&t.ra) && !ranks.contains(&t.rb));
        match slot {
            Some(b) => {
                batches[b].push(i);
                batch_ranks[b].extend([t.ra, t.rb]);
            }
            None => {
                batches.push(vec![i]);
                batch_ranks.push(vec![t.ra, t.rb]);
            }
        }
    }

    'pass: for batch in &batches {
        if let Err(irq) = budget.check_time() {
            report.interrupt = Some(irq);
            break 'pass;
        }
        // Proposal phase: every pair in the batch against the batch-start
        // snapshot, on the shared scoped pool. Slot i belongs to pair
        // batch[i], so the result vector is thread-count independent.
        let state_ref = &state;
        let proposals = htp_core::parallel_fill(batch.len(), params.threads, |i| {
            let t = &tasks[batch[i]];
            engine.propose(state_ref, t, params.max_region, params.min_gain)
        });

        // Commit phase: sequential, in the batch's fixed order, each
        // proposal re-validated exactly against the *current* state.
        for (&ti, proposal) in batch.iter().zip(proposals) {
            let t = &tasks[ti];
            match proposal {
                Proposal::Gated(bound) => {
                    report.pairs_skipped += 1;
                    report.skipped_gain_bound += bound;
                }
                Proposal::Empty => report.pairs_tried += 1,
                Proposal::Moves(moves) => {
                    report.pairs_tried += 1;
                    if let Some(gain) = state.try_apply(&engine, &moves) {
                        report.pairs_accepted += 1;
                        report.moved_nodes += moves.len();
                        report.gain += gain;
                        continue;
                    }
                    // Region scaling: a min cut over a large region can
                    // propose a bulk move no nearly-full block absorbs.
                    // Halving pulls the cut toward the boundary (more
                    // anchors, smaller move sets) until a proposal fits.
                    // Retries run inline against the current state, so
                    // the commit order stays deterministic.
                    let mut max_region = params.max_region / 2;
                    while max_region >= 8 {
                        match engine.propose(&state, t, max_region, params.min_gain) {
                            Proposal::Moves(m) => {
                                if let Some(gain) = state.try_apply(&engine, &m) {
                                    report.pairs_accepted += 1;
                                    report.moved_nodes += m.len();
                                    report.gain += gain;
                                    break;
                                }
                            }
                            // Gated or empty at a smaller region: smaller
                            // regions only lower the bound — stop.
                            _ => break,
                        }
                        max_region /= 2;
                    }
                }
            }
        }
    }

    if report.moved_nodes == 0 {
        return Ok((p.clone(), start_cost, report));
    }
    let refined = p.with_assignment(state.assign)?;
    let cost = start_cost - report.gain;
    Ok((refined, cost, report))
}

/// Immutable per-pass context: leaf chains, weights, net pins.
struct RefineEngine<'a> {
    h: &'a Hypergraph,
    spec: &'a TreeSpec,
    /// Leaf vertices in id order; `rank` is an index into this.
    leaves: Vec<VertexId>,
    /// `chain[rank][l]` — raw vertex id of the leaf's block at level `l`,
    /// for `l < root_level` (the levels the cost counts).
    chain: Vec<Vec<u32>>,
    /// Ancestor vertices of each leaf, bottom-up, excluding the root.
    ancestors: Vec<Vec<VertexId>>,
    /// Level of every vertex (for ancestor capacity checks).
    vertex_level: Vec<usize>,
    levels: usize,
}

impl<'a> RefineEngine<'a> {
    fn new(h: &'a Hypergraph, spec: &'a TreeSpec, p: &HierarchicalPartition) -> Self {
        let leaves = p.leaves();
        let levels = p.root_level();
        let mut chain = Vec::with_capacity(leaves.len());
        let mut ancestors = Vec::with_capacity(leaves.len());
        for &leaf in &leaves {
            let mut row = vec![0u32; levels];
            let mut cur = leaf;
            let mut next = p.parent(cur);
            for (l, slot) in row.iter_mut().enumerate() {
                while let Some(q) = next {
                    if p.level(q) <= l {
                        cur = q;
                        next = p.parent(cur);
                    } else {
                        break;
                    }
                }
                *slot = cur.0;
            }
            let mut anc = Vec::new();
            let mut cur = leaf;
            while let Some(q) = p.parent(cur) {
                if p.parent(q).is_some() {
                    anc.push(q);
                }
                cur = q;
            }
            chain.push(row);
            ancestors.push(anc);
        }
        let vertex_level = p.vertices().map(|q| p.level(q)).collect();
        RefineEngine {
            h,
            spec,
            leaves,
            chain,
            ancestors,
            vertex_level,
            levels,
        }
    }

    /// Lowest level at which two leaves share a block (`levels` when they
    /// only meet at the root).
    fn divergence(&self, ra: usize, rb: usize) -> usize {
        (0..self.levels)
            .find(|&l| self.chain[ra][l] == self.chain[rb][l])
            .unwrap_or(self.levels)
    }

    /// Marginal cost a net of capacity `c` pays for spanning both leaves,
    /// summed over the levels where they sit in different blocks.
    fn bridge_weight(&self, ra: usize, rb: usize, c: f64) -> f64 {
        let div = self.divergence(ra, rb);
        (0..div).map(|l| self.spec.weight(l) * c).sum()
    }

    /// Leaf pairs joined by cut nets, heaviest total cut first, capped at
    /// `max_pairs`, each carrying its seed nets (every net with pins in
    /// both blocks at pass start, ascending id). Two net passes total,
    /// instead of the old one-full-scan-per-pair seed search.
    fn ranked_tasks(&self, state: &RefineState, params: &FlowRefineParams) -> Vec<PairTask> {
        let mut weight: HashMap<(usize, usize), f64> = HashMap::new();
        let mut spanned: Vec<usize> = Vec::new();
        for e in self.h.nets() {
            spanned.clear();
            spanned.extend(self.h.net_pins(e).iter().map(|&v| state.rank[v.index()]));
            spanned.sort_unstable();
            spanned.dedup();
            if spanned.len() < 2 || spanned.len() > params.max_span_for_pairs {
                continue;
            }
            let c = self.h.net_capacity(e);
            for i in 0..spanned.len() {
                for j in i + 1..spanned.len() {
                    *weight.entry((spanned[i], spanned[j])).or_insert(0.0) +=
                        self.bridge_weight(spanned[i], spanned[j], c);
                }
            }
        }
        let mut pairs: Vec<((usize, usize), f64)> = weight.into_iter().collect();
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut tasks: Vec<PairTask> = pairs
            .into_iter()
            .take(params.max_pairs)
            .map(|((ra, rb), _)| PairTask {
                ra,
                rb,
                seeds: Vec::new(),
            })
            .collect();

        // Second pass: hand every net (any span — wide nets seed regions
        // too) to each selected pair whose two blocks it touches.
        let mut tasks_of_rank: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, t) in tasks.iter().enumerate() {
            tasks_of_rank.entry(t.ra).or_default().push(i);
            tasks_of_rank.entry(t.rb).or_default().push(i);
        }
        let mut hits: Vec<u8> = vec![0; tasks.len()];
        let mut touched: Vec<usize> = Vec::new();
        for e in self.h.nets() {
            spanned.clear();
            spanned.extend(self.h.net_pins(e).iter().map(|&v| state.rank[v.index()]));
            spanned.sort_unstable();
            spanned.dedup();
            if spanned.len() < 2 {
                continue;
            }
            for &r in &spanned {
                if let Some(ids) = tasks_of_rank.get(&r) {
                    for &i in ids {
                        if hits[i] == 0 {
                            touched.push(i);
                        }
                        hits[i] += 1;
                    }
                }
            }
            for &i in &touched {
                if hits[i] == 2 {
                    tasks[i].seeds.push(e);
                }
                hits[i] = 0;
            }
            touched.clear();
        }
        tasks
    }

    /// Builds the boundary flow network for the pair and proposes the
    /// min-cut node moves, or gates the pair when the modeled gain bound
    /// is at most `min_gain`. The seed list is a superset computed at
    /// pass start; nets no longer spanning both blocks under `state` are
    /// filtered here, so stale entries cost one pin scan.
    fn propose(
        &self,
        state: &RefineState,
        task: &PairTask,
        max_region: usize,
        min_gain: f64,
    ) -> Proposal {
        let (ra, rb) = (task.ra, task.rb);
        // Per-side regions, grown breadth-first from the boundary. Capping
        // each side separately keeps the movable mass balanced.
        let side_cap = (max_region / 2).max(4);
        let mut in_region = vec![false; self.h.num_nodes()];
        let mut side_nodes: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut nets: Vec<NetId> = Vec::new();
        let mut net_seen = vec![false; self.h.num_nets()];
        let side_of = |r: usize| {
            if r == ra {
                Some(0)
            } else if r == rb {
                Some(1)
            } else {
                None
            }
        };

        // Seeds: pins of the nets spanning both blocks.
        for &e in &task.seeds {
            let pins = self.h.net_pins(e);
            let mut hits_a = false;
            let mut hits_b = false;
            for &v in pins {
                let r = state.rank[v.index()];
                hits_a |= r == ra;
                hits_b |= r == rb;
            }
            if !(hits_a && hits_b) {
                continue;
            }
            net_seen[e.index()] = true;
            nets.push(e);
            for &v in pins {
                let Some(s) = side_of(state.rank[v.index()]) else {
                    continue;
                };
                if !in_region[v.index()] && side_nodes[s].len() < side_cap {
                    in_region[v.index()] = true;
                    side_nodes[s].push(v.index());
                }
            }
        }
        if side_nodes[0].is_empty() && side_nodes[1].is_empty() {
            return Proposal::Empty;
        }

        // Grow one hop inside the two blocks so the cut can move interior
        // nodes together with their boundary neighbours.
        let seeds = [side_nodes[0].len(), side_nodes[1].len()];
        for s in 0..2 {
            for i in 0..seeds[s] {
                for &e in self.h.node_nets(NodeId::new(side_nodes[s][i])) {
                    if net_seen[e.index()] {
                        continue;
                    }
                    net_seen[e.index()] = true;
                    nets.push(e);
                    for &u in self.h.net_pins(e) {
                        let Some(su) = side_of(state.rank[u.index()]) else {
                            continue;
                        };
                        if !in_region[u.index()] && side_nodes[su].len() < side_cap {
                            in_region[u.index()] = true;
                            side_nodes[su].push(u.index());
                        }
                    }
                }
            }
        }

        // Frontier: every remaining net incident to a region node joins the
        // gadget *without* its pins, so its out-of-region pins anchor the
        // cut to S or T — without this the min cut degenerates into
        // sweeping one whole side across.
        for side in &side_nodes {
            for &v in side {
                for &e in self.h.node_nets(NodeId::new(v)) {
                    if !net_seen[e.index()] {
                        net_seen[e.index()] = true;
                        nets.push(e);
                    }
                }
            }
        }

        // A side whose block sits entirely inside the region has no anchors
        // at all; retain its deepest (last-grown) eighth as out-of-region
        // core so the cut cannot dissolve the block.
        for (s, side) in side_nodes.iter_mut().enumerate() {
            let anchored = nets.iter().any(|&e| {
                self.h
                    .net_pins(e)
                    .iter()
                    .any(|&v| !in_region[v.index()] && side_of(state.rank[v.index()]) == Some(s))
            });
            if !anchored && !side.is_empty() {
                let keep = side.len() - side.len().div_ceil(8);
                for &v in &side[keep..] {
                    in_region[v] = false;
                }
                side.truncate(keep);
            }
        }
        let region: Vec<usize> = side_nodes.iter().flatten().copied().collect();
        if region.is_empty() {
            return Proposal::Empty;
        }

        // Estimated-gain gate, before any max-flow work. A net whose pins
        // all left the region pays the same on either side of any cut; a
        // net anchored out-of-region to both blocks is saturated in every
        // s–t cut. What remains — currently-spanning nets that the cut
        // could pull to one side — bounds the modeled gain from above.
        let mut upper_gain = 0.0;
        for &e in &nets {
            let w = self.bridge_weight(ra, rb, self.h.net_capacity(e));
            if w <= 0.0 {
                continue;
            }
            let pins = self.h.net_pins(e);
            let mut any_in_region = false;
            let mut hits_a = false;
            let mut hits_b = false;
            let mut anchored_a = false;
            let mut anchored_b = false;
            for &v in pins {
                let r = state.rank[v.index()];
                hits_a |= r == ra;
                hits_b |= r == rb;
                if in_region[v.index()] {
                    any_in_region = true;
                } else {
                    anchored_a |= r == ra;
                    anchored_b |= r == rb;
                }
            }
            if any_in_region && hits_a && hits_b && !(anchored_a && anchored_b) {
                upper_gain += w;
            }
        }
        if upper_gain <= min_gain {
            return Proposal::Gated(upper_gain.max(0.0));
        }

        // Lawler construction: region nodes, then S, T, then one
        // (e_in, e_out) pair per touched net.
        let r_len = region.len();
        let mut local = HashMap::with_capacity(r_len);
        for (i, &v) in region.iter().enumerate() {
            local.insert(v, i);
        }
        let (s, t) = (r_len, r_len + 1);
        let mut net = FlowNetwork::new(r_len + 2 + 2 * nets.len());
        const INF: f64 = f64::MAX / 4.0;
        for (k, &e) in nets.iter().enumerate() {
            let w = self.bridge_weight(ra, rb, self.h.net_capacity(e));
            if w <= 0.0 {
                continue;
            }
            let pins = self.h.net_pins(e);
            if !pins.iter().any(|&v| in_region[v.index()]) {
                // All pins were demoted to anchors; the net pays the same
                // on either side of any cut, so it constrains nothing.
                continue;
            }
            let e_in = r_len + 2 + 2 * k;
            let e_out = e_in + 1;
            net.add_arc(e_in, e_out, w);
            let mut anchored_a = false;
            let mut anchored_b = false;
            for &v in pins {
                match local.get(&v.index()) {
                    Some(&i) if in_region[v.index()] => {
                        net.add_arc(i, e_in, INF);
                        net.add_arc(e_out, i, INF);
                    }
                    _ => {
                        let r = state.rank[v.index()];
                        anchored_a |= r == ra;
                        anchored_b |= r == rb;
                    }
                }
            }
            if anchored_a {
                net.add_arc(s, e_in, INF);
            }
            if anchored_b {
                net.add_arc(e_out, t, INF);
            }
        }
        let _ = net.max_flow(s, t);
        let side = net.min_cut_side(s);

        let mut moves = Vec::new();
        for (i, &v) in region.iter().enumerate() {
            let target = if side[i] { ra } else { rb };
            if state.rank[v] != target {
                moves.push((v, target));
            }
        }
        if moves.is_empty() {
            Proposal::Empty
        } else {
            Proposal::Moves(moves)
        }
    }

    /// Exact cost of net `e` under the candidate leaf ranks.
    fn net_cost_under(&self, rank: &[usize], e: NetId) -> f64 {
        let c = self.h.net_capacity(e);
        let pins = self.h.net_pins(e);
        let mut total = 0.0;
        let mut scratch: Vec<u32> = Vec::with_capacity(pins.len());
        for l in 0..self.levels {
            scratch.clear();
            scratch.extend(pins.iter().map(|&v| self.chain[rank[v.index()]][l]));
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() > 1 {
                total += self.spec.weight(l) * scratch.len() as f64 * c;
            }
        }
        total
    }
}

/// Mutable pass state: the candidate assignment and block sizes.
struct RefineState {
    /// Current leaf rank of every node.
    rank: Vec<usize>,
    /// Current leaf vertex of every node (kept in sync with `rank`).
    assign: Vec<VertexId>,
    /// Subtree size of every vertex under the candidate assignment.
    sizes: Vec<u64>,
    node_sizes: Vec<u64>,
}

impl RefineState {
    fn new(h: &Hypergraph, p: &HierarchicalPartition) -> Self {
        let node_sizes: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
        let sizes = p.subtree_sizes(&node_sizes);
        let mut rank_of = vec![usize::MAX; p.num_vertices()];
        for (r, q) in p.leaves().into_iter().enumerate() {
            rank_of[q.index()] = r;
        }
        let assign: Vec<VertexId> = (0..h.num_nodes())
            .map(|v| p.leaf_of(NodeId::new(v)))
            .collect();
        let rank = assign.iter().map(|q| rank_of[q.index()]).collect();
        RefineState {
            rank,
            assign,
            sizes,
            node_sizes,
        }
    }

    /// Applies `moves` if they keep every block within capacity and
    /// strictly lower the exact cost; returns the gain when accepted.
    fn try_apply(&mut self, engine: &RefineEngine, moves: &[(usize, usize)]) -> Option<f64> {
        // Capacity check: accumulate the size delta per leaf rank, then
        // walk each affected chain.
        let mut delta: HashMap<usize, i64> = HashMap::new();
        for &(v, target) in moves {
            let s = self.node_sizes[v] as i64;
            *delta.entry(self.rank[v]).or_insert(0) -= s;
            *delta.entry(target).or_insert(0) += s;
        }
        let mut vertex_delta: HashMap<u32, i64> = HashMap::new();
        for (&r, &d) in &delta {
            if d == 0 {
                continue;
            }
            let leaf = engine.leaves[r];
            *vertex_delta.entry(leaf.0).or_insert(0) += d;
            for &q in &engine.ancestors[r] {
                *vertex_delta.entry(q.0).or_insert(0) += d;
            }
        }
        for (&q, &d) in &vertex_delta {
            let new = self.sizes[q as usize] as i64 + d;
            let level = engine.vertex_level[q as usize];
            if new < 0 || new as u64 > engine.spec.capacity(level) {
                return None;
            }
        }

        // Exact cost delta over the nets the moves touch.
        let mut touched: Vec<NetId> = Vec::new();
        let mut seen = vec![false; engine.h.num_nets()];
        for &(v, _) in moves {
            for &e in engine.h.node_nets(NodeId::new(v)) {
                if !seen[e.index()] {
                    seen[e.index()] = true;
                    touched.push(e);
                }
            }
        }
        let before: f64 = touched
            .iter()
            .map(|&e| engine.net_cost_under(&self.rank, e))
            .sum();
        let mut candidate = self.rank.clone();
        for &(v, target) in moves {
            candidate[v] = target;
        }
        let after: f64 = touched
            .iter()
            .map(|&e| engine.net_cost_under(&candidate, e))
            .sum();
        let gain = before - after;
        if gain <= 1e-9 {
            return None;
        }

        // Commit.
        self.rank = candidate;
        for &(v, target) in moves {
            self.assign[v] = engine.leaves[target];
        }
        for (&q, &d) in &vertex_delta {
            self.sizes[q as usize] = (self.sizes[q as usize] as i64 + d) as u64;
        }
        Some(gain)
    }
}
