//! Flow-based boundary refinement (Heuer–Sanders–Schlag style).
//!
//! For a pair of leaf blocks joined by cut nets, carve out the boundary
//! region, model it as a Lawler flow network (each net becomes a
//! bridge-arc gadget whose capacity is the net's marginal cost of
//! spanning both blocks), and re-split the region along a minimum cut.
//! The min-cut side assignment proposes a set of node moves; a proposal
//! is accepted only if it keeps every ancestor block within capacity
//! *and* strictly lowers the exact multilevel cost — so refinement can
//! never invalidate or worsen a partition, which is what lets the
//! V-cycle certify after every level.

use std::collections::HashMap;

use htp_core::runtime::{Budget, Interrupt};
use htp_core::CoreError;
use htp_graph::maxflow::FlowNetwork;
use htp_model::{HierarchicalPartition, TreeSpec, VertexId};
use htp_netlist::{Hypergraph, NetId, NodeId};

/// Parameters of one flow-refinement pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRefineParams {
    /// Maximum number of block pairs to refine per pass, in descending
    /// cut-weight order.
    pub max_pairs: usize,
    /// Maximum boundary-region nodes per side; larger regions give the
    /// min-cut more freedom but cost more per pair.
    pub max_region: usize,
    /// Nets spanning more than this many leaves are ignored when ranking
    /// block pairs (they are cut whatever the pair decides).
    pub max_span_for_pairs: usize,
}

impl Default for FlowRefineParams {
    fn default() -> Self {
        FlowRefineParams {
            max_pairs: 24,
            max_region: 1500,
            max_span_for_pairs: 8,
        }
    }
}

/// What one flow-refinement pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowRefineReport {
    /// Block pairs examined.
    pub pairs_tried: usize,
    /// Pairs whose min-cut move was feasible and strictly improving.
    pub pairs_accepted: usize,
    /// Nodes that changed leaf.
    pub moved_nodes: usize,
    /// Total cost decrease (non-negative by construction).
    pub gain: f64,
    /// Set when the budget stopped the pass early.
    pub interrupt: Option<Interrupt>,
}

/// Runs one flow-based boundary-refinement pass over the heaviest cut
/// pairs of `p`, returning the refined partition, its exact cost, and a
/// report. The result never costs more than `start_cost` and always stays
/// valid under `spec`.
///
/// # Errors
///
/// Returns [`CoreError::Model`] if an accepted assignment cannot be
/// rebuilt into a partition (cannot happen for in-range moves; surfaced
/// rather than unwrapped).
pub fn flow_refine_pass(
    h: &Hypergraph,
    spec: &TreeSpec,
    p: &HierarchicalPartition,
    start_cost: f64,
    params: &FlowRefineParams,
    budget: &Budget,
) -> Result<(HierarchicalPartition, f64, FlowRefineReport), CoreError> {
    let mut report = FlowRefineReport::default();
    let engine = RefineEngine::new(h, spec, p);
    let mut state = RefineState::new(h, p);

    let pairs = engine.ranked_pairs(&state, params);
    for &(la, lb) in pairs.iter().take(params.max_pairs) {
        if let Err(irq) = budget.check_time() {
            report.interrupt = Some(irq);
            break;
        }
        report.pairs_tried += 1;
        // Region scaling: a min cut over a large region can propose a
        // bulk move that no nearly-full block can absorb. Halving the
        // region pulls the cut toward the current boundary (more anchors,
        // smaller move sets) until a proposal fits the capacities.
        let mut max_region = params.max_region;
        for _ in 0..4 {
            let Some(moves) = engine.propose(&state, la, lb, max_region) else {
                break;
            };
            if let Some(gain) = state.try_apply(&engine, &moves) {
                report.pairs_accepted += 1;
                report.moved_nodes += moves.len();
                report.gain += gain;
                break;
            }
            max_region /= 2;
            if max_region < 8 {
                break;
            }
        }
    }

    if report.moved_nodes == 0 {
        return Ok((p.clone(), start_cost, report));
    }
    let refined = p.with_assignment(state.assign)?;
    let cost = start_cost - report.gain;
    Ok((refined, cost, report))
}

/// Immutable per-pass context: leaf chains, weights, net pins.
struct RefineEngine<'a> {
    h: &'a Hypergraph,
    spec: &'a TreeSpec,
    /// Leaf vertices in id order; `rank` is an index into this.
    leaves: Vec<VertexId>,
    /// `chain[rank][l]` — raw vertex id of the leaf's block at level `l`,
    /// for `l < root_level` (the levels the cost counts).
    chain: Vec<Vec<u32>>,
    /// Ancestor vertices of each leaf, bottom-up, excluding the root.
    ancestors: Vec<Vec<VertexId>>,
    /// Level of every vertex (for ancestor capacity checks).
    vertex_level: Vec<usize>,
    levels: usize,
}

impl<'a> RefineEngine<'a> {
    fn new(h: &'a Hypergraph, spec: &'a TreeSpec, p: &HierarchicalPartition) -> Self {
        let leaves = p.leaves();
        let levels = p.root_level();
        let mut chain = Vec::with_capacity(leaves.len());
        let mut ancestors = Vec::with_capacity(leaves.len());
        for &leaf in &leaves {
            let mut row = vec![0u32; levels];
            let mut cur = leaf;
            let mut next = p.parent(cur);
            for (l, slot) in row.iter_mut().enumerate() {
                while let Some(q) = next {
                    if p.level(q) <= l {
                        cur = q;
                        next = p.parent(cur);
                    } else {
                        break;
                    }
                }
                *slot = cur.0;
            }
            let mut anc = Vec::new();
            let mut cur = leaf;
            while let Some(q) = p.parent(cur) {
                if p.parent(q).is_some() {
                    anc.push(q);
                }
                cur = q;
            }
            chain.push(row);
            ancestors.push(anc);
        }
        let vertex_level = p.vertices().map(|q| p.level(q)).collect();
        RefineEngine {
            h,
            spec,
            leaves,
            chain,
            ancestors,
            vertex_level,
            levels,
        }
    }

    /// Lowest level at which two leaves share a block (`levels` when they
    /// only meet at the root).
    fn divergence(&self, ra: usize, rb: usize) -> usize {
        (0..self.levels)
            .find(|&l| self.chain[ra][l] == self.chain[rb][l])
            .unwrap_or(self.levels)
    }

    /// Marginal cost a net of capacity `c` pays for spanning both leaves,
    /// summed over the levels where they sit in different blocks.
    fn bridge_weight(&self, ra: usize, rb: usize, c: f64) -> f64 {
        let div = self.divergence(ra, rb);
        (0..div).map(|l| self.spec.weight(l) * c).sum()
    }

    /// Leaf pairs joined by cut nets, heaviest total cut first.
    fn ranked_pairs(&self, state: &RefineState, params: &FlowRefineParams) -> Vec<(usize, usize)> {
        let mut weight: HashMap<(usize, usize), f64> = HashMap::new();
        let mut spanned: Vec<usize> = Vec::new();
        for e in self.h.nets() {
            spanned.clear();
            spanned.extend(self.h.net_pins(e).iter().map(|&v| state.rank[v.index()]));
            spanned.sort_unstable();
            spanned.dedup();
            if spanned.len() < 2 || spanned.len() > params.max_span_for_pairs {
                continue;
            }
            let c = self.h.net_capacity(e);
            for i in 0..spanned.len() {
                for j in i + 1..spanned.len() {
                    *weight.entry((spanned[i], spanned[j])).or_insert(0.0) +=
                        self.bridge_weight(spanned[i], spanned[j], c);
                }
            }
        }
        let mut pairs: Vec<((usize, usize), f64)> = weight.into_iter().collect();
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.into_iter().map(|(p, _)| p).collect()
    }

    /// Builds the boundary flow network for leaf pair `(ra, rb)` and
    /// proposes the min-cut node moves. `None` when there is no boundary
    /// or the cut moves nothing.
    fn propose(
        &self,
        state: &RefineState,
        ra: usize,
        rb: usize,
        max_region: usize,
    ) -> Option<Vec<(usize, usize)>> {
        // Per-side regions, grown breadth-first from the boundary. Capping
        // each side separately keeps the movable mass balanced.
        let side_cap = (max_region / 2).max(4);
        let mut in_region = vec![false; self.h.num_nodes()];
        let mut side_nodes: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut nets: Vec<NetId> = Vec::new();
        let mut net_seen = vec![false; self.h.num_nets()];
        let side_of = |r: usize| {
            if r == ra {
                Some(0)
            } else if r == rb {
                Some(1)
            } else {
                None
            }
        };

        // Seeds: pins of the nets spanning both blocks.
        for e in self.h.nets() {
            let pins = self.h.net_pins(e);
            let mut hits_a = false;
            let mut hits_b = false;
            for &v in pins {
                let r = state.rank[v.index()];
                hits_a |= r == ra;
                hits_b |= r == rb;
            }
            if !(hits_a && hits_b) {
                continue;
            }
            net_seen[e.index()] = true;
            nets.push(e);
            for &v in pins {
                let Some(s) = side_of(state.rank[v.index()]) else {
                    continue;
                };
                if !in_region[v.index()] && side_nodes[s].len() < side_cap {
                    in_region[v.index()] = true;
                    side_nodes[s].push(v.index());
                }
            }
        }
        if side_nodes[0].is_empty() && side_nodes[1].is_empty() {
            return None;
        }

        // Grow one hop inside the two blocks so the cut can move interior
        // nodes together with their boundary neighbours.
        let seeds = [side_nodes[0].len(), side_nodes[1].len()];
        for s in 0..2 {
            for i in 0..seeds[s] {
                for &e in self.h.node_nets(NodeId::new(side_nodes[s][i])) {
                    if net_seen[e.index()] {
                        continue;
                    }
                    net_seen[e.index()] = true;
                    nets.push(e);
                    for &u in self.h.net_pins(e) {
                        let Some(su) = side_of(state.rank[u.index()]) else {
                            continue;
                        };
                        if !in_region[u.index()] && side_nodes[su].len() < side_cap {
                            in_region[u.index()] = true;
                            side_nodes[su].push(u.index());
                        }
                    }
                }
            }
        }

        // Frontier: every remaining net incident to a region node joins the
        // gadget *without* its pins, so its out-of-region pins anchor the
        // cut to S or T — without this the min cut degenerates into
        // sweeping one whole side across.
        for side in &side_nodes {
            for &v in side {
                for &e in self.h.node_nets(NodeId::new(v)) {
                    if !net_seen[e.index()] {
                        net_seen[e.index()] = true;
                        nets.push(e);
                    }
                }
            }
        }

        // A side whose block sits entirely inside the region has no anchors
        // at all; retain its deepest (last-grown) eighth as out-of-region
        // core so the cut cannot dissolve the block.
        for (s, side) in side_nodes.iter_mut().enumerate() {
            let anchored = nets.iter().any(|&e| {
                self.h
                    .net_pins(e)
                    .iter()
                    .any(|&v| !in_region[v.index()] && side_of(state.rank[v.index()]) == Some(s))
            });
            if !anchored && !side.is_empty() {
                let keep = side.len() - side.len().div_ceil(8);
                for &v in &side[keep..] {
                    in_region[v] = false;
                }
                side.truncate(keep);
            }
        }
        let region: Vec<usize> = side_nodes.iter().flatten().copied().collect();
        if region.is_empty() {
            return None;
        }

        // Lawler construction: region nodes, then S, T, then one
        // (e_in, e_out) pair per touched net.
        let r_len = region.len();
        let mut local = HashMap::with_capacity(r_len);
        for (i, &v) in region.iter().enumerate() {
            local.insert(v, i);
        }
        let (s, t) = (r_len, r_len + 1);
        let mut net = FlowNetwork::new(r_len + 2 + 2 * nets.len());
        const INF: f64 = f64::MAX / 4.0;
        for (k, &e) in nets.iter().enumerate() {
            let w = self.bridge_weight(ra, rb, self.h.net_capacity(e));
            if w <= 0.0 {
                continue;
            }
            let pins = self.h.net_pins(e);
            if !pins.iter().any(|&v| in_region[v.index()]) {
                // All pins were demoted to anchors; the net pays the same
                // on either side of any cut, so it constrains nothing.
                continue;
            }
            let e_in = r_len + 2 + 2 * k;
            let e_out = e_in + 1;
            net.add_arc(e_in, e_out, w);
            let mut anchored_a = false;
            let mut anchored_b = false;
            for &v in pins {
                match local.get(&v.index()) {
                    Some(&i) if in_region[v.index()] => {
                        net.add_arc(i, e_in, INF);
                        net.add_arc(e_out, i, INF);
                    }
                    _ => {
                        let r = state.rank[v.index()];
                        anchored_a |= r == ra;
                        anchored_b |= r == rb;
                    }
                }
            }
            if anchored_a {
                net.add_arc(s, e_in, INF);
            }
            if anchored_b {
                net.add_arc(e_out, t, INF);
            }
        }
        let _ = net.max_flow(s, t);
        let side = net.min_cut_side(s);

        let mut moves = Vec::new();
        for (i, &v) in region.iter().enumerate() {
            let target = if side[i] { ra } else { rb };
            if state.rank[v] != target {
                moves.push((v, target));
            }
        }
        if moves.is_empty() {
            None
        } else {
            Some(moves)
        }
    }

    /// Exact cost of net `e` under the candidate leaf ranks.
    fn net_cost_under(&self, rank: &[usize], e: NetId) -> f64 {
        let c = self.h.net_capacity(e);
        let pins = self.h.net_pins(e);
        let mut total = 0.0;
        let mut scratch: Vec<u32> = Vec::with_capacity(pins.len());
        for l in 0..self.levels {
            scratch.clear();
            scratch.extend(pins.iter().map(|&v| self.chain[rank[v.index()]][l]));
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() > 1 {
                total += self.spec.weight(l) * scratch.len() as f64 * c;
            }
        }
        total
    }
}

/// Mutable pass state: the candidate assignment and block sizes.
struct RefineState {
    /// Current leaf rank of every node.
    rank: Vec<usize>,
    /// Current leaf vertex of every node (kept in sync with `rank`).
    assign: Vec<VertexId>,
    /// Subtree size of every vertex under the candidate assignment.
    sizes: Vec<u64>,
    node_sizes: Vec<u64>,
}

impl RefineState {
    fn new(h: &Hypergraph, p: &HierarchicalPartition) -> Self {
        let node_sizes: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
        let sizes = p.subtree_sizes(&node_sizes);
        let mut rank_of = vec![usize::MAX; p.num_vertices()];
        for (r, q) in p.leaves().into_iter().enumerate() {
            rank_of[q.index()] = r;
        }
        let assign: Vec<VertexId> = (0..h.num_nodes())
            .map(|v| p.leaf_of(NodeId::new(v)))
            .collect();
        let rank = assign.iter().map(|q| rank_of[q.index()]).collect();
        RefineState {
            rank,
            assign,
            sizes,
            node_sizes,
        }
    }

    /// Applies `moves` if they keep every block within capacity and
    /// strictly lower the exact cost; returns the gain when accepted.
    fn try_apply(&mut self, engine: &RefineEngine, moves: &[(usize, usize)]) -> Option<f64> {
        // Capacity check: accumulate the size delta per leaf rank, then
        // walk each affected chain.
        let mut delta: HashMap<usize, i64> = HashMap::new();
        for &(v, target) in moves {
            let s = self.node_sizes[v] as i64;
            *delta.entry(self.rank[v]).or_insert(0) -= s;
            *delta.entry(target).or_insert(0) += s;
        }
        let mut vertex_delta: HashMap<u32, i64> = HashMap::new();
        for (&r, &d) in &delta {
            if d == 0 {
                continue;
            }
            let leaf = engine.leaves[r];
            *vertex_delta.entry(leaf.0).or_insert(0) += d;
            for &q in &engine.ancestors[r] {
                *vertex_delta.entry(q.0).or_insert(0) += d;
            }
        }
        for (&q, &d) in &vertex_delta {
            let new = self.sizes[q as usize] as i64 + d;
            let level = engine.vertex_level[q as usize];
            if new < 0 || new as u64 > engine.spec.capacity(level) {
                return None;
            }
        }

        // Exact cost delta over the nets the moves touch.
        let mut touched: Vec<NetId> = Vec::new();
        let mut seen = vec![false; engine.h.num_nets()];
        for &(v, _) in moves {
            for &e in engine.h.node_nets(NodeId::new(v)) {
                if !seen[e.index()] {
                    seen[e.index()] = true;
                    touched.push(e);
                }
            }
        }
        let before: f64 = touched
            .iter()
            .map(|&e| engine.net_cost_under(&self.rank, e))
            .sum();
        let mut candidate = self.rank.clone();
        for &(v, target) in moves {
            candidate[v] = target;
        }
        let after: f64 = touched
            .iter()
            .map(|&e| engine.net_cost_under(&candidate, e))
            .sum();
        let gain = before - after;
        if gain <= 1e-9 {
            return None;
        }

        // Commit.
        self.rank = candidate;
        for &(v, target) in moves {
            self.assign[v] = engine.leaves[target];
        }
        for (&q, &d) in &vertex_delta {
            self.sizes[q as usize] = (self.sizes[q as usize] as i64 + d) as u64;
        }
        Some(gain)
    }
}
