//! Size-capped agglomeration along low-congestion nets.
//!
//! With a congestion profile in hand, clustering is a capacitated
//! Kruskal: visit nets from least to most congested and merge their pins'
//! clusters whenever the merged size stays within the cap. Saturated nets
//! are visited last and usually find their endpoints already at the cap —
//! exactly the "saturated edges disconnect dense clusters" reading of the
//! flow/cut duality the paper builds on.

use htp_graph::UnionFind;
use htp_netlist::Hypergraph;

use crate::congestion::CongestionProfile;

/// Result of a clustering pass.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Dense cluster id of every node.
    pub cluster_of: Vec<usize>,
    /// Number of clusters.
    pub count: usize,
}

impl Clustering {
    /// Total node size per cluster.
    pub fn sizes(&self, h: &Hypergraph) -> Vec<u64> {
        let mut sizes = vec![0u64; self.count];
        for v in h.nodes() {
            sizes[self.cluster_of[v.index()]] += h.node_size(v);
        }
        sizes
    }
}

/// Nets of `h` in ascending congestion order (ties by net id) — the visit
/// order of the capacitated Kruskal in [`agglomerate_ordered`].
///
/// Split out so callers that re-cluster the same graph several times (the
/// V-cycle's cap-decay and adaptive-filler retries) sort once per level
/// instead of once per attempt.
pub fn net_order(h: &Hypergraph, profile: &CongestionProfile) -> Vec<usize> {
    let util = profile.utilization(h);
    let mut order: Vec<usize> = (0..h.num_nets()).collect();
    order.sort_by(|&a, &b| {
        util[a]
            .partial_cmp(&util[b])
            .expect("utilization is finite")
            .then(a.cmp(&b))
    });
    order
}

/// Clusters `h` by merging along nets in ascending congestion order, never
/// letting a cluster exceed `max_cluster_size`.
///
/// # Panics
///
/// Panics if `max_cluster_size` is smaller than some node (that node could
/// never be placed in any cluster, including its own).
pub fn agglomerate(
    h: &Hypergraph,
    profile: &CongestionProfile,
    max_cluster_size: u64,
) -> Clustering {
    agglomerate_ordered(h, &net_order(h, profile), &[], max_cluster_size)
}

/// Like [`agglomerate`], but every `filler_stride`-th node is frozen as a
/// singleton cluster (`0` freezes nothing).
///
/// Repeated agglomeration makes every node chunky, and chunky nodes cannot
/// land inside the tight block-size windows the constructive partitioner
/// has to hit — the coarse instance becomes infeasible even though the
/// fine one is not. Keeping a stripe of singletons at each level preserves
/// a small-size tail the carve can use as filler.
///
/// # Panics
///
/// Panics if `max_cluster_size` is smaller than some node.
pub fn agglomerate_with_fillers(
    h: &Hypergraph,
    profile: &CongestionProfile,
    max_cluster_size: u64,
    filler_stride: usize,
) -> Clustering {
    let frozen: Vec<bool> = if filler_stride == 0 {
        Vec::new()
    } else {
        (0..h.num_nodes())
            .map(|v| v.is_multiple_of(filler_stride))
            .collect()
    };
    agglomerate_ordered(h, &net_order(h, profile), &frozen, max_cluster_size)
}

/// The agglomeration core: merges along `order` (a permutation of the net
/// ids, typically from [`net_order`]) under the size cap, keeping every
/// node with `frozen[v]` set as a singleton cluster. `frozen` may be empty
/// (nothing frozen); otherwise it must have one entry per node.
///
/// A frozen node never merges, so it stays the root of its own union-find
/// class — checking the mask on class roots is exactly checking it on the
/// original nodes.
///
/// # Panics
///
/// Panics if `max_cluster_size` is smaller than some node, or if `frozen`
/// is non-empty with the wrong length.
pub fn agglomerate_ordered(
    h: &Hypergraph,
    order: &[usize],
    frozen: &[bool],
    max_cluster_size: u64,
) -> Clustering {
    assert!(
        h.nodes().all(|v| h.node_size(v) <= max_cluster_size),
        "max_cluster_size must fit every single node"
    );
    assert!(
        frozen.is_empty() || frozen.len() == h.num_nodes(),
        "frozen mask must be empty or one entry per node"
    );
    let frozen = |v: usize| !frozen.is_empty() && frozen[v];
    let mut uf = UnionFind::new(h.num_nodes());
    let mut size: Vec<u64> = h.nodes().map(|v| h.node_size(v)).collect();
    for &e in order {
        let pins = h.net_pins(htp_netlist::NetId::new(e));
        // Try to merge all pins pairwise into the first pin's cluster.
        for w in pins.windows(2) {
            let (a, b) = (uf.find(w[0].index()), uf.find(w[1].index()));
            if a == b || frozen(a) || frozen(b) {
                continue;
            }
            if size[a] + size[b] <= max_cluster_size {
                uf.union(a, b);
                let root = uf.find(a);
                size[root] = size[a] + size[b];
            }
        }
    }

    // Dense renumbering.
    let mut id = vec![usize::MAX; h.num_nodes()];
    let mut count = 0;
    let mut cluster_of = vec![0usize; h.num_nodes()];
    for (v, slot) in cluster_of.iter_mut().enumerate() {
        let root = uf.find(v);
        if id[root] == usize::MAX {
            id[root] = count;
            count += 1;
        }
        *slot = id[root];
    }
    Clustering { cluster_of, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{flow_congestion, CongestionParams};
    use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_planted_clusters() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = ClusteredParams {
            clusters: 4,
            cluster_size: 8,
            intra_nets: 120,
            inter_nets: 6,
            min_net_size: 2,
            max_net_size: 2,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let profile = flow_congestion(h, CongestionParams::default(), &mut rng);
        let clustering = agglomerate(h, &profile, 8);

        // Every cluster must be pure (all members from one planted group).
        for c in 0..clustering.count {
            let members: Vec<usize> = (0..h.num_nodes())
                .filter(|&v| clustering.cluster_of[v] == c)
                .map(|v| inst.cluster_of[v])
                .collect();
            assert!(
                members.iter().all(|&g| g == members[0]),
                "cluster {c} is mixed: {members:?}"
            );
        }
        // And the planted groups should mostly stay whole: at most a couple
        // of fragments each.
        assert!(
            clustering.count <= 8,
            "4 planted groups fragmented into {} clusters",
            clustering.count
        );
    }

    #[test]
    fn size_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let profile = flow_congestion(h, CongestionParams::default(), &mut rng);
        for cap in [1u64, 3, 7, 16] {
            let clustering = agglomerate(h, &profile, cap);
            assert!(clustering.sizes(h).iter().all(|&s| s <= cap), "cap {cap}");
        }
    }

    #[test]
    fn cap_one_yields_singletons() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let profile = flow_congestion(h, CongestionParams::default(), &mut rng);
        let clustering = agglomerate(h, &profile, 1);
        assert_eq!(clustering.count, h.num_nodes());
    }

    #[test]
    fn frozen_mask_nodes_stay_singletons() {
        let mut rng = StdRng::seed_from_u64(10);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let profile = flow_congestion(h, CongestionParams::default(), &mut rng);
        let order = net_order(h, &profile);
        let frozen: Vec<bool> = (0..h.num_nodes()).map(|v| v % 3 == 0).collect();
        let clustering = agglomerate_ordered(h, &order, &frozen, 16);
        for (v, &f) in frozen.iter().enumerate() {
            if f {
                let c = clustering.cluster_of[v];
                let members = clustering.cluster_of.iter().filter(|&&x| x == c).count();
                assert_eq!(members, 1, "frozen node {v} merged");
            }
        }
        // The stride wrapper is exactly the mask path.
        let strided = agglomerate_with_fillers(h, &profile, 16, 3);
        assert_eq!(strided.cluster_of, clustering.cluster_of);
    }
}
