//! Pairwise stochastic flow injection (Yeh/Cheng/Lin-style).
//!
//! Repeatedly pick a random source/target pair, route one unit of flow on
//! the currently-shortest path between them, and re-price every net on the
//! path with the exponential length function `d(e) = exp(α·f(e)/c(e)) − 1`.
//! Congested nets grow long and repel subsequent paths, so the steady-state
//! flow profile concentrates on the netlist's natural bottlenecks.

use rand::{Rng, RngExt};

use htp_core::sptree::TreeGrower;
use htp_core::SpreadingMetric;
use htp_netlist::{Hypergraph, NodeId};

/// Parameters of the congestion computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CongestionParams {
    /// Number of random pairs to route. A small multiple of the node count
    /// (2–4×) is usually enough for a stable profile.
    pub pairs: usize,
    /// Exponent scale of the re-pricing function.
    pub alpha: f64,
    /// Initial flow on every net.
    pub epsilon: f64,
    /// Flow injected per routed path.
    pub delta: f64,
}

impl Default for CongestionParams {
    fn default() -> Self {
        CongestionParams {
            pairs: 256,
            alpha: 1.0,
            epsilon: 1e-3,
            delta: 1.0,
        }
    }
}

/// The congestion profile: per-net flow accumulated by the random paths.
#[derive(Clone, Debug)]
pub struct CongestionProfile {
    /// `flow[e.index()]` — total flow routed through net `e`.
    pub flow: Vec<f64>,
    /// Pairs actually routed (pairs in separate components are skipped).
    pub routed: usize,
}

impl CongestionProfile {
    /// Flow normalized by capacity, the congestion measure used for
    /// clustering decisions.
    pub fn utilization(&self, h: &Hypergraph) -> Vec<f64> {
        h.nets()
            .map(|e| self.flow[e.index()] / h.net_capacity(e))
            .collect()
    }
}

/// Computes the congestion profile of `h`.
///
/// # Panics
///
/// Panics if the netlist has fewer than 2 nodes or a parameter is
/// non-positive.
pub fn flow_congestion<R: Rng + ?Sized>(
    h: &Hypergraph,
    params: CongestionParams,
    rng: &mut R,
) -> CongestionProfile {
    assert!(
        h.num_nodes() >= 2,
        "need at least two nodes to route between"
    );
    assert!(
        params.alpha > 0.0 && params.epsilon > 0.0 && params.delta > 0.0,
        "parameters must be positive"
    );
    let n = h.num_nodes();
    let mut flow = vec![params.epsilon; h.num_nets()];
    let mut metric = SpreadingMetric::from_lengths(
        h.nets()
            .map(|e| length_of(params.alpha, params.epsilon, h.net_capacity(e)))
            .collect(),
    );
    let mut routed = 0;

    for _ in 0..params.pairs {
        let s = NodeId::new(rng.random_range(0..n));
        let t = NodeId::new(rng.random_range(0..n));
        if s == t {
            continue;
        }
        // Route s -> t on the current metric; stop as soon as t settles.
        let mut parent_net = vec![None; n];
        let mut parent_node = vec![None; n];
        let mut reached = false;
        for step in TreeGrower::new(h, &metric, s) {
            parent_net[step.node.index()] = step.via_net;
            parent_node[step.node.index()] = step.parent;
            if step.node == t {
                reached = true;
                break;
            }
        }
        if !reached {
            continue; // different components
        }
        routed += 1;
        // Walk the path back, injecting flow.
        let mut cur = t;
        while let (Some(e), Some(p)) = (parent_net[cur.index()], parent_node[cur.index()]) {
            flow[e.index()] += params.delta;
            metric.set_length(
                e,
                length_of(params.alpha, flow[e.index()], h.net_capacity(e)),
            );
            cur = p;
        }
    }
    CongestionProfile { flow, routed }
}

#[inline]
fn length_of(alpha: f64, flow: f64, capacity: f64) -> f64 {
    (alpha * flow / capacity).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use htp_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bottleneck_nets_accumulate_the_most_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = ClusteredParams {
            clusters: 2,
            cluster_size: 10,
            intra_nets: 60,
            inter_nets: 2,
            min_net_size: 2,
            max_net_size: 2,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let profile = flow_congestion(h, CongestionParams::default(), &mut rng);
        let util = profile.utilization(h);

        let crosses = |e: htp_netlist::NetId| {
            let pins = h.net_pins(e);
            pins.iter()
                .any(|v| inst.cluster_of[v.index()] != inst.cluster_of[pins[0].index()])
        };
        let avg = |filter: bool| {
            let vals: Vec<f64> = h
                .nets()
                .filter(|&e| crosses(e) == filter)
                .map(|e| util[e.index()])
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            avg(true) > 3.0 * avg(false),
            "inter-cluster nets should be far more congested: {} vs {}",
            avg(true),
            avg(false)
        );
    }

    #[test]
    fn disconnected_pairs_are_skipped_not_fatal() {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        let h = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let profile = flow_congestion(
            &h,
            CongestionParams {
                pairs: 64,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(profile.routed < 64, "cross-component pairs cannot route");
        assert!(profile.routed > 0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let p = CongestionParams {
            pairs: 100,
            ..Default::default()
        };
        let a = flow_congestion(&inst.hypergraph, p, &mut StdRng::seed_from_u64(4));
        let b = flow_congestion(&inst.hypergraph, p, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.flow, b.flow);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_netlist_panics() {
        let h = HypergraphBuilder::with_unit_nodes(1).build().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = flow_congestion(&h, CongestionParams::default(), &mut rng);
    }
}
