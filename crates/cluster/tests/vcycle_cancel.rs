//! Concurrent cross-thread cancellation of a multilevel run.
//!
//! Mirrors the flat-path test in `crates/core/tests/resilience.rs`: a
//! `CancelToken` fired from another thread mid-cycle must surface as
//! outcome `Cancelled` with a valid projected partition — the V-cycle
//! never returns garbage or hangs when cancelled from outside.

use std::thread;
use std::time::Duration;

use htp_cluster::congestion::CongestionParams;
use htp_cluster::vcycle::{vcycle_partition_with_budget, VCycleParams};
use htp_core::runtime::{Budget, CancelToken, RunOutcome};
use htp_model::{validate, TreeSpec};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cross_thread_cancel_mid_cycle_projects_a_valid_partition() {
    let mut rng = StdRng::seed_from_u64(51);
    let h = rent_circuit(
        RentParams {
            nodes: 6000,
            primary_inputs: 375,
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), 4, 2, 1.15, 1.0).unwrap();
    let params = VCycleParams {
        congestion: CongestionParams {
            pairs: 64,
            ..CongestionParams::default()
        },
        ..VCycleParams::default()
    };

    // The exact moment the cancel lands is scheduler-dependent, so walk
    // the delay down until the run observes it: a zero delay fires the
    // token before the first budget poll and cannot be outraced.
    let mut delay = Duration::from_millis(400);
    loop {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(token.clone());
        let canceller = thread::spawn(move || {
            thread::sleep(delay);
            token.cancel();
        });
        let mut rng = StdRng::seed_from_u64(52);
        let r = vcycle_partition_with_budget(&h, &spec, params, &mut rng, &budget).unwrap();
        canceller.join().unwrap();

        // Whatever the timing, the partition handed back must be valid.
        validate::validate(&h, &spec, &r.partition).unwrap();
        if r.outcome == RunOutcome::Cancelled {
            return; // observed a genuine mid-run cancellation
        }
        assert_eq!(
            r.outcome,
            RunOutcome::Complete,
            "a cancelled cycle must report Cancelled, not {:?}",
            r.outcome
        );
        assert!(
            delay > Duration::ZERO,
            "even a pre-fired token failed to cancel the run"
        );
        delay /= 4;
    }
}
