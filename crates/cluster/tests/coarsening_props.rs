//! Property tests for the coarsening stack: the dedup-compacting
//! contraction, the frozen-filler mask, and the V-cycle's level cascade.
//!
//! Three invariants pin the fast paths introduced for the 1M-node scale-up
//! (the dedup contraction itself is *always* on — every level of every
//! V-cycle goes through it — so `vcycle_certification.rs` certifying each
//! level pair already exercises it end to end; these properties pin the
//! algebra directly):
//!
//! 1. **Size conservation** — every coarse graph in the cascade carries
//!    exactly the fine graph's total node size.
//! 2. **Frozen fillers stay singletons** — a node under the frozen mask
//!    never merges, whatever the net order or cap.
//! 3. **Dedup is a weight-preserving regrouping** — `dedup_nets` maps
//!    every fine net onto a coarse net with the identical pin set, and
//!    each coarse capacity is exactly the sum (in ascending fine-id
//!    order) of the capacities that merged into it.

use htp_cluster::clusters::{agglomerate_ordered, net_order, Clustering};
use htp_cluster::congestion::{flow_congestion, CongestionParams};
use htp_cluster::vcycle::{vcycle_partition, VCycleParams};
use htp_core::partitioner::PartitionerParams;
use htp_model::TreeSpec;
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::{dedup_nets, NetId, DROPPED_NET};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn workload(seed: u64, nodes: usize) -> htp_netlist::Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_cascade_level_conserves_total_size(
        seed in 0u64..1000,
        nodes in 400usize..900,
    ) {
        let h = workload(seed, nodes);
        let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.15, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let params = VCycleParams {
            coarsest_nodes: 48,
            congestion: CongestionParams { pairs: 32, ..CongestionParams::default() },
            partitioner: PartitionerParams { iterations: 1, ..PartitionerParams::default() },
            record_levels: true,
            ..VCycleParams::default()
        };
        let r = vcycle_partition(&h, &spec, params, &mut rng).unwrap();
        for (i, coarse) in r.coarse_graphs.iter().enumerate() {
            prop_assert_eq!(
                coarse.total_size(),
                h.total_size(),
                "coarse level {} lost node size",
                i
            );
        }
        // The per-level telemetry accounts for every fine net: survivors
        // plus merged plus dropped equals the fine net count.
        for lvl in &r.levels {
            prop_assert!(lvl.merged_nets + lvl.dropped_nets <= lvl.nets);
        }
    }

    #[test]
    fn frozen_fillers_stay_singletons_under_any_mask(
        seed in 0u64..1000,
        nodes in 64usize..256,
        freeze_one_in in 2usize..8,
        cap in 2u64..32,
    ) {
        let h = workload(seed, nodes);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf111);
        let profile = flow_congestion(
            &h,
            CongestionParams { pairs: 16, ..CongestionParams::default() },
            &mut rng,
        );
        let order = net_order(&h, &profile);
        let frozen: Vec<bool> = (0..h.num_nodes())
            .map(|_| rng.random_range(0..freeze_one_in) == 0)
            .collect();
        let Clustering { cluster_of, count } =
            agglomerate_ordered(&h, &order, &frozen, cap);

        let mut members = vec![0usize; count];
        for &c in &cluster_of {
            members[c] += 1;
        }
        for (v, &f) in frozen.iter().enumerate() {
            if f {
                prop_assert_eq!(
                    members[cluster_of[v]], 1,
                    "frozen node {} merged into a {}-node cluster",
                    v, members[cluster_of[v]]
                );
            }
        }
        // The cap holds for everyone else.
        let mut sizes = vec![0u64; count];
        for v in h.nodes() {
            sizes[cluster_of[v.index()]] += h.node_size(v);
        }
        prop_assert!(sizes.iter().all(|&s| s <= cap));
    }

    #[test]
    fn dedup_is_a_weight_preserving_regrouping(
        seed in 0u64..1000,
        nodes in 64usize..256,
    ) {
        let h = workload(seed, nodes);
        let (dh, net_map, stats) = dedup_nets(&h);

        prop_assert_eq!(net_map.len(), h.num_nets());
        prop_assert_eq!(stats.coarse_nets, dh.num_nets());
        prop_assert_eq!(stats.dropped_nets, 0, "identity map never drops a net");
        prop_assert_eq!(stats.coarse_nets + stats.merged_nets, h.num_nets());

        // Every fine net lands on a coarse net with the identical pin set.
        for e in h.nets() {
            let m = net_map[e.index()];
            prop_assert!(m != DROPPED_NET, "net {} was dropped", e.index());
            let fine: Vec<usize> = h.net_pins(e).iter().map(|p| p.index()).collect();
            let coarse: Vec<usize> =
                dh.net_pins(NetId::new(m as usize)).iter().map(|p| p.index()).collect();
            let mut fine_sorted = fine.clone();
            fine_sorted.sort_unstable();
            let mut coarse_sorted = coarse.clone();
            coarse_sorted.sort_unstable();
            prop_assert_eq!(fine_sorted, coarse_sorted, "net {} changed pins", e.index());
        }

        // Each coarse capacity is the ascending-fine-id sum of its group
        // — bit-exact, because that is the order the contraction sums in.
        let mut sums = vec![0.0f64; dh.num_nets()];
        for e in h.nets() {
            sums[net_map[e.index()] as usize] += h.net_capacity(e);
        }
        for c in dh.nets() {
            prop_assert_eq!(
                sums[c.index()].to_bits(),
                dh.net_capacity(c).to_bits(),
                "coarse net {} capacity drifted",
                c.index()
            );
        }
    }
}
