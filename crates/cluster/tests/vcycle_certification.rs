//! Cross-crate property test: every uncoarsening boundary of the
//! multilevel V-cycle must survive the clean-room verifier.
//!
//! For random Rent-style instances, the V-cycle is run with
//! [`VCycleParams::record_levels`] so every `(projected, refined)`
//! partition pair is kept together with the coarse netlist it lives on.
//! Each pair is then re-checked by `htp_verify::certificate::certify` —
//! independently written validation and pricing code with no dependency
//! on `htp-core` — asserting that
//!
//! 1. the projection of a coarse partition is feasible at every level,
//! 2. refinement keeps it feasible, and
//! 3. refinement never increases the *certified* cost at any level,
//! 4. the final partition's certified cost matches the engine's claim.

use htp_cluster::congestion::CongestionParams;
use htp_cluster::vcycle::{vcycle_partition, VCycleParams};
use htp_core::partitioner::PartitionerParams;
use htp_model::TreeSpec;
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_verify::certificate::certify;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_params() -> VCycleParams {
    VCycleParams {
        coarsest_nodes: 48,
        congestion: CongestionParams {
            pairs: 32,
            ..CongestionParams::default()
        },
        partitioner: PartitionerParams {
            iterations: 1,
            ..PartitionerParams::default()
        },
        record_levels: true,
        ..VCycleParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_uncoarsening_level_certifies(
        seed in 0u64..1000,
        nodes in 400usize..900,
        height in 2usize..=3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = rent_circuit(
            RentParams {
                nodes,
                primary_inputs: (nodes / 16).max(1),
                locality: 0.8,
                ..RentParams::default()
            },
            &mut rng,
        );
        let spec = TreeSpec::full_tree(h.total_size(), height, 2, 1.15, 1.0).unwrap();

        let r = vcycle_partition(&h, &spec, quick_params(), &mut rng).unwrap();
        let levels = r.num_levels;
        prop_assert!(levels >= 1, "400+ nodes must coarsen at least once");
        prop_assert_eq!(r.level_partitions.len(), levels);

        // The engine's final claim, re-priced by the clean-room verifier.
        let final_cert = certify(&h, &spec, &r.partition);
        prop_assert!(final_cert.is_valid(), "final: {:?}", final_cert.violations);
        let final_cost = final_cert.cost.unwrap();
        prop_assert!(
            (final_cost - r.cost).abs() <= 1e-6 * final_cost.max(1.0),
            "engine claims {} but the certificate prices {}",
            r.cost,
            final_cost
        );

        // Every boundary, coarsest-to-finest. level_partitions[j] lives
        // on coarse_graphs[levels - 2 - j], or on `h` for the last pair.
        for (j, (projected, refined)) in r.level_partitions.iter().enumerate() {
            let fine = if j == levels - 1 {
                &h
            } else {
                &r.coarse_graphs[levels - 2 - j]
            };

            let proj_cert = certify(fine, &spec, projected);
            prop_assert!(
                proj_cert.is_valid(),
                "projection at boundary {}: {:?}",
                j,
                proj_cert.violations
            );
            let ref_cert = certify(fine, &spec, refined);
            prop_assert!(
                ref_cert.is_valid(),
                "refinement at boundary {}: {:?}",
                j,
                ref_cert.violations
            );

            let proj_cost = proj_cert.cost.unwrap();
            let ref_cost = ref_cert.cost.unwrap();
            prop_assert!(
                ref_cost <= proj_cost + 1e-6 * proj_cost.max(1.0),
                "refinement increased certified cost at boundary {}: {} -> {}",
                j,
                proj_cost,
                ref_cost
            );
        }
    }
}
