//! Deterministic fault injection through the multilevel V-cycle.
//!
//! A scripted panic inside coarsening or refinement must surface as a
//! contained `Degraded` outcome with a valid (certifiable) partition —
//! never as an abort of the whole run. Run with
//! `--features fault-injection`.

#![cfg(feature = "fault-injection")]

use htp_cluster::congestion::CongestionParams;
use htp_cluster::vcycle::{vcycle_partition_with_budget, VCycleParams};
use htp_core::partitioner::PartitionerParams;
use htp_core::runtime::{Budget, FaultPlan, RunOutcome};
use htp_model::{validate, TreeSpec};
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use htp_netlist::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(nodes: usize, height: usize) -> (Hypergraph, TreeSpec) {
    let mut rng = StdRng::seed_from_u64(41);
    let h = rent_circuit(
        RentParams {
            nodes,
            primary_inputs: (nodes / 16).max(1),
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), height, 2, 1.15, 1.0).unwrap();
    (h, spec)
}

fn quick_params() -> VCycleParams {
    VCycleParams {
        coarsest_nodes: 64,
        congestion: CongestionParams {
            pairs: 64,
            ..CongestionParams::default()
        },
        partitioner: PartitionerParams {
            iterations: 2,
            ..PartitionerParams::default()
        },
        ..VCycleParams::default()
    }
}

#[test]
fn scripted_refinement_panic_is_contained_as_degraded() {
    let (h, spec) = workload(1024, 3);
    let mut rng = StdRng::seed_from_u64(42);
    let plan = FaultPlan::new().panic_in_refinement_at_pass(0);
    let budget = Budget::unlimited().with_faults(plan);
    let r = vcycle_partition_with_budget(&h, &spec, quick_params(), &mut rng, &budget).unwrap();
    assert_eq!(r.outcome, RunOutcome::Degraded);
    assert_eq!(r.contained_panics, 1);
    validate::validate(&h, &spec, &r.partition).unwrap();
    // The poisoned pass (the coarsest uncoarsening level) kept its
    // projected partition untouched.
    let lvl = &r.levels[0];
    assert_eq!(lvl.flow_pairs_tried, 0);
    assert!(!lvl.hfm_used);
    assert!((lvl.refined_cost - lvl.projected_cost).abs() < 1e-12);
    // The remaining levels refined normally.
    assert!(r.levels.len() >= 2);
}

#[test]
fn scripted_coarsening_panic_stops_the_down_pass_not_the_run() {
    let (h, spec) = workload(1024, 3);
    let mut rng = StdRng::seed_from_u64(43);

    // A panic at level 0 means no coarse graph is ever built: FLOW solves
    // the input netlist directly, and the result is still valid.
    let plan = FaultPlan::new().panic_in_coarsening_at_level(0);
    let budget = Budget::unlimited().with_faults(plan);
    let r = vcycle_partition_with_budget(&h, &spec, quick_params(), &mut rng, &budget).unwrap();
    assert_eq!(r.outcome, RunOutcome::Degraded);
    assert_eq!(r.contained_panics, 1);
    assert_eq!(r.num_levels, 0);
    validate::validate(&h, &spec, &r.partition).unwrap();

    // A panic at level 1 keeps the first coarse level and solves it.
    let plan = FaultPlan::new().panic_in_coarsening_at_level(1);
    let budget = Budget::unlimited().with_faults(plan);
    let r = vcycle_partition_with_budget(&h, &spec, quick_params(), &mut rng, &budget).unwrap();
    assert_eq!(r.outcome, RunOutcome::Degraded);
    assert_eq!(r.num_levels, 1);
    validate::validate(&h, &spec, &r.partition).unwrap();
}

#[test]
fn an_empty_fault_plan_changes_nothing() {
    let (h, spec) = workload(1024, 3);
    let mut rng = StdRng::seed_from_u64(44);
    let r1 = vcycle_partition_with_budget(
        &h,
        &spec,
        quick_params(),
        &mut rng,
        &Budget::unlimited().with_faults(FaultPlan::new()),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(44);
    let r2 =
        vcycle_partition_with_budget(&h, &spec, quick_params(), &mut rng, &Budget::unlimited())
            .unwrap();
    assert_eq!(r1.outcome, RunOutcome::Complete);
    assert_eq!(r1.contained_panics, 0);
    assert!((r1.cost - r2.cost).abs() < 1e-9, "plan must be inert");
}

#[test]
fn forced_expiry_mid_cycle_degrades_and_projects() {
    let (h, spec) = workload(1024, 3);
    let mut rng = StdRng::seed_from_u64(45);
    // Force the budget to report expiry from round 1 on: the coarsest
    // solve is interrupted and the projection path takes over.
    let plan = FaultPlan::new().expire_at_round(1);
    let budget = Budget::unlimited().with_faults(plan);
    let r = vcycle_partition_with_budget(&h, &spec, quick_params(), &mut rng, &budget).unwrap();
    assert_eq!(r.outcome, RunOutcome::DeadlineExceeded);
    validate::validate(&h, &spec, &r.partition).unwrap();
}
