//! The parallel flow-refinement pass must be bit-identical at every
//! thread count.
//!
//! The proposal phase runs on a scoped worker pool, but proposals are
//! pure functions of the batch-start snapshot, land in index-addressed
//! slots, and commit sequentially in ranked order — so the refined
//! partition, its cost bits, and every per-level counter must not depend
//! on how many workers computed the proposals. This is the contract that
//! lets `HTP_THREADS` scale the V-cycle without forking the conformance
//! goldens.

use htp_cluster::congestion::CongestionParams;
use htp_cluster::vcycle::{vcycle_partition, VCycleParams};
use htp_core::partitioner::PartitionerParams;
use htp_model::TreeSpec;
use htp_netlist::gen::rent::{rent_circuit, RentParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A compact, total digest of one run: every leaf assignment, the exact
/// cost bits, and the per-level refinement counters.
fn run_digest(threads: usize) -> (Vec<usize>, u64, Vec<(usize, usize, usize, u64)>) {
    let mut rng = StdRng::seed_from_u64(1997);
    let h = rent_circuit(
        RentParams {
            nodes: 1500,
            primary_inputs: 1500 / 16,
            locality: 0.8,
            ..RentParams::default()
        },
        &mut rng,
    );
    let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.15, 1.0).unwrap();
    let mut params = VCycleParams {
        coarsest_nodes: 96,
        congestion: CongestionParams {
            pairs: 32,
            ..CongestionParams::default()
        },
        partitioner: PartitionerParams {
            iterations: 1,
            ..PartitionerParams::default()
        },
        ..VCycleParams::default()
    };
    params.refine.threads = threads;

    let mut run_rng = StdRng::seed_from_u64(42);
    let r = vcycle_partition(&h, &spec, params, &mut run_rng).unwrap();
    let leaves: Vec<usize> = h.nodes().map(|v| r.partition.leaf_of(v).index()).collect();
    let levels: Vec<(usize, usize, usize, u64)> = r
        .levels
        .iter()
        .map(|l| {
            (
                l.flow_pairs_tried,
                l.flow_pairs_accepted,
                l.flow_pairs_skipped,
                l.refined_cost.to_bits(),
            )
        })
        .collect();
    (leaves, r.cost.to_bits(), levels)
}

#[test]
fn refinement_is_bit_identical_at_every_thread_count() {
    let baseline = run_digest(1);
    // The single-threaded run must actually refine something, or the
    // equality below is vacuous.
    assert!(
        baseline.2.iter().any(|&(tried, ..)| tried > 0),
        "workload never reached the max-flow stage: {:?}",
        baseline.2
    );
    for threads in [2, 4, 8, 0] {
        let run = run_digest(threads);
        assert_eq!(
            run, baseline,
            "threads={threads} diverged from the single-threaded run"
        );
    }
}
