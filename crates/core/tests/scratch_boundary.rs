use htp_core::injector::{compute_spreading_metric_budgeted, FlowParams};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::runtime::Budget;
use htp_model::TreeSpec;
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn exact_round_budget_boundary() {
    let mut rng = StdRng::seed_from_u64(8);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();
    // Natural round count of the first metric:
    let (_, stats) = compute_spreading_metric_budgeted(
        h,
        &spec,
        FlowParams::default(),
        &mut StdRng::seed_from_u64(23),
        &Budget::unlimited(),
    );
    let natural = stats.rounds as u64;
    println!(
        "natural rounds = {natural}, converged = {}",
        stats.converged
    );
    // Budget with exactly that many rounds: the metric fits the budget.
    let budget = Budget::unlimited().with_max_rounds(natural);
    let part = FlowPartitioner::try_new(PartitionerParams {
        iterations: 1,
        constructions_per_metric: 1,
        flow: FlowParams::default(),
    })
    .unwrap();
    let run = part.run_with_budget(h, &spec, &mut StdRng::seed_from_u64(23), &budget);
    match &run {
        Ok(r) => println!("OK outcome={:?}", r.outcome),
        Err(e) => println!("ERR: {e}"),
    }
    // A metric that converged within budget should yield a partition.
    assert!(run.is_ok(), "converged-in-budget run returned an error");
}
