//! End-to-end resilience contract of the budgeted runtime: bit-identity
//! with the unbudgeted path, graceful degradation under deadlines, and
//! cooperative cancellation that still salvages the best partition so far.

use std::time::{Duration, Instant};

use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::{Budget, CancelToken, CoreError, Interrupt, RunOutcome};
use htp_model::{validate, TreeSpec};
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(threads: usize) -> PartitionerParams {
    let mut p = PartitionerParams {
        iterations: 2,
        constructions_per_metric: 2,
        ..PartitionerParams::default()
    };
    p.flow.threads = threads;
    p
}

/// Acceptance (c): with no faults and no deadline, `run_with_budget` is
/// bit-identical to `run`, and both are invariant under the probe-worker
/// thread count.
#[test]
fn unlimited_budget_is_bit_identical_to_run_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(42);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        let part = FlowPartitioner::try_new(params(threads)).unwrap();

        let mut rng_a = StdRng::seed_from_u64(7);
        let plain = part.run(h, &spec, &mut rng_a).unwrap();

        let mut rng_b = StdRng::seed_from_u64(7);
        let budgeted = part
            .run_with_budget(h, &spec, &mut rng_b, &Budget::unlimited())
            .unwrap();

        assert_eq!(budgeted.outcome, RunOutcome::Complete);
        assert_eq!(
            plain.partition, budgeted.result.partition,
            "threads={threads}"
        );
        assert_eq!(plain.cost.to_bits(), budgeted.result.cost.to_bits());
        outputs.push((budgeted.result.partition.clone(), budgeted.result.cost));
    }
    for (p, c) in &outputs[1..] {
        assert_eq!(*p, outputs[0].0, "partition must not depend on threads");
        assert_eq!(c.to_bits(), outputs[0].1.to_bits());
    }
}

/// Acceptance (a): a deadline that expires before any work produces a typed
/// interrupt error — there is nothing to salvage, and it must not panic.
#[test]
fn already_expired_deadline_is_a_typed_interrupt() {
    let mut rng = StdRng::seed_from_u64(3);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let spec = TreeSpec::full_tree(inst.hypergraph.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let err = FlowPartitioner::try_new(params(1))
        .unwrap()
        .run_with_budget(&inst.hypergraph, &spec, &mut rng, &budget)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Interrupted(Interrupt::Deadline)),
        "got {err:?}"
    );
}

/// A short (but nonzero) wall-clock deadline on a long run ends early with
/// the best partition found so far; the partition is always feasible.
#[test]
fn short_deadline_salvages_a_valid_partition_or_interrupts_cleanly() {
    let mut rng = StdRng::seed_from_u64(11);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    // Far more iterations than the deadline allows.
    let mut p = params(2);
    p.iterations = 100_000;
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(120));

    let started = Instant::now();
    let outcome = FlowPartitioner::try_new(p)
        .unwrap()
        .run_with_budget(h, &spec, &mut rng, &budget);
    // The run must actually respect the deadline (generous slack for CI).
    assert!(started.elapsed() < Duration::from_secs(30));

    match outcome {
        Ok(run) => {
            assert!(
                matches!(
                    run.outcome,
                    RunOutcome::DeadlineExceeded | RunOutcome::Degraded
                ),
                "got {:?}",
                run.outcome
            );
            validate::validate(h, &spec, &run.result.partition).unwrap();
            assert!(run.result.cost.is_finite());
        }
        // A very slow machine may not finish even one salvage; that must
        // still surface as the typed interrupt, not a panic.
        Err(e) => assert!(matches!(e, CoreError::Interrupted(Interrupt::Deadline))),
    }
}

/// Cancellation from another thread stops the run cooperatively and keeps
/// the best feasible partition found before the token fired.
#[test]
fn cross_thread_cancellation_salvages_the_best_so_far() {
    let mut rng = StdRng::seed_from_u64(23);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let mut p = params(2);
    p.iterations = 100_000;
    let token = CancelToken::new();
    let budget = Budget::unlimited().with_cancel_token(token.clone());

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            token.cancel();
        })
    };
    let outcome = FlowPartitioner::try_new(p)
        .unwrap()
        .run_with_budget(h, &spec, &mut rng, &budget);
    canceller.join().unwrap();
    assert!(token.is_cancelled());

    match outcome {
        Ok(run) => {
            assert_eq!(run.outcome, RunOutcome::Cancelled);
            validate::validate(h, &spec, &run.result.partition).unwrap();
        }
        Err(e) => assert!(matches!(e, CoreError::Interrupted(Interrupt::Cancelled))),
    }
}

/// Budget counters are shared with the caller and observable after the run.
#[test]
fn budget_counters_report_work_performed() {
    let mut rng = StdRng::seed_from_u64(5);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let spec = TreeSpec::full_tree(inst.hypergraph.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let budget = Budget::unlimited();
    let run = FlowPartitioner::try_new(params(1))
        .unwrap()
        .run_with_budget(&inst.hypergraph, &spec, &mut rng, &budget)
        .unwrap();
    assert_eq!(run.outcome, RunOutcome::Complete);
    assert!(budget.rounds_used() > 0);
    assert!(budget.probes_used() > 0);
    let probes_in_history: usize = run.result.history.iter().map(|r| r.stats.probes).sum();
    assert_eq!(budget.probes_used(), probes_in_history as u64);
}

/// A round cap interrupts the metric mid-computation, and the salvage
/// construction from the partially-converged metric is marked `Degraded`.
#[test]
fn round_cap_degrades_but_yields_a_feasible_partition() {
    let mut rng = StdRng::seed_from_u64(17);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let budget = Budget::unlimited().with_max_rounds(2);
    let run = FlowPartitioner::try_new(params(1))
        .unwrap()
        .run_with_budget(h, &spec, &mut rng, &budget)
        .expect("salvage constructions succeed on this instance");
    assert_eq!(run.outcome, RunOutcome::Degraded);
    validate::validate(h, &spec, &run.result.partition).unwrap();
    let stats = &run.result.history[0].stats;
    assert_eq!(stats.interrupt, Some(Interrupt::RoundLimit));
    assert!(!stats.converged);
}
