//! Property tests for the slack-aware probe scheduler: deferring
//! well-satisfied sources must never change *whether* Algorithm 2
//! converges, only how much work it spends getting there.

use htp_core::constraint::check_feasibility;
use htp_core::injector::{compute_spreading_metric, FlowParams, ProbeSchedule};
use htp_model::TreeSpec;
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(schedule: ProbeSchedule) -> FlowParams {
    FlowParams {
        schedule,
        ..FlowParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whenever the exhaustive schedule converges, the adaptive one does
    /// too, and both metrics pass the exhaustive (P1) feasibility scan.
    /// Instance sizes sit above the 256-node adaptive cutoff, so the
    /// deferral machinery is genuinely in play.
    #[test]
    fn adaptive_converges_to_a_feasible_metric_whenever_exhaustive_does(
        instance_seed in 0u64..1_000,
        flow_seed in 0u64..1_000,
        clusters in 3usize..5,
        cluster_size in 90usize..130,
    ) {
        let inst = clustered_hypergraph(
            ClusteredParams {
                clusters,
                cluster_size,
                intra_nets: clusters * cluster_size * 2,
                inter_nets: clusters * 2,
                ..ClusteredParams::default()
            },
            &mut StdRng::seed_from_u64(instance_seed),
        );
        let h = &inst.hypergraph;
        let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.2, 1.0).unwrap();

        let (m_ex, st_ex) = compute_spreading_metric(
            h,
            &spec,
            params(ProbeSchedule::Exhaustive),
            &mut StdRng::seed_from_u64(flow_seed),
        );
        let (m_ad, st_ad) = compute_spreading_metric(
            h,
            &spec,
            params(ProbeSchedule::Adaptive),
            &mut StdRng::seed_from_u64(flow_seed),
        );

        prop_assert_eq!(st_ex.deferrals, 0, "exhaustive never defers");
        if st_ex.converged {
            prop_assert!(
                st_ad.converged,
                "adaptive failed where exhaustive converged \
                 (instance {}, flow {})",
                instance_seed,
                flow_seed
            );
        }
        let tol = params(ProbeSchedule::Adaptive).tolerance;
        if st_ex.converged {
            let rep = check_feasibility(h, &spec, &m_ex, tol);
            prop_assert!(rep.feasible, "exhaustive metric infeasible: {rep:?}");
        }
        if st_ad.converged {
            let rep = check_feasibility(h, &spec, &m_ad, tol);
            prop_assert!(rep.feasible, "adaptive metric infeasible: {rep:?}");
        }
    }
}

/// Below the 256-node cutoff the adaptive schedule falls back to the
/// exhaustive one: metric and stats must be bit-identical, with no
/// deferrals recorded.
#[test]
fn small_instances_ignore_the_adaptive_schedule() {
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut StdRng::seed_from_u64(7));
    let h = &inst.hypergraph;
    assert!(h.num_nodes() < 256, "fixture must sit below the cutoff");
    let spec = TreeSpec::full_tree(h.total_size(), 3, 2, 1.2, 1.0).unwrap();
    let (m_ad, st_ad) = compute_spreading_metric(
        h,
        &spec,
        params(ProbeSchedule::Adaptive),
        &mut StdRng::seed_from_u64(3),
    );
    let (m_ex, st_ex) = compute_spreading_metric(
        h,
        &spec,
        params(ProbeSchedule::Exhaustive),
        &mut StdRng::seed_from_u64(3),
    );
    assert_eq!(m_ad.lengths(), m_ex.lengths());
    assert_eq!(st_ad, st_ex);
    assert_eq!(st_ad.deferrals, 0);
}
