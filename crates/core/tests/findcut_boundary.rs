//! Boundary tests for `find_cut_budgeted`'s stride-256 budget check and
//! for `GrowerScratch` reuse across graphs.

use htp_core::findcut::find_cut_budgeted;
use htp_core::sptree::{GrowerScratch, TreeGrower};
use htp_core::{Budget, CancelToken, Interrupt, SpreadingMetric};
use htp_netlist::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_chain(n: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::with_unit_nodes(n);
    for i in 0..n as u32 - 1 {
        b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
    }
    b.build().unwrap()
}

fn cancelled_budget() -> Budget {
    let token = CancelToken::new();
    token.cancel();
    Budget::unlimited().with_cancel_token(token)
}

/// Grows up to `ub` unit nodes under a pre-cancelled budget and reports
/// whether the growth was interrupted. The growth loop absorbs one node
/// per iteration and only consults the budget every 256 iterations, so
/// the cancellation becomes observable exactly when `ub` reaches 256.
fn grow_with_cancelled_budget(ub: u64) -> Result<(), Interrupt> {
    let h = unit_chain(300);
    let metric = SpreadingMetric::from_lengths(vec![1.0; h.num_nets()]);
    let mut rng = StdRng::seed_from_u64(1);
    find_cut_budgeted(&h, &metric, 1, ub, &mut rng, &cancelled_budget()).map(|r| {
        assert!(r.in_window);
    })
}

#[test]
fn growth_of_255_steps_never_reaches_the_budget_check() {
    // 255 iterations: the stride counter never hits 256, so even a
    // cancelled budget goes unnoticed and the cut completes.
    assert_eq!(grow_with_cancelled_budget(255), Ok(()));
}

#[test]
fn growth_step_256_hits_the_budget_check() {
    assert_eq!(grow_with_cancelled_budget(256), Err(Interrupt::Cancelled));
}

#[test]
fn growth_step_257_is_interrupted_at_256() {
    assert_eq!(grow_with_cancelled_budget(257), Err(Interrupt::Cancelled));
}

#[test]
fn unlimited_budget_passes_the_stride_check() {
    let h = unit_chain(300);
    let metric = SpreadingMetric::from_lengths(vec![1.0; h.num_nets()]);
    let mut rng = StdRng::seed_from_u64(1);
    let r = find_cut_budgeted(&h, &metric, 1, 257, &mut rng, &Budget::unlimited())
        .expect("an unlimited budget never interrupts");
    assert!(r.in_window);
    let prefix: u64 = r.nodes.iter().map(|&v| h.node_size(v)).sum();
    assert!((1..=257).contains(&prefix));
}

#[test]
#[should_panic(expected = "scratch sized for a different node count")]
fn scratch_from_a_smaller_graph_is_rejected() {
    let small = unit_chain(4);
    let big = unit_chain(5);
    let metric = SpreadingMetric::from_lengths(vec![1.0; big.num_nets()]);
    let mut scratch = GrowerScratch::new(&small);
    let _ = TreeGrower::with_scratch(&big, &metric, NodeId(0), &mut scratch);
}

#[test]
#[should_panic(expected = "scratch sized for a different net count")]
fn scratch_with_a_different_net_count_is_rejected() {
    // Same node count, different net count: a chain vs. a cycle.
    let chain = unit_chain(6);
    let mut b = HypergraphBuilder::with_unit_nodes(6);
    for i in 0..6u32 {
        b.add_net(1.0, [NodeId(i), NodeId((i + 1) % 6)]).unwrap();
    }
    let cycle = b.build().unwrap();
    let metric = SpreadingMetric::from_lengths(vec![1.0; cycle.num_nets()]);
    let mut scratch = GrowerScratch::new(&chain);
    let _ = TreeGrower::with_scratch(&cycle, &metric, NodeId(0), &mut scratch);
}

#[test]
fn scratch_reuse_across_same_shaped_graphs_matches_fresh_buffers() {
    // Two different topologies with identical node/net counts: a chain
    // and a star-ish tree. One scratch serves both, in alternation, and
    // must always reproduce the fresh-buffer distances.
    let chain = unit_chain(8);
    let mut b = HypergraphBuilder::with_unit_nodes(8);
    for i in 1..8u32 {
        b.add_net(1.0, [NodeId(0), NodeId(i)]).unwrap();
    }
    let star = b.build().unwrap();
    let metric = SpreadingMetric::from_lengths((0..7).map(|i| 1.0 + i as f64).collect());

    let mut scratch = GrowerScratch::new(&chain);
    for round in 0..3 {
        for h in [&chain, &star] {
            for s in 0..8 {
                let source = NodeId(s);
                let reused: Vec<_> = TreeGrower::with_scratch(h, &metric, source, &mut scratch)
                    .map(|step| (step.node, step.dist))
                    .collect();
                let fresh: Vec<_> = TreeGrower::new(h, &metric, source)
                    .map(|step| (step.node, step.dist))
                    .collect();
                assert_eq!(reused, fresh, "round {round}, source {s}");
            }
        }
    }
}
