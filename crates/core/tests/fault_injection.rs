//! Deterministic fault-injection harness (requires `--features
//! fault-injection`): seeded probe panics, injected oracle errors, and
//! forced deadline expiry, all reproducible bit-for-bit.
#![cfg(feature = "fault-injection")]

use std::sync::Once;

use htp_core::injector::{compute_spreading_metric_budgeted, FlowParams};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::{Budget, FaultPlan, Interrupt, RunOutcome};
use htp_model::{validate, TreeSpec};
use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Keep the expected probe panics out of the test output.
fn silence_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected probe fault"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected probe fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn params(threads: usize) -> PartitionerParams {
    let mut p = PartitionerParams {
        iterations: 2,
        constructions_per_metric: 2,
        ..PartitionerParams::default()
    };
    p.flow.threads = threads;
    p
}

/// Acceptance (a): deadline expiry in the middle of a metric computation —
/// forced deterministically at round 2 — degrades gracefully to a valid
/// best-so-far partition, identically at every thread count.
#[test]
fn forced_expiry_mid_metric_degrades_deterministically() {
    let mut rng = StdRng::seed_from_u64(1);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        let plan = FaultPlan::new().expire_at_round(2);
        let budget = Budget::unlimited().with_faults(plan);
        let mut run_rng = StdRng::seed_from_u64(9);
        let run = FlowPartitioner::try_new(params(threads))
            .unwrap()
            .run_with_budget(h, &spec, &mut run_rng, &budget)
            .expect("salvage succeeds on this instance");

        assert_eq!(run.outcome, RunOutcome::Degraded, "threads={threads}");
        validate::validate(h, &spec, &run.result.partition).unwrap();
        let stats = &run.result.history[0].stats;
        assert_eq!(stats.interrupt, Some(Interrupt::Deadline));
        assert!(!stats.converged);
        outputs.push((run.result.partition.clone(), run.result.cost));
    }
    for (p, c) in &outputs[1..] {
        assert_eq!(
            *p, outputs[0].0,
            "degraded output must not depend on threads"
        );
        assert_eq!(c.to_bits(), outputs[0].1.to_bits());
    }
}

/// Acceptance (b): a seeded probe panic is contained — the run completes,
/// the panic is recorded in `InjectionStats`, and the final metric is
/// unaffected by the worker thread count.
#[test]
fn seeded_probe_panic_is_contained_and_recorded() {
    silence_panic_hook();
    let mut rng = StdRng::seed_from_u64(2);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let mut metrics = Vec::new();
    for threads in [1usize, 2, 4] {
        let plan = FaultPlan::new().panic_at_probe(3).panic_at_probe(17);
        let budget = Budget::unlimited().with_faults(plan);
        let flow = FlowParams {
            threads,
            ..FlowParams::default()
        };
        let mut run_rng = StdRng::seed_from_u64(4);
        let (metric, stats) =
            compute_spreading_metric_budgeted(h, &spec, flow, &mut run_rng, &budget);

        assert_eq!(stats.panicked_probes, 2, "threads={threads}");
        assert_eq!(
            stats.interrupt, None,
            "a contained panic is not an interrupt"
        );
        assert!(
            stats.converged,
            "the panicked nodes are re-probed and converge"
        );
        metrics.push(metric);
    }
    for m in &metrics[1..] {
        assert_eq!(*m, metrics[0], "metric must not depend on threads");
    }
}

/// A probe panic inside a full partitioner run is contained too: the run
/// completes with a valid partition and the fault shows up in the history.
#[test]
fn probe_panic_during_a_full_run_does_not_abort_it() {
    silence_panic_hook();
    let mut rng = StdRng::seed_from_u64(6);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let plan = FaultPlan::new().panic_at_probe(5);
    let budget = Budget::unlimited().with_faults(plan);
    let mut run_rng = StdRng::seed_from_u64(8);
    let run = FlowPartitioner::try_new(params(2))
        .unwrap()
        .run_with_budget(h, &spec, &mut run_rng, &budget)
        .unwrap();

    // The run reached the end; the fault was absorbed, not fatal, and the
    // outcome reports the degradation.
    assert_eq!(run.outcome, RunOutcome::Degraded);
    validate::validate(h, &spec, &run.result.partition).unwrap();
    // Fault-plan probe indices are relative to each metric computation, so
    // probe 5 panics once per iteration.
    let total_panics: usize = run
        .result
        .history
        .iter()
        .map(|r| r.stats.panicked_probes)
        .sum();
    assert_eq!(total_panics, run.result.history.len());
}

/// Injected oracle errors are handled like contained panics: recorded,
/// node kept in the working set, computation converges.
#[test]
fn injected_oracle_errors_are_recorded_and_survived() {
    let mut rng = StdRng::seed_from_u64(10);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let plan = FaultPlan::new()
        .oracle_error_at_probe(0)
        .oracle_error_at_probe(11);
    let budget = Budget::unlimited().with_faults(plan);
    let mut run_rng = StdRng::seed_from_u64(12);
    let (_, stats) =
        compute_spreading_metric_budgeted(h, &spec, FlowParams::default(), &mut run_rng, &budget);
    assert_eq!(stats.oracle_faults, 2);
    assert!(stats.converged);
}

/// Seeded random panics hit a deterministic probe subset: two identical
/// plans produce bit-identical stats and metrics.
#[test]
fn seeded_panic_rate_is_reproducible() {
    silence_panic_hook();
    let mut rng = StdRng::seed_from_u64(14);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let run = |threads: usize| {
        // ~5% of probes panic.
        let plan = FaultPlan::new().seeded_panics(0xFEED, 50_000);
        let budget = Budget::unlimited().with_faults(plan);
        let flow = FlowParams {
            threads,
            ..FlowParams::default()
        };
        let mut run_rng = StdRng::seed_from_u64(16);
        compute_spreading_metric_budgeted(h, &spec, flow, &mut run_rng, &budget)
    };
    let (m1, s1) = run(1);
    let (m1_again, s1_again) = run(1);
    assert!(
        s1.panicked_probes > 0,
        "the 5% rate should hit at least once"
    );
    assert_eq!(s1, s1_again, "identical plans replay bit-for-bit");
    assert_eq!(m1, m1_again);
    // Panic sites are probe-indexed, so they are thread-count invariant
    // (speculative waste is not, so only the metric and panic count must
    // agree across thread counts).
    let (m4, s4) = run(4);
    assert_eq!(s1.panicked_probes, s4.panicked_probes);
    assert_eq!(m1, m4);
}

/// An empty fault plan behaves exactly like no plan at all.
#[test]
fn empty_fault_plan_is_a_no_op() {
    let mut rng = StdRng::seed_from_u64(18);
    let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
    let h = &inst.hypergraph;
    let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();

    let part = FlowPartitioner::try_new(params(2)).unwrap();
    let mut rng_a = StdRng::seed_from_u64(20);
    let plain = part.run(h, &spec, &mut rng_a).unwrap();

    let budget = Budget::unlimited().with_faults(FaultPlan::new());
    let mut rng_b = StdRng::seed_from_u64(20);
    let faulted = part.run_with_budget(h, &spec, &mut rng_b, &budget).unwrap();

    assert_eq!(faulted.outcome, RunOutcome::Complete);
    assert_eq!(plain.partition, faulted.result.partition);
    assert_eq!(plain.cost.to_bits(), faulted.result.cost.to_bits());
}
