//! Property and concurrency tests for `runtime::Budget` / `CancelToken`:
//! cap saturation, cancel-before-start, and monotonic shared counters
//! under concurrent probes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use htp_core::{Budget, CancelToken, Interrupt};
use proptest::prelude::*;

#[test]
fn cancel_before_start_interrupts_the_first_check() {
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel_token(token);
    assert_eq!(budget.check(), Err(Interrupt::Cancelled));
    // Ticks report the cancellation too (and still charge the counter).
    assert_eq!(budget.round_tick(), Err(Interrupt::Cancelled));
    assert_eq!(budget.probe_tick(), Err(Interrupt::Cancelled));
    assert_eq!(budget.rounds_used(), 1);
    assert_eq!(budget.probes_used(), 1);
}

#[test]
fn cancellation_wins_over_an_expired_deadline() {
    // An already-expired deadline AND a cancelled token: the explicit
    // user abort must not be misattributed to a timeout.
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited()
        .with_deadline(std::time::Duration::ZERO)
        .with_cancel_token(token);
    assert_eq!(budget.check(), Err(Interrupt::Cancelled));
}

#[test]
fn probe_cap_saturates_exactly_at_the_cap() {
    let budget = Budget::unlimited().with_max_probes(5);
    for i in 0..5 {
        assert_eq!(budget.probe_tick(), Ok(()), "tick {i} is within the cap");
    }
    // Once saturated, every further tick reports the limit, forever, and
    // the usage counter keeps recording the attempts.
    for i in 0..10 {
        assert_eq!(
            budget.probe_tick(),
            Err(Interrupt::ProbeLimit),
            "tick {} is over the cap",
            5 + i
        );
    }
    assert_eq!(budget.probes_used(), 15);
    assert_eq!(budget.check(), Err(Interrupt::ProbeLimit));
}

#[test]
fn round_cap_saturates_exactly_at_the_cap() {
    let budget = Budget::unlimited().with_max_rounds(3);
    assert_eq!(budget.check(), Ok(()));
    for _ in 0..3 {
        assert_eq!(budget.round_tick(), Ok(()));
    }
    assert_eq!(budget.round_tick(), Err(Interrupt::RoundLimit));
    assert_eq!(budget.rounds_used(), 4);
    assert_eq!(budget.check(), Err(Interrupt::RoundLimit));
}

#[test]
fn clones_share_counters_and_cancel_flag() {
    let budget = Budget::unlimited().with_max_probes(2);
    let clone = budget.clone();
    assert_eq!(budget.probe_tick(), Ok(()));
    assert_eq!(clone.probe_tick(), Ok(()));
    assert_eq!(budget.probe_tick(), Err(Interrupt::ProbeLimit));
    assert_eq!(clone.probes_used(), 3);

    budget.cancel_token().cancel();
    assert_eq!(clone.check(), Err(Interrupt::Cancelled));
}

#[test]
fn counters_are_monotone_under_concurrent_probes() {
    const THREADS: usize = 4;
    const TICKS: u64 = 2_000;

    let budget = Budget::unlimited().with_max_probes(THREADS as u64 * TICKS / 2);
    let done = Arc::new(AtomicBool::new(false));

    // A watcher samples the shared counters while the workers hammer
    // them: every sample must be >= the previous one.
    let watcher = {
        let budget = budget.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_probes = 0;
            let mut last_rounds = 0;
            while !done.load(Ordering::Acquire) {
                let probes = budget.probes_used();
                let rounds = budget.rounds_used();
                assert!(probes >= last_probes, "probes_used went backwards");
                assert!(rounds >= last_rounds, "rounds_used went backwards");
                last_probes = probes;
                last_rounds = rounds;
                thread::yield_now();
            }
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let budget = budget.clone();
            thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..TICKS {
                    if budget.probe_tick().is_ok() {
                        ok += 1;
                    }
                    // Rounds are uncapped here; ticking them alongside
                    // probes checks the counters stay independent.
                    let _ = budget.round_tick();
                }
                ok
            })
        })
        .collect();

    let granted: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    done.store(true, Ordering::Release);
    watcher.join().expect("watcher");

    // Every attempt is recorded; exactly the capped number succeeded.
    assert_eq!(budget.probes_used(), THREADS as u64 * TICKS);
    assert_eq!(budget.rounds_used(), THREADS as u64 * TICKS);
    assert_eq!(granted, THREADS as u64 * TICKS / 2);
}

proptest! {
    // For any cap and attempt count, exactly min(cap, attempts) probe
    // ticks succeed and the counter records every attempt.
    #[test]
    fn probe_grants_match_the_cap(cap in 0u64..200, attempts in 0u64..200) {
        let budget = Budget::unlimited().with_max_probes(cap);
        let granted = (0..attempts).filter(|_| budget.probe_tick().is_ok()).count() as u64;
        prop_assert_eq!(granted, cap.min(attempts));
        prop_assert_eq!(budget.probes_used(), attempts);
    }

    // An unlimited budget never interrupts, whatever the tick pattern.
    #[test]
    fn unlimited_budgets_never_interrupt(rounds in 0u64..64, probes in 0u64..64) {
        let budget = Budget::unlimited();
        prop_assert_eq!(budget.check(), Ok(()));
        for _ in 0..rounds {
            prop_assert_eq!(budget.round_tick(), Ok(()));
        }
        for _ in 0..probes {
            prop_assert_eq!(budget.probe_tick(), Ok(()));
        }
        prop_assert_eq!(budget.rounds_used(), rounds);
        prop_assert_eq!(budget.probes_used(), probes);
    }
}
