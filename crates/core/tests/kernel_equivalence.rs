//! Differential kernel-equivalence suite: the CSR probe kernel (with
//! either frontier) must be indistinguishable from the legacy
//! `TreeGrower` path, step for step and bit for bit.
//!
//! Three layers of lockdown:
//!
//! 1. **Settle sequences** — the `(node, dist, via_net, parent)` stream of
//!    the CSR kernel under the heap frontier AND under the dial frontier
//!    equals the legacy grower's on every conformance family and on
//!    proptest-generated hypergraphs (single-pin nets routed through
//!    `add_net_lenient`, duplicate nets, zero-length nets).
//! 2. **Probe reports** — `probe_source_csr` (heap and dial) reproduces
//!    `probe_source`'s `ProbeReport` exactly, including the violating
//!    tree's nets, weights and `f64` sums, under a spec with a
//!    zero-weight level.
//! 3. **Full pipeline** — `FlowPartitioner` digests are identical at 1, 2,
//!    4, and 8 probe threads crossed with forced-heap and forced-dial
//!    frontiers.
//!
//! `f64` equality throughout is exact (`==` / `assert_eq!` on the raw
//! values, debug-formatted reports for the nested structs) — "close
//! enough" would defeat the purpose of pinning the kernels together.

use htp_core::constraint::{probe_source, probe_source_csr, CsrProbeScratch, ProbeScratch};
use htp_core::injector::{FlowParams, FrontierMode};
use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
use htp_core::sptree::{CsrGrowerScratch, TreeGrower, TreeStep};
use htp_core::SpreadingMetric;
use htp_graph::{dial_plan_forced, DialQueue, Frontier, IndexedMinHeap};
use htp_model::TreeSpec;
use htp_netlist::{CsrHypergraph, Hypergraph, HypergraphBuilder, NodeId};
use htp_verify::gen::all_families;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed shared with the conformance harness.
const SEED: u64 = 1997;

/// A settled node as a plain comparable record.
type Step = (u32, f64, Option<u32>, Option<u32>);

fn rec(s: TreeStep) -> Step {
    (
        s.node.0,
        s.dist,
        s.via_net.map(|e| e.0),
        s.parent.map(|v| v.0),
    )
}

/// Deterministic, quantized-ish positive lengths: a small set of distinct
/// values so the dial queue gets real multi-key buckets and real ties.
fn synthetic_lengths(nets: usize) -> Vec<f64> {
    (0..nets)
        .map(|e| 0.125 * ((e * 17) % 13 + 1) as f64)
        .collect()
}

fn legacy_steps(h: &Hypergraph, m: &SpreadingMetric, source: NodeId) -> Vec<Step> {
    TreeGrower::new(h, m, source).map(rec).collect()
}

fn csr_steps<F: Frontier>(csr: &CsrHypergraph, frontier: &mut F, source: u32) -> Vec<Step> {
    let mut g = CsrGrowerScratch::new(csr);
    g.start(frontier, source);
    let mut out = Vec::new();
    while let Some(s) = g.step(csr, frontier) {
        out.push(rec(s));
    }
    out
}

/// Asserts all three kernels settle the identical sequence from `source`.
fn assert_kernels_agree(h: &Hypergraph, lengths: &[f64], source: usize, what: &str) {
    let m = SpreadingMetric::from_lengths(lengths.to_vec());
    let csr = CsrHypergraph::with_lengths(h, lengths);
    let want = legacy_steps(h, &m, NodeId::new(source));

    let mut heap = IndexedMinHeap::new(h.num_nodes());
    let got_heap = csr_steps(&csr, &mut heap, source as u32);
    assert_eq!(
        got_heap, want,
        "{what}: csr+heap vs legacy, source {source}"
    );

    let (width, buckets) = dial_plan_forced(csr.lengths(), 4096);
    let mut dial = DialQueue::new(h.num_nodes(), width, buckets);
    let got_dial = csr_steps(&csr, &mut dial, source as u32);
    assert_eq!(
        got_dial, want,
        "{what}: csr+dial vs legacy, source {source}"
    );
}

#[test]
fn settle_sequences_agree_on_every_conformance_family() {
    for inst in all_families(SEED) {
        let h = &inst.hypergraph;
        let lengths = synthetic_lengths(h.num_nets());
        for source in [0, h.num_nodes() / 2, h.num_nodes() - 1] {
            assert_kernels_agree(h, &lengths, source, inst.family);
        }
    }
}

/// Debug formatting round-trips every distinct `f64` to a distinct
/// string, so report equality below is bit-equality of all the sums.
fn probe_all_sources(inst: &htp_verify::gen::Instance, tolerance: f64) {
    let h = &inst.hypergraph;
    let lengths = synthetic_lengths(h.num_nets());
    let metric = SpreadingMetric::from_lengths(lengths.clone());
    let csr = CsrHypergraph::with_lengths(h, &lengths);
    let mut legacy = ProbeScratch::new(h);
    let mut flat = CsrProbeScratch::new(&csr);
    let (width, buckets) = dial_plan_forced(csr.lengths(), 4096);
    flat.plan_dial(width, buckets);
    for v in h.nodes() {
        let want = format!(
            "{:?}",
            probe_source(h, &inst.spec, &metric, v, tolerance, &mut legacy)
        );
        let heap = format!(
            "{:?}",
            probe_source_csr(&csr, &inst.spec, v, tolerance, &mut flat, false)
        );
        assert_eq!(heap, want, "{}: csr+heap probe of {v:?}", inst.family);
        let dial = format!(
            "{:?}",
            probe_source_csr(&csr, &inst.spec, v, tolerance, &mut flat, true)
        );
        assert_eq!(dial, want, "{}: csr+dial probe of {v:?}", inst.family);
    }
}

#[test]
fn probe_reports_agree_on_every_conformance_family() {
    for inst in all_families(SEED) {
        probe_all_sources(&inst, 1e-9);
    }
}

/// FNV-1a, as in the conformance harness.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of (cost, per-node leaf rank), stable under vertex renumbering.
fn digest(h: &Hypergraph, r: &htp_core::partitioner::FlowResult) -> u64 {
    let leaves = r.partition.leaves();
    let rank_of = |v| {
        leaves
            .iter()
            .position(|&l| l == r.partition.leaf_of(v))
            .expect("every node maps to a leaf") as u64
    };
    let mut acc = fnv1a(0xcbf2_9ce4_8422_2325, &r.cost.to_bits().to_le_bytes());
    for v in h.nodes() {
        acc = fnv1a(acc, &rank_of(v).to_le_bytes());
    }
    acc
}

#[test]
fn full_pipeline_digests_are_identical_across_threads_and_frontiers() {
    // Three families keep the 8-way matrix fast in debug; rent-like is
    // the workhorse, the other two cover duplicate nets and zero-weight
    // levels end to end.
    for inst in all_families(SEED)
        .into_iter()
        .filter(|i| matches!(i.family, "rent-like" | "zero-weight" | "duplicate-nets"))
    {
        let mut baseline = None;
        for threads in [1usize, 2, 4, 8] {
            for frontier in [FrontierMode::Heap, FrontierMode::Dial] {
                let params = PartitionerParams {
                    iterations: 2,
                    constructions_per_metric: 4,
                    flow: FlowParams {
                        threads,
                        frontier,
                        ..FlowParams::default()
                    },
                };
                let result = FlowPartitioner::try_new(params)
                    .expect("params are valid")
                    .run(
                        &inst.hypergraph,
                        &inst.spec,
                        &mut StdRng::seed_from_u64(SEED),
                    )
                    .expect("conformance families are solvable");
                let d = digest(&inst.hypergraph, &result);
                match baseline {
                    None => baseline = Some(d),
                    Some(want) => assert_eq!(
                        d, want,
                        "{}: digest diverged at threads={threads}, {frontier:?}",
                        inst.family
                    ),
                }
            }
        }
    }
}

/// Builds a hypergraph from raw net descriptors, routing every net
/// through `add_net_lenient` so single-pin (post-dedup) nets are legal
/// input and simply dropped, exactly like production ingestion.
fn build_lenient(nodes: usize, nets: &[(f64, Vec<usize>)]) -> Hypergraph {
    let mut b = HypergraphBuilder::with_unit_nodes(nodes);
    for (cap, pins) in nets {
        let mut pins: Vec<NodeId> = pins.iter().map(|&p| NodeId::new(p % nodes)).collect();
        pins.sort();
        pins.dedup();
        b.add_net_lenient(*cap, pins).expect("pins are in range");
    }
    b.build().expect("lenient nets always build")
}

/// Spec with a zero-weight middle level, exercised by every probe below.
fn zero_weight_spec() -> TreeSpec {
    TreeSpec::new(vec![(2, 2, 1.0), (8, 2, 0.0), (64, 4, 1.0)]).expect("spec is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_hypergraphs_settle_identically(
        nodes in 2usize..24,
        nets in proptest::collection::vec(
            (0.1f64..4.0, proptest::collection::vec(0usize..24, 1..5)),
            0..32,
        ),
        base in 0.0f64..2.0,
        mult in 0.0f64..1.0,
        source in 0usize..24,
    ) {
        let h = build_lenient(nodes, &nets);
        // Quantized spectrum with occasional exact zeros and ties.
        let lengths: Vec<f64> = (0..h.num_nets())
            .map(|e| base + ((e * 7) % 5) as f64 * mult)
            .collect();
        assert_kernels_agree(&h, &lengths, source % nodes, "random");
    }

    #[test]
    fn random_hypergraphs_probe_identically(
        nodes in 2usize..20,
        nets in proptest::collection::vec(
            (0.1f64..4.0, proptest::collection::vec(0usize..20, 1..5)),
            0..24,
        ),
        base in 0.0f64..2.0,
        mult in 0.0f64..1.0,
    ) {
        let h = build_lenient(nodes, &nets);
        let lengths: Vec<f64> = (0..h.num_nets())
            .map(|e| base + ((e * 3) % 4) as f64 * mult)
            .collect();
        let spec = zero_weight_spec();
        let metric = SpreadingMetric::from_lengths(lengths.clone());
        let csr = CsrHypergraph::with_lengths(&h, &lengths);
        let mut legacy = ProbeScratch::new(&h);
        let mut flat = CsrProbeScratch::new(&csr);
        let (width, buckets) = dial_plan_forced(csr.lengths(), 4096);
        flat.plan_dial(width, buckets);
        for v in h.nodes() {
            let want = format!(
                "{:?}",
                probe_source(&h, &spec, &metric, v, 1e-9, &mut legacy)
            );
            let heap = format!(
                "{:?}",
                probe_source_csr(&csr, &spec, v, 1e-9, &mut flat, false)
            );
            prop_assert_eq!(&heap, &want, "csr+heap probe of {:?}", v);
            let dial = format!(
                "{:?}",
                probe_source_csr(&csr, &spec, v, 1e-9, &mut flat, true)
            );
            prop_assert_eq!(&dial, &want, "csr+dial probe of {:?}", v);
        }
    }
}
