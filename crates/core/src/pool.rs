//! Deterministic scoped-pool helpers shared by the engine's parallel
//! phases.
//!
//! Both parallel hot paths in the workspace — the metric injector's probe
//! phase here in `htp-core` and the V-cycle's flow-refinement proposals in
//! `htp-cluster` — follow the same speculative-probe/sequential-commit
//! discipline: workers compute independent results against a round-start
//! snapshot into **disjoint, index-addressed slots**, and a sequential
//! commit phase consumes the slots in a fixed order. Under that contract
//! the output is a pure function of the snapshot, never of thread timing,
//! so results are bit-identical at any worker count.
//!
//! This module centralizes the two pieces both sites need: resolving a
//! `threads` parameter (`0` = all available parallelism) and the chunked
//! `std::thread::scope` fan-out itself.

/// Resolves a thread-count parameter: `0` means all available
/// parallelism (falling back to 1 if it cannot be determined), any other
/// value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        t => t,
    }
}

/// Computes `f(0), f(1), …, f(n-1)` on a scoped worker pool and returns
/// the results in index order.
///
/// Slot `i` always holds `f(i)`: workers own disjoint contiguous chunks,
/// so the returned vector is identical at every `threads` setting —
/// including `1`, which runs inline with no pool at all. `threads`
/// follows the [`resolve_threads`] convention. `f` must be safe to call
/// concurrently from multiple threads (it only gets `&self` access to
/// captured state); a panic inside `f` propagates to the caller.
pub fn parallel_fill<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(n);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (ci, slots) in out.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || {
                    let base = ci * chunk;
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(base + j));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|s| s.expect("every slot is filled by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn fill_is_identical_at_every_thread_count() {
        let want: Vec<usize> = (0..257).map(|i| i * i).collect();
        for t in [1, 2, 4, 8, 0] {
            assert_eq!(parallel_fill(257, t, |i| i * i), want, "threads={t}");
        }
    }

    #[test]
    fn fill_handles_small_and_empty_inputs() {
        assert_eq!(parallel_fill(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_fill(1, 8, |i| i + 10), vec![10]);
        // More threads than items: workers clamp to n.
        assert_eq!(parallel_fill(3, 64, |i| i), vec![0, 1, 2]);
    }
}
