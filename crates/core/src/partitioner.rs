//! Algorithm 1: the outer flow-based partitioning loop.
//!
//! Each iteration computes a fresh spreading metric (Algorithm 2) and
//! constructs one or more partitions from it (Algorithm 3), keeping the best
//! feasible partition seen. Running several constructions per metric is the
//! extension suggested in the paper's conclusions: the metric computation
//! dominates the runtime, so re-rolling only the (randomized) construction
//! buys extra quality almost for free.

use rand::Rng;

use htp_model::{cost, validate, HierarchicalPartition, TreeSpec};
use htp_netlist::Hypergraph;

use crate::injector::{compute_spreading_metric, FlowParams, InjectionStats};
use crate::{construct::construct_partition, CoreError, SpreadingMetric};

/// Parameters of the outer loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionerParams {
    /// Number of outer iterations `N` (fresh metric each time).
    pub iterations: usize,
    /// Constructions attempted per metric (the conclusions' extension;
    /// `1` reproduces the paper's Algorithm 1 exactly).
    pub constructions_per_metric: usize,
    /// Parameters of the metric computation, including the probe-worker
    /// thread count ([`FlowParams::threads`]) — the partitioner's output
    /// is bit-identical at any thread setting.
    pub flow: FlowParams,
}

impl Default for PartitionerParams {
    fn default() -> Self {
        PartitionerParams {
            iterations: 4,
            constructions_per_metric: 4,
            flow: FlowParams::default(),
        }
    }
}

/// Record of one outer iteration, for experiment logging.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// LP objective `Σ c(e)·d(e)` of the iteration's metric.
    pub metric_objective: f64,
    /// Best construction cost achieved with this metric (`None` if every
    /// construction failed).
    pub best_cost: Option<f64>,
    /// Metric-computation statistics.
    pub stats: InjectionStats,
}

/// Result of a [`FlowPartitioner`] run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The best feasible partition found.
    pub partition: HierarchicalPartition,
    /// Its interconnection cost.
    pub cost: f64,
    /// The spreading metric that produced the best partition.
    pub metric: SpreadingMetric,
    /// Per-iteration log.
    pub history: Vec<IterationRecord>,
}

/// The network-flow-based constructive partitioner (**Algorithm 1**).
///
/// # Examples
///
/// ```
/// use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
/// use htp_model::TreeSpec;
/// use htp_netlist::{HypergraphBuilder, NodeId};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_nodes(8);
/// for i in 0..7u32 {
///     b.add_net(1.0, [NodeId(i), NodeId(i + 1)])?;
/// }
/// let h = b.build()?;
/// let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)])?;
/// let result = FlowPartitioner::new(PartitionerParams::default())
///     .run(&h, &spec, &mut StdRng::seed_from_u64(1))?;
/// // A path cut into 4 leaves of 2 and 2 mid blocks of 4:
/// // 3 nets are cut, the middle one at both levels.
/// assert!(result.cost >= 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FlowPartitioner {
    params: PartitionerParams,
}

impl FlowPartitioner {
    /// Creates a partitioner with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` or `constructions_per_metric` is zero.
    pub fn new(params: PartitionerParams) -> Self {
        assert!(params.iterations >= 1, "need at least one iteration");
        assert!(
            params.constructions_per_metric >= 1,
            "need at least one construction"
        );
        FlowPartitioner { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> PartitionerParams {
        self.params
    }

    /// Runs Algorithm 1 on `h` under `spec`.
    ///
    /// # Errors
    ///
    /// Returns the last construction error if no iteration produced a
    /// feasible partition (empty netlist, infeasible size, or no feasible
    /// cuts).
    pub fn run<R: Rng + ?Sized>(
        &self,
        h: &Hypergraph,
        spec: &TreeSpec,
        rng: &mut R,
    ) -> Result<FlowResult, CoreError> {
        let mut best: Option<FlowResult> = None;
        let mut history = Vec::with_capacity(self.params.iterations);
        let mut last_err = CoreError::EmptyNetlist;

        for _ in 0..self.params.iterations {
            let (metric, stats) = compute_spreading_metric(h, spec, self.params.flow, rng);
            let metric_objective = metric.objective(h);
            let mut iter_best: Option<f64> = None;

            for _ in 0..self.params.constructions_per_metric {
                match construct_partition(h, spec, &metric, rng) {
                    Ok(p) => {
                        if let Err(e) = validate::validate(h, spec, &p) {
                            last_err = CoreError::Model(e);
                            continue;
                        }
                        let c = cost::partition_cost(h, spec, &p);
                        if iter_best.is_none_or(|b| c < b) {
                            iter_best = Some(c);
                        }
                        let better = best.as_ref().is_none_or(|b| c < b.cost);
                        if better {
                            best = Some(FlowResult {
                                partition: p,
                                cost: c,
                                metric: metric.clone(),
                                history: Vec::new(),
                            });
                        }
                    }
                    Err(e) => last_err = e,
                }
            }
            history.push(IterationRecord {
                metric_objective,
                best_cost: iter_best,
                stats,
            });
        }

        match best {
            Some(mut result) => {
                result.history = history;
                Ok(result)
            }
            None => Err(last_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use htp_netlist::{HypergraphBuilder, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_planted_two_cluster_cut() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = ClusteredParams {
            clusters: 2,
            cluster_size: 8,
            intra_nets: 48,
            inter_nets: 3,
            min_net_size: 2,
            max_net_size: 2,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(8, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let result = FlowPartitioner::new(PartitionerParams::default())
            .run(h, &spec, &mut rng)
            .unwrap();
        // The planted optimum cuts exactly the 3 inter-cluster nets.
        assert_eq!(result.cost, 6.0, "history: {:?}", result.history);
        assert_eq!(result.history.len(), 4);
    }

    #[test]
    fn history_and_metric_are_reported() {
        let mut b = HypergraphBuilder::with_unit_nodes(8);
        for i in 0..7u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let result = FlowPartitioner::new(PartitionerParams {
            iterations: 2,
            constructions_per_metric: 3,
            flow: FlowParams::default(),
        })
        .run(&h, &spec, &mut StdRng::seed_from_u64(5))
        .unwrap();
        assert_eq!(result.history.len(), 2);
        for rec in &result.history {
            assert!(rec.metric_objective > 0.0);
            assert!(rec.best_cost.is_some());
        }
        assert_eq!(result.metric.len(), h.num_nets());
        // A path of 8 with C_0 = 4 needs at least one cut net: cost >= 2.
        assert!(result.cost >= 2.0);
    }

    #[test]
    fn propagates_infeasibility() {
        let h = HypergraphBuilder::with_unit_nodes(100).build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let err = FlowPartitioner::new(PartitionerParams::default())
            .run(&h, &spec, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let spec = TreeSpec::full_tree(inst.hypergraph.total_size(), 2, 2, 1.2, 1.0).unwrap();
        let p = PartitionerParams {
            iterations: 2,
            constructions_per_metric: 2,
            flow: FlowParams::default(),
        };
        let r1 = FlowPartitioner::new(p)
            .run(&inst.hypergraph, &spec, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let r2 = FlowPartitioner::new(p)
            .run(&inst.hypergraph, &spec, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(r1.cost, r2.cost);
        assert_eq!(r1.partition, r2.partition);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = FlowPartitioner::new(PartitionerParams {
            iterations: 0,
            ..PartitionerParams::default()
        });
    }
}
