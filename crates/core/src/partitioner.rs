//! Algorithm 1: the outer flow-based partitioning loop.
//!
//! Each iteration computes a fresh spreading metric (Algorithm 2) and
//! constructs one or more partitions from it (Algorithm 3), keeping the best
//! feasible partition seen. Running several constructions per metric is the
//! extension suggested in the paper's conclusions: the metric computation
//! dominates the runtime, so re-rolling only the (randomized) construction
//! buys extra quality almost for free.

use rand::Rng;

use htp_model::{cost, validate, HierarchicalPartition, TreeSpec};
use htp_netlist::Hypergraph;

use crate::construct::construct_partition_budgeted;
use crate::injector::{compute_spreading_metric_budgeted, FlowParams, InjectionStats};
use crate::runtime::{Budget, Interrupt, RunOutcome};
use crate::{CoreError, SpreadingMetric};

/// Parameters of the outer loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionerParams {
    /// Number of outer iterations `N` (fresh metric each time).
    pub iterations: usize,
    /// Constructions attempted per metric (the conclusions' extension;
    /// `1` reproduces the paper's Algorithm 1 exactly).
    pub constructions_per_metric: usize,
    /// Parameters of the metric computation, including the probe-worker
    /// thread count ([`FlowParams::threads`]) — the partitioner's output
    /// is bit-identical at any thread setting.
    pub flow: FlowParams,
}

impl Default for PartitionerParams {
    fn default() -> Self {
        PartitionerParams {
            iterations: 4,
            constructions_per_metric: 4,
            flow: FlowParams::default(),
        }
    }
}

/// Record of one outer iteration, for experiment logging.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// LP objective `Σ c(e)·d(e)` of the iteration's metric.
    pub metric_objective: f64,
    /// Best construction cost achieved with this metric (`None` if every
    /// construction failed).
    pub best_cost: Option<f64>,
    /// Metric-computation statistics.
    pub stats: InjectionStats,
}

/// Result of a [`FlowPartitioner`] run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The best feasible partition found.
    pub partition: HierarchicalPartition,
    /// Its interconnection cost.
    pub cost: f64,
    /// The spreading metric that produced the best partition.
    pub metric: SpreadingMetric,
    /// Per-iteration log.
    pub history: Vec<IterationRecord>,
}

/// Result of a budgeted [`FlowPartitioner::run_with_budget`] run: the best
/// feasible partition found, plus how the run ended.
#[derive(Clone, Debug)]
pub struct BudgetedRun {
    /// How the run ended (complete, degraded, out of budget, cancelled).
    pub outcome: RunOutcome,
    /// The best feasible partition found before the run ended. On a
    /// [`RunOutcome::Degraded`] outcome this was constructed from a
    /// partially-converged metric — still a valid partition, possibly of
    /// lower quality than a full run's.
    pub result: FlowResult,
}

/// The network-flow-based constructive partitioner (**Algorithm 1**).
///
/// # Examples
///
/// ```
/// use htp_core::partitioner::{FlowPartitioner, PartitionerParams};
/// use htp_model::TreeSpec;
/// use htp_netlist::{HypergraphBuilder, NodeId};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_nodes(8);
/// for i in 0..7u32 {
///     b.add_net(1.0, [NodeId(i), NodeId(i + 1)])?;
/// }
/// let h = b.build()?;
/// let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)])?;
/// let result = FlowPartitioner::try_new(PartitionerParams::default())?
///     .run(&h, &spec, &mut StdRng::seed_from_u64(1))?;
/// // A path cut into 4 leaves of 2 and 2 mid blocks of 4:
/// // 3 nets are cut, the middle one at both levels.
/// assert!(result.cost >= 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FlowPartitioner {
    params: PartitionerParams,
}

impl FlowPartitioner {
    /// Creates a partitioner with the given parameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParams`] if `iterations` or
    /// `constructions_per_metric` is zero, or the flow parameters are out
    /// of range (see [`FlowParams::check`]).
    pub fn try_new(params: PartitionerParams) -> Result<Self, CoreError> {
        if params.iterations < 1 {
            return Err(CoreError::InvalidParams {
                what: "need at least one iteration",
            });
        }
        if params.constructions_per_metric < 1 {
            return Err(CoreError::InvalidParams {
                what: "need at least one construction",
            });
        }
        params
            .flow
            .check()
            .map_err(|what| CoreError::InvalidParams { what })?;
        Ok(FlowPartitioner { params })
    }

    /// Creates a partitioner with the given parameters, panicking on
    /// invalid ones.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` or `constructions_per_metric` is zero, or
    /// the flow parameters are out of range.
    #[deprecated(since = "0.2.0", note = "use the fallible `try_new` instead")]
    pub fn new(params: PartitionerParams) -> Self {
        match FlowPartitioner::try_new(params) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> PartitionerParams {
        self.params
    }

    /// Runs Algorithm 1 on `h` under `spec`.
    ///
    /// Equivalent to [`run_with_budget`](FlowPartitioner::run_with_budget)
    /// with an unlimited budget — and implemented as exactly that, so
    /// budgeted runs that are never interrupted are bit-identical to this.
    ///
    /// # Errors
    ///
    /// Returns the last construction error if no iteration produced a
    /// feasible partition (empty netlist, infeasible size, or no feasible
    /// cuts).
    pub fn run<R: Rng + ?Sized>(
        &self,
        h: &Hypergraph,
        spec: &TreeSpec,
        rng: &mut R,
    ) -> Result<FlowResult, CoreError> {
        self.run_with_budget(h, spec, rng, &Budget::unlimited())
            .map(|r| r.result)
    }

    /// Runs Algorithm 1 under a [`Budget`]: wall-clock deadline, global
    /// round/probe caps, and cooperative cancellation.
    ///
    /// The run degrades gracefully instead of discarding work:
    ///
    /// * A limit firing **mid-metric** stops the injection loop, then
    ///   constructs from the partially-converged metric anyway (it is
    ///   still a valid length assignment). If that salvage produces the
    ///   best partition of the run, the outcome is
    ///   [`RunOutcome::Degraded`]; if the best came from an earlier,
    ///   fully-converged iteration, it is [`RunOutcome::DeadlineExceeded`]
    ///   (or [`RunOutcome::Cancelled`] for an explicit cancel, which
    ///   always takes that name).
    /// * A limit firing **between iterations** (or mid-construction)
    ///   returns the best partition found so far as
    ///   [`RunOutcome::DeadlineExceeded`]/[`RunOutcome::Cancelled`].
    /// * Contained probe faults (panicked probes, injected oracle errors)
    ///   mark an otherwise-finished run [`RunOutcome::Degraded`].
    ///
    /// Budget checks never consume randomness: with no interrupt and no
    /// fault, the result is **bit-identical** to [`run`](FlowPartitioner::run)
    /// at any thread count, and the outcome is [`RunOutcome::Complete`].
    ///
    /// # Errors
    ///
    /// As [`run`](FlowPartitioner::run); additionally
    /// [`CoreError::Interrupted`] when the budget fired before *any*
    /// feasible partition existed (nothing to salvage).
    pub fn run_with_budget<R: Rng + ?Sized>(
        &self,
        h: &Hypergraph,
        spec: &TreeSpec,
        rng: &mut R,
        budget: &Budget,
    ) -> Result<BudgetedRun, CoreError> {
        // Optional pre-solve dedup ([`FlowParams::dedup_nets`]): solve on
        // the merged netlist (node ids unchanged), then translate the
        // winner back — cost re-priced on the caller's netlist, metric
        // lengths re-expanded through the net provenance map.
        if self.params.flow.dedup_nets {
            let (dh, net_map, stats) = htp_netlist::dedup_nets(h);
            if stats.merged_nets > 0 {
                let mut run = self.solve_with_budget(&dh, spec, rng, budget)?;
                let lengths = run.result.metric.lengths();
                let expanded: Vec<f64> = net_map.iter().map(|&m| lengths[m as usize]).collect();
                run.result.metric = SpreadingMetric::from_lengths(expanded);
                run.result.cost = cost::partition_cost(h, spec, &run.result.partition);
                return Ok(run);
            }
        }
        self.solve_with_budget(h, spec, rng, budget)
    }

    fn solve_with_budget<R: Rng + ?Sized>(
        &self,
        h: &Hypergraph,
        spec: &TreeSpec,
        rng: &mut R,
        budget: &Budget,
    ) -> Result<BudgetedRun, CoreError> {
        let mut best: Option<FlowResult> = None;
        let mut best_from_partial = false;
        let mut history = Vec::with_capacity(self.params.iterations);
        let mut last_err = CoreError::EmptyNetlist;
        let mut interrupt: Option<Interrupt> = None;
        let mut faulted = false;

        for _ in 0..self.params.iterations {
            if let Err(irq) = budget.check() {
                interrupt = Some(irq);
                break;
            }
            let (metric, stats) =
                compute_spreading_metric_budgeted(h, spec, self.params.flow, rng, budget);
            if stats.panicked_probes > 0 || stats.oracle_faults > 0 {
                faulted = true;
            }
            let metric_irq = stats.interrupt;
            let metric_objective = metric.objective(h);
            let mut iter_best: Option<f64> = None;

            // Constructions from an interrupted metric are salvage work:
            // run them unbudgeted (construction is a small fraction of the
            // metric's cost, and the expired budget would abort them
            // immediately), then stop after this iteration.
            let salvage = Budget::unlimited();
            let construct_budget = if metric_irq.is_some() {
                &salvage
            } else {
                budget
            };

            for _ in 0..self.params.constructions_per_metric {
                match construct_partition_budgeted(h, spec, &metric, rng, construct_budget) {
                    Ok(p) => {
                        if let Err(e) = validate::validate(h, spec, &p) {
                            last_err = CoreError::Model(e);
                            continue;
                        }
                        let c = cost::partition_cost(h, spec, &p);
                        if iter_best.is_none_or(|b| c < b) {
                            iter_best = Some(c);
                        }
                        let better = best.as_ref().is_none_or(|b| c < b.cost);
                        if better {
                            best = Some(FlowResult {
                                partition: p,
                                cost: c,
                                metric: metric.clone(),
                                history: Vec::new(),
                            });
                            best_from_partial = metric_irq.is_some();
                        }
                    }
                    Err(CoreError::Interrupted(irq)) => {
                        interrupt = Some(irq);
                        break;
                    }
                    Err(e) => last_err = e,
                }
            }
            history.push(IterationRecord {
                metric_objective,
                best_cost: iter_best,
                stats,
            });
            if interrupt.is_some() || metric_irq.is_some() {
                interrupt = interrupt.or(metric_irq);
                break;
            }
        }

        match best {
            Some(mut result) => {
                result.history = history;
                let outcome = match interrupt {
                    None => {
                        if faulted {
                            RunOutcome::Degraded
                        } else {
                            RunOutcome::Complete
                        }
                    }
                    Some(Interrupt::Cancelled) => RunOutcome::Cancelled,
                    Some(_) => {
                        if best_from_partial {
                            RunOutcome::Degraded
                        } else {
                            RunOutcome::DeadlineExceeded
                        }
                    }
                };
                Ok(BudgetedRun { outcome, result })
            }
            None => match interrupt {
                Some(irq) => Err(CoreError::Interrupted(irq)),
                None => Err(last_err),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use htp_netlist::{HypergraphBuilder, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_planted_two_cluster_cut() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = ClusteredParams {
            clusters: 2,
            cluster_size: 8,
            intra_nets: 48,
            inter_nets: 3,
            min_net_size: 2,
            max_net_size: 2,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(8, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let result = FlowPartitioner::try_new(PartitionerParams::default())
            .unwrap()
            .run(h, &spec, &mut rng)
            .unwrap();
        // The planted optimum cuts exactly the 3 inter-cluster nets.
        assert_eq!(result.cost, 6.0, "history: {:?}", result.history);
        assert_eq!(result.history.len(), 4);
    }

    #[test]
    fn history_and_metric_are_reported() {
        let mut b = HypergraphBuilder::with_unit_nodes(8);
        for i in 0..7u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let result = FlowPartitioner::try_new(PartitionerParams {
            iterations: 2,
            constructions_per_metric: 3,
            flow: FlowParams::default(),
        })
        .unwrap()
        .run(&h, &spec, &mut StdRng::seed_from_u64(5))
        .unwrap();
        assert_eq!(result.history.len(), 2);
        for rec in &result.history {
            assert!(rec.metric_objective > 0.0);
            assert!(rec.best_cost.is_some());
        }
        assert_eq!(result.metric.len(), h.num_nets());
        // A path of 8 with C_0 = 4 needs at least one cut net: cost >= 2.
        assert!(result.cost >= 2.0);
    }

    #[test]
    fn propagates_infeasibility() {
        let h = HypergraphBuilder::with_unit_nodes(100).build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let err = FlowPartitioner::try_new(PartitionerParams::default())
            .unwrap()
            .run(&h, &spec, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let spec = TreeSpec::full_tree(inst.hypergraph.total_size(), 2, 2, 1.2, 1.0).unwrap();
        let p = PartitionerParams {
            iterations: 2,
            constructions_per_metric: 2,
            flow: FlowParams::default(),
        };
        let r1 = FlowPartitioner::try_new(p)
            .unwrap()
            .run(&inst.hypergraph, &spec, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let r2 = FlowPartitioner::try_new(p)
            .unwrap()
            .run(&inst.hypergraph, &spec, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(r1.cost, r2.cost);
        assert_eq!(r1.partition, r2.partition);
    }

    #[test]
    fn zero_iterations_is_an_invalid_params_error() {
        let err = FlowPartitioner::try_new(PartitionerParams {
            iterations: 0,
            ..PartitionerParams::default()
        })
        .unwrap_err();
        assert_eq!(
            err,
            CoreError::InvalidParams {
                what: "need at least one iteration"
            }
        );
        let err = FlowPartitioner::try_new(PartitionerParams {
            constructions_per_metric: 0,
            ..PartitionerParams::default()
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidParams { .. }));
        let err = FlowPartitioner::try_new(PartitionerParams {
            flow: FlowParams {
                delta: f64::NAN,
                ..FlowParams::default()
            },
            ..PartitionerParams::default()
        })
        .unwrap_err();
        assert_eq!(
            err,
            CoreError::InvalidParams {
                what: "delta must be positive"
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn deprecated_constructor_still_panics() {
        #[allow(deprecated)]
        let _ = FlowPartitioner::new(PartitionerParams {
            iterations: 0,
            ..PartitionerParams::default()
        });
    }

    #[test]
    fn dedup_nets_solves_on_the_merged_netlist_but_answers_on_the_original() {
        // A netlist where every net appears three times: dedup merges each
        // triple into one net of triple capacity.
        let mut rng = StdRng::seed_from_u64(2);
        let inst = clustered_hypergraph(
            ClusteredParams {
                clusters: 4,
                cluster_size: 8,
                intra_nets: 24,
                inter_nets: 4,
                min_net_size: 2,
                max_net_size: 3,
            },
            &mut rng,
        );
        let base = &inst.hypergraph;
        let mut b = HypergraphBuilder::new();
        for v in base.nodes() {
            b.add_node(base.node_size(v));
        }
        for _ in 0..3 {
            for e in base.nets() {
                b.add_net(base.net_capacity(e), base.net_pins(e).iter().copied())
                    .unwrap();
            }
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();
        let params = PartitionerParams {
            iterations: 2,
            constructions_per_metric: 2,
            flow: FlowParams {
                dedup_nets: true,
                ..FlowParams::default()
            },
        };
        let result = FlowPartitioner::try_new(params)
            .unwrap()
            .run(&h, &spec, &mut StdRng::seed_from_u64(17))
            .unwrap();
        // The answer is valid on the *original* netlist and its cost is
        // the original netlist's exact cost, not the merged one's.
        htp_model::validate::validate(&h, &spec, &result.partition).unwrap();
        assert_eq!(
            result.cost,
            cost::partition_cost(&h, &spec, &result.partition)
        );
        // The metric was re-expanded to one length per original net, with
        // merged triples sharing a length.
        assert_eq!(result.metric.len(), h.num_nets());
        let m = base.num_nets();
        for e in 0..m {
            let l = result.metric.lengths()[e];
            assert_eq!(result.metric.lengths()[e + m], l);
            assert_eq!(result.metric.lengths()[e + 2 * m], l);
        }
    }

    #[test]
    fn dedup_nets_is_a_noop_on_a_duplicate_free_netlist() {
        // A path: every net {i, i+1} is a distinct pin set by construction,
        // so dedup merges nothing and must fall through bit-identically.
        let mut b = HypergraphBuilder::with_unit_nodes(64);
        for i in 0..63u32 {
            b.add_net(1.0 + f64::from(i % 3), [NodeId(i), NodeId(i + 1)])
                .unwrap();
        }
        let h = &b.build().unwrap();
        let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();
        let run = |dedup: bool| {
            let params = PartitionerParams {
                iterations: 2,
                constructions_per_metric: 2,
                flow: FlowParams {
                    dedup_nets: dedup,
                    ..FlowParams::default()
                },
            };
            FlowPartitioner::try_new(params)
                .unwrap()
                .run(h, &spec, &mut StdRng::seed_from_u64(11))
                .unwrap()
        };
        let (off, on) = (run(false), run(true));
        assert_eq!(off.cost, on.cost);
        assert_eq!(off.partition, on.partition);
        assert_eq!(off.metric.lengths(), on.metric.lengths());
    }

    #[test]
    fn run_with_budget_matches_run_when_unlimited() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let spec = TreeSpec::full_tree(inst.hypergraph.total_size(), 2, 2, 1.2, 1.0).unwrap();
        let part = FlowPartitioner::try_new(PartitionerParams {
            iterations: 2,
            constructions_per_metric: 2,
            flow: FlowParams::default(),
        })
        .unwrap();
        let plain = part
            .run(&inst.hypergraph, &spec, &mut StdRng::seed_from_u64(23))
            .unwrap();
        let budgeted = part
            .run_with_budget(
                &inst.hypergraph,
                &spec,
                &mut StdRng::seed_from_u64(23),
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(budgeted.outcome, RunOutcome::Complete);
        assert_eq!(plain.partition, budgeted.result.partition);
        assert_eq!(plain.cost, budgeted.result.cost);
        assert_eq!(plain.history, budgeted.result.history);
    }

    #[test]
    fn pre_cancelled_budget_has_nothing_to_salvage() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let spec = TreeSpec::full_tree(inst.hypergraph.total_size(), 2, 2, 1.2, 1.0).unwrap();
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let err = FlowPartitioner::try_new(PartitionerParams::default())
            .unwrap()
            .run_with_budget(&inst.hypergraph, &spec, &mut rng, &budget)
            .unwrap_err();
        assert_eq!(err, CoreError::Interrupted(crate::Interrupt::Cancelled));
    }

    #[test]
    fn round_capped_run_degrades_to_a_valid_partition() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::full_tree(h.total_size(), 2, 2, 1.2, 1.0).unwrap();
        // One injection round is nowhere near convergence on this
        // instance, so the first metric is interrupted and the partition
        // is salvaged from it.
        let budget = Budget::unlimited().with_max_rounds(1);
        let run = FlowPartitioner::try_new(PartitionerParams::default())
            .unwrap()
            .run_with_budget(h, &spec, &mut StdRng::seed_from_u64(23), &budget)
            .unwrap();
        assert_eq!(run.outcome, RunOutcome::Degraded);
        assert_eq!(run.result.history.len(), 1);
        let stats = run.result.history[0].stats;
        assert_eq!(stats.interrupt, Some(crate::Interrupt::RoundLimit));
        assert!(!stats.converged);
        htp_model::validate::validate(h, &spec, &run.result.partition).unwrap();
    }
}
