//! Spreading metrics: fractional lengths on nets.

use htp_model::{cost, HierarchicalPartition, TreeSpec};
use htp_netlist::{Hypergraph, NetId};

/// A spreading metric `{d(e)}`: one non-negative fractional length per net.
///
/// A spreading metric is a (candidate) solution to the linear program (P1);
/// its objective value `Σ_e c(e)·d(e)` equals the interconnection cost when
/// the metric is induced from a partition (Lemma 1), and lower-bounds the
/// optimal cost when the metric is LP-optimal (Lemma 2).
#[derive(Clone, Debug, PartialEq)]
pub struct SpreadingMetric {
    d: Vec<f64>,
}

impl SpreadingMetric {
    /// The all-zeros metric over `num_nets` nets.
    pub fn zeros(num_nets: usize) -> Self {
        SpreadingMetric {
            d: vec![0.0; num_nets],
        }
    }

    /// Wraps raw lengths.
    ///
    /// # Panics
    ///
    /// Panics if any length is negative or NaN.
    pub fn from_lengths(d: Vec<f64>) -> Self {
        assert!(
            d.iter().all(|&x| x >= 0.0),
            "spreading metric lengths must be non-negative"
        );
        SpreadingMetric { d }
    }

    /// The metric induced by a partition per **Lemma 1**:
    /// `d(e) = cost(e) / c(e)`. Always feasible for (P1), with objective
    /// equal to the partition's interconnection cost.
    ///
    /// # Panics
    ///
    /// Panics if the hypergraph and partition disagree on the node count.
    pub fn from_partition(h: &Hypergraph, spec: &TreeSpec, p: &HierarchicalPartition) -> Self {
        let d = h
            .nets()
            .map(|e| cost::net_cost(h, spec, p, e) / h.net_capacity(e))
            .collect();
        SpreadingMetric { d }
    }

    /// Number of nets covered.
    pub fn len(&self) -> usize {
        self.d.len()
    }

    /// Returns `true` if the metric covers no nets.
    pub fn is_empty(&self) -> bool {
        self.d.is_empty()
    }

    /// Length `d(e)` of a net.
    #[inline]
    pub fn length(&self, e: NetId) -> f64 {
        self.d[e.index()]
    }

    /// Overwrites the length of a net.
    ///
    /// # Panics
    ///
    /// Panics if `len` is negative or NaN.
    #[inline]
    pub fn set_length(&mut self, e: NetId, len: f64) {
        assert!(len >= 0.0, "spreading metric lengths must be non-negative");
        self.d[e.index()] = len;
    }

    /// The LP objective `Σ_e c(e)·d(e)`.
    ///
    /// # Panics
    ///
    /// Panics if `h` has a different net count.
    pub fn objective(&self, h: &Hypergraph) -> f64 {
        assert_eq!(h.num_nets(), self.d.len(), "net count mismatch");
        h.nets().map(|e| h.net_capacity(e) * self.length(e)).sum()
    }

    /// The raw lengths in net order.
    pub fn lengths(&self) -> &[f64] {
        &self.d
    }

    /// Restricts the metric to an induced subgraph, using the net
    /// provenance from [`Hypergraph::induce_tracked`].
    pub fn restrict(&self, net_map: &[NetId]) -> SpreadingMetric {
        SpreadingMetric {
            d: net_map.iter().map(|&e| self.length(e)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htp_model::HierarchicalPartition;
    use htp_netlist::{HypergraphBuilder, NodeId};

    fn path4() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(4);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        b.add_net(2.0, [NodeId(1), NodeId(2)]).unwrap();
        b.add_net(1.0, [NodeId(2), NodeId(3)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lemma1_metric_objective_equals_partition_cost() {
        let h = path4();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let p = HierarchicalPartition::from_leaf_assignment(1, &[0, 0, 1, 1]).unwrap();
        let m = SpreadingMetric::from_partition(&h, &spec, &p);
        let c = cost::partition_cost(&h, &spec, &p);
        assert!((m.objective(&h) - c).abs() < 1e-12);
        // Only the middle net (capacity 2, span 2 at level 0) is cut:
        // cost(e) = 1*2*2 = 4, d = 4/2 = 2.
        assert_eq!(m.length(NetId(1)), 2.0);
        assert_eq!(m.length(NetId(0)), 0.0);
    }

    #[test]
    fn restrict_follows_net_provenance() {
        let h = path4();
        let m = SpreadingMetric::from_lengths(vec![1.0, 2.0, 3.0]);
        let sub = h.induce_tracked(&[NodeId(1), NodeId(2)]);
        let rm = m.restrict(&sub.net_map);
        assert_eq!(rm.lengths(), &[2.0]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut m = SpreadingMetric::zeros(2);
        m.set_length(NetId(1), 4.5);
        assert_eq!(m.length(NetId(1)), 4.5);
        assert_eq!(m.length(NetId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_is_rejected() {
        let _ = SpreadingMetric::from_lengths(vec![-0.1]);
    }

    #[test]
    #[should_panic(expected = "net count mismatch")]
    fn objective_checks_net_count() {
        let h = path4();
        let m = SpreadingMetric::zeros(1);
        let _ = m.objective(&h);
    }
}
