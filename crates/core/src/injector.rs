//! Algorithm 2: computing a spreading metric by stochastic flow injection.
//!
//! Every net carries a flow `f(e)` (initially a tiny `ε`) and a length
//! `d(e) = exp(α · f(e) / c(e)) − 1`. Nodes whose spreading constraints may
//! still be violated live in a working set `V'`; each round visits them in
//! a fresh random order, grows shortest-path trees until a violated
//! constraint is found ([`crate::constraint::find_violation`]), and injects
//! `Δ` units of flow on the violating tree's nets, exponentially penalising
//! the congested ones. A node leaves `V'` once all its constraints hold —
//! and because lengths only ever grow (so shortest-path distances only ever
//! grow, while the bound `g` is fixed), a satisfied node can never become
//! violated again, which is what makes the single-confirmation scheme of
//! the paper sound.

use rand::seq::SliceRandom;
use rand::Rng;

use htp_model::TreeSpec;
use htp_netlist::{Hypergraph, NodeId};

use crate::constraint::{find_violation, find_violation_weighted};
use crate::SpreadingMetric;

/// How Algorithm 2 orders the "k closest nodes" when growing the trees
/// `S(v, k)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GrowthOrder {
    /// Pick by node size: plain distance order for unit-size netlists,
    /// weighted order otherwise.
    #[default]
    Auto,
    /// Plain shortest-path distance order (the common case).
    Distance,
    /// The paper's non-unit-size ordering by `(dist(v,u) + 1)·s(u)`;
    /// requires a full Dijkstra per probe.
    WeightedDistance,
}

/// Tuning parameters of Algorithm 2.
///
/// The paper leaves `ε`, `α`, and the injection amount `Δ` open; the
/// defaults here were chosen by the ablation bench (`htp-bench`,
/// `--bin ablation`) to give a good cost/runtime trade-off on the ISCAS85
/// surrogates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowParams {
    /// Initial flow `ε` on every net (keeps initial lengths positive).
    pub epsilon: f64,
    /// Exponent scale `α` of the length function.
    pub alpha: f64,
    /// Flow injected on each net of a violating tree.
    pub delta: f64,
    /// Safety cap on full passes over the working set; the algorithm
    /// normally converges long before this.
    pub max_rounds: usize,
    /// Absolute slack when comparing `lhs` against `g` (guards against
    /// floating-point noise near tight constraints).
    pub tolerance: f64,
    /// Prefix ordering used by the constraint oracle.
    pub order: GrowthOrder,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            epsilon: 1e-3,
            alpha: 1.0,
            delta: 0.5,
            max_rounds: 10_000,
            tolerance: 1e-9,
            order: GrowthOrder::Auto,
        }
    }
}

impl FlowParams {
    fn validate(&self) {
        assert!(self.epsilon > 0.0 && self.epsilon.is_finite(), "epsilon must be positive");
        assert!(self.alpha > 0.0 && self.alpha.is_finite(), "alpha must be positive");
        assert!(self.delta > 0.0 && self.delta.is_finite(), "delta must be positive");
        assert!(self.max_rounds >= 1, "need at least one round");
        assert!(self.tolerance >= 0.0, "tolerance must be non-negative");
    }
}

/// Progress counters of one metric computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Number of flow injections performed (violating trees found).
    pub injections: usize,
    /// Number of passes over the working set.
    pub rounds: usize,
    /// `true` when every constraint was confirmed satisfied; `false` when
    /// the round cap was hit or an unfixable (netless) violation appeared.
    pub converged: bool,
}

/// Computes a spreading metric for (P1) by stochastic flow injection
/// (**Algorithm 2**).
///
/// Returns the metric together with convergence statistics. Nodes whose
/// violation has no nets to inject on (a single node bigger than `C_0` —
/// an infeasible instance) are dropped from the working set and flagged via
/// `converged = false`.
///
/// # Panics
///
/// Panics if the parameters are out of range (see [`FlowParams`]) or the
/// netlist is empty.
pub fn compute_spreading_metric<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: FlowParams,
    rng: &mut R,
) -> (SpreadingMetric, InjectionStats) {
    params.validate();
    assert!(h.num_nodes() > 0, "cannot compute a metric for an empty netlist");

    let mut flow: Vec<f64> = vec![params.epsilon; h.num_nets()];
    let mut metric = SpreadingMetric::from_lengths(
        h.nets()
            .map(|e| length_of(params.alpha, params.epsilon, h.net_capacity(e)))
            .collect(),
    );

    let mut active: Vec<NodeId> = h.nodes().collect();
    let mut stats = InjectionStats { converged: true, ..InjectionStats::default() };
    let weighted = match params.order {
        GrowthOrder::Auto => !h.has_unit_sizes(),
        GrowthOrder::Distance => false,
        GrowthOrder::WeightedDistance => true,
    };
    let probe = |metric: &SpreadingMetric, v: NodeId| {
        if weighted {
            find_violation_weighted(h, spec, metric, v, params.tolerance)
        } else {
            find_violation(h, spec, metric, v, params.tolerance)
        }
    };

    while !active.is_empty() && stats.rounds < params.max_rounds {
        stats.rounds += 1;
        active.shuffle(rng);
        let mut still_active = Vec::with_capacity(active.len());
        for &v in &active {
            match probe(&metric, v) {
                Some(t) if t.nets.is_empty() => {
                    // A single node already exceeds C_0: no amount of flow
                    // can spread it. Drop it so the loop can terminate.
                    stats.converged = false;
                }
                Some(t) => {
                    stats.injections += 1;
                    for &e in &t.nets {
                        flow[e.index()] += params.delta;
                        metric.set_length(
                            e,
                            length_of(params.alpha, flow[e.index()], h.net_capacity(e)),
                        );
                    }
                    still_active.push(v);
                }
                None => {} // all constraints for v confirmed; never re-check
            }
        }
        active = still_active;
    }
    if !active.is_empty() {
        stats.converged = false;
    }
    (metric, stats)
}

/// The exponential length function `d = exp(α·f/c) − 1`.
#[inline]
fn length_of(alpha: f64, flow: f64, capacity: f64) -> f64 {
    (alpha * flow / capacity).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::check_feasibility;
    use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use htp_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [NodeId::new(i), NodeId::new(i + 1)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn converges_to_a_feasible_metric_on_a_path() {
        let h = path(8);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (m, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged, "stats: {stats:?}");
        assert!(stats.injections > 0, "the zero-ish start must violate something");
        let report = check_feasibility(&h, &spec, &m, 1e-6);
        assert!(report.feasible, "worst shortfall {}", report.worst_shortfall);
    }

    #[test]
    fn feasible_metric_objective_is_positive_but_bounded() {
        let h = path(8);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (m, _) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        let obj = m.objective(&h);
        assert!(obj > 0.0);
        // The optimal partition of a path costs little; the heuristic metric
        // should not be absurdly above the trivial upper bound of cutting
        // every net at every level.
        assert!(obj < 200.0, "objective exploded: {obj}");
    }

    #[test]
    fn clustered_instance_prices_inter_cluster_nets_higher() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = ClusteredParams {
            clusters: 2,
            cluster_size: 8,
            intra_nets: 40,
            inter_nets: 3,
            min_net_size: 2,
            max_net_size: 2,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(8, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let (m, stats) = compute_spreading_metric(h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged);

        let mut inter = Vec::new();
        let mut intra = Vec::new();
        for e in h.nets() {
            let pins = h.net_pins(e);
            let crosses =
                pins.iter().any(|v| inst.cluster_of[v.index()] != inst.cluster_of[pins[0].index()]);
            if crosses {
                inter.push(m.length(e));
            } else {
                intra.push(m.length(e));
            }
        }
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            avg(&inter) > avg(&intra),
            "spreading metric should stretch the planted cut: inter {} vs intra {}",
            avg(&inter),
            avg(&intra)
        );
    }

    #[test]
    fn loose_spec_needs_no_injections() {
        let h = path(4);
        // Everything fits in one leaf: g == 0 everywhere.
        let spec = TreeSpec::new(vec![(100, 2, 1.0), (100, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (m, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged);
        assert_eq!(stats.injections, 0);
        assert_eq!(stats.rounds, 1);
        // Lengths stay at their epsilon initialisation.
        for e in h.nets() {
            assert!(m.length(e) < 0.01);
        }
    }

    #[test]
    fn non_unit_sizes_use_the_weighted_order_and_converge() {
        // Mixed sizes: 4 heavy nodes and 4 light ones on a ring.
        let mut b = HypergraphBuilder::new();
        for i in 0..8 {
            b.add_node(if i % 2 == 0 { 3 } else { 1 });
        }
        for i in 0..8u32 {
            b.add_net(1.0, [NodeId(i), NodeId((i + 1) % 8)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(5, 2, 1.0), (9, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let (m, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged, "stats: {stats:?}");
        // The distance-ordered oracle must also find it feasible (its
        // prefixes are a subset of all S, so this is a one-way check).
        let report = check_feasibility(&h, &spec, &m, 1e-6);
        assert!(report.feasible, "worst shortfall {}", report.worst_shortfall);
    }

    #[test]
    fn explicit_distance_order_still_works_on_weighted_nodes() {
        let mut b = HypergraphBuilder::new();
        for _ in 0..6 {
            b.add_node(2);
        }
        for i in 0..5u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (12, 2, 1.0)]).unwrap();
        let params = FlowParams { order: GrowthOrder::Distance, ..FlowParams::default() };
        let mut rng = StdRng::seed_from_u64(22);
        let (_, stats) = compute_spreading_metric(&h, &spec, params, &mut rng);
        assert!(stats.converged);
    }

    #[test]
    fn oversized_node_is_reported_not_looped() {
        let mut b = HypergraphBuilder::new();
        b.add_node(10);
        b.add_node(1);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let (_, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(!stats.converged, "infeasible node must be flagged");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let (m1, s1) =
            compute_spreading_metric(&h, &spec, FlowParams::default(), &mut StdRng::seed_from_u64(9));
        let (m2, s2) =
            compute_spreading_metric(&h, &spec, FlowParams::default(), &mut StdRng::seed_from_u64(9));
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_bad_params() {
        let h = path(3);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let params = FlowParams { delta: 0.0, ..FlowParams::default() };
        let _ = compute_spreading_metric(&h, &spec, params, &mut StdRng::seed_from_u64(0));
    }
}
