//! Algorithm 2: computing a spreading metric by stochastic flow injection.
//!
//! Every net carries a flow `f(e)` (initially a tiny `ε`) and a length
//! `d(e) = exp(α · f(e) / c(e)) − 1`. Nodes whose spreading constraints may
//! still be violated live in a working set `V'`; each round visits them in
//! a fresh random order, grows shortest-path trees until a violated
//! constraint is found ([`crate::constraint::find_violation`]), and injects
//! `Δ` units of flow on the violating tree's nets, exponentially penalising
//! the congested ones. A node leaves `V'` once all its constraints hold —
//! and because lengths only ever grow (so shortest-path distances only ever
//! grow, while the bound `g` is fixed), a satisfied node can never become
//! violated again, which is what makes the single-confirmation scheme of
//! the paper sound.
//!
//! # Speculative parallel probing
//!
//! The expensive part of a round is the probes — one truncated Dijkstra
//! per active node — while the injections themselves are cheap vector
//! updates. The engine therefore snapshots the metric at the start of each
//! round, fans the shuffled working set out across a scoped worker pool
//! ([`FlowParams::threads`]) that runs the read-only probes concurrently,
//! and then *commits* the resulting candidate trees sequentially, in the
//! round's shuffled order. Commits after the first one see a metric the
//! probes did not; each such candidate is re-validated against the updated
//! metric via [`ViolatingTree::still_violated`], which re-prices the tree
//! along its recorded paths — an upper bound on the true `lhs`, so a
//! candidate that still falls short of its bound is certifiably still
//! violated and safe to inject on. Candidates that fail re-validation are
//! dropped (counted as [`InjectionStats::wasted_probes`]) and their nodes
//! stay in the working set for the next round; retirement still only
//! happens on a clean `None` probe against the snapshot, which the
//! monotonicity argument above makes sound.
//!
//! Because the RNG is consumed only by the per-round shuffle and every
//! probe depends only on the snapshot metric, the computed metric and all
//! deterministic counters are **bit-identical for a fixed seed at any
//! thread count** — threads change wall-clock time, nothing else.
//!
//! # Resilience
//!
//! [`compute_spreading_metric_budgeted`] threads a [`Budget`] through the
//! loop: each round charges [`Budget::round_tick`] and each probe
//! [`Budget::probe_tick`], so deadlines, caps, and cancellation interrupt
//! the computation mid-round with at most one probe of latency. An
//! interrupted round commits the probes that did finish and keeps every
//! unprobed node in the working set — the partial metric is still a valid
//! length assignment, just not yet converged
//! ([`InjectionStats::interrupt`] says why it stopped). Every probe also
//! runs under [`std::panic::catch_unwind`]: a panicking probe is contained
//! (counted in [`InjectionStats::panicked_probes`]), its node simply stays
//! active and is re-probed next round, and the round's other probes are
//! unaffected. The probe scratch re-initialises itself on entry, so a
//! half-poisoned buffer from a contained panic self-heals on the next
//! probe. Budget checks consume no randomness: a budgeted run that is
//! never interrupted is bit-identical to an unbudgeted one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use rand::seq::SliceRandom;
use rand::Rng;

use htp_graph::{dial_plan, dial_plan_forced};
use htp_model::TreeSpec;
use htp_netlist::{CsrHypergraph, Hypergraph, NodeId};

use crate::constraint::{
    probe_source, probe_source_csr, probe_source_weighted, CsrProbeScratch, ProbeScratch,
    ViolatingTree,
};
use crate::runtime::{Budget, Interrupt, InterruptCell};
use crate::SpreadingMetric;

/// How Algorithm 2 orders the "k closest nodes" when growing the trees
/// `S(v, k)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GrowthOrder {
    /// Pick by node size: plain distance order for unit-size netlists,
    /// weighted order otherwise.
    #[default]
    Auto,
    /// Plain shortest-path distance order (the common case).
    Distance,
    /// The paper's non-unit-size ordering by `(dist(v,u) + 1)·s(u)`;
    /// requires a full Dijkstra per probe.
    WeightedDistance,
}

/// Which frontier the data-oriented probe kernel uses.
///
/// The settle order is bit-identical under every setting (the frontier
/// contract fixes the pop order), so this only ever changes wall-clock
/// time. [`Auto`](FrontierMode::Auto) first defers to the `HTP_FRONTIER`
/// environment variable (`"heap"` / `"dial"`, the CI matrix's override
/// channel), then falls back to a per-round quantization probe of the
/// metric's length spectrum ([`dial_plan`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierMode {
    /// `HTP_FRONTIER` env override if set, else the quantization probe.
    #[default]
    Auto,
    /// Always the 4-ary indexed heap.
    Heap,
    /// Always the bucket/dial queue (with the bucket count clamped, so
    /// wide spectra route through the overflow bucket instead of refusing).
    Dial,
}

/// Cap on the dial queue's bucket-window size: spectra needing more
/// buckets than this are not quantized enough for the dial to win.
const DIAL_MAX_BUCKETS: usize = 4096;

/// How the working set is scheduled across rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProbeSchedule {
    /// Slack-aware deferral: a node whose speculative candidate was wasted
    /// at commit time (the round's earlier injections already satisfied
    /// it) is re-probed after a geometric backoff of 2, 4, 8, … rounds,
    /// with the exponent growing faster the larger the node's observed
    /// relative slack. Nodes that inject stay hot; retirement still
    /// happens only on a clean all-satisfied probe. Rounds in which no
    /// node is due are skipped for free (no budget, RNG, or probes).
    ///
    /// Instances with fewer than 256 nodes fall back to the exhaustive
    /// schedule: their rounds are too cheap for deferral to pay for the
    /// risk of delaying an injection.
    #[default]
    Adaptive,
    /// Probe every active node every round — the pre-scheduler behavior,
    /// kept for A/B comparison and the scheduler's convergence tests.
    Exhaustive,
}

/// Tuning parameters of Algorithm 2.
///
/// The paper leaves `ε`, `α`, and the injection amount `Δ` open; the
/// defaults here were chosen by the ablation bench (`htp-bench`,
/// `--bin ablation`) to give a good cost/runtime trade-off on the ISCAS85
/// surrogates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowParams {
    /// Initial flow `ε` on every net (keeps initial lengths positive).
    pub epsilon: f64,
    /// Exponent scale `α` of the length function.
    pub alpha: f64,
    /// Flow injected on each net of a violating tree.
    pub delta: f64,
    /// Safety cap on full passes over the working set; the algorithm
    /// normally converges long before this.
    pub max_rounds: usize,
    /// Absolute slack when comparing `lhs` against `g` (guards against
    /// floating-point noise near tight constraints).
    pub tolerance: f64,
    /// Prefix ordering used by the constraint oracle.
    pub order: GrowthOrder,
    /// Round-to-round scheduling of the working set (see
    /// [`ProbeSchedule`]).
    pub schedule: ProbeSchedule,
    /// Worker threads for the probe phase of each round: `1` probes inline
    /// on the calling thread, `0` uses all available parallelism. The
    /// computed metric is bit-identical at every setting.
    pub threads: usize,
    /// Frontier selection for the probe kernel (see [`FrontierMode`]);
    /// bit-identical results under every setting.
    pub frontier: FrontierMode,
    /// Merge identical-pin-set nets (summing capacities) before solving,
    /// via [`htp_netlist::dedup_nets`]. The partition found is valid on
    /// the original hypergraph and has the same cost there (a cut pin set
    /// pays its summed capacity either way), but the flow *trajectory*
    /// differs — parallel nets receive one injection each where the
    /// merged net receives one in total — so this is **off by default**
    /// to keep the conformance golden digests byte-stable.
    pub dedup_nets: bool,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            epsilon: 1e-3,
            alpha: 1.0,
            delta: 0.5,
            max_rounds: 10_000,
            tolerance: 1e-9,
            order: GrowthOrder::Auto,
            schedule: ProbeSchedule::Adaptive,
            threads: 1,
            frontier: FrontierMode::Auto,
            dedup_nets: false,
        }
    }
}

impl FlowParams {
    /// Validates the parameters, naming the first offending field.
    ///
    /// # Errors
    ///
    /// Returns a static description such as `"delta must be positive"`.
    pub fn check(&self) -> Result<(), &'static str> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err("epsilon must be positive");
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err("alpha must be positive");
        }
        if !(self.delta > 0.0 && self.delta.is_finite()) {
            return Err("delta must be positive");
        }
        if self.max_rounds < 1 {
            return Err("need at least one round");
        }
        if self.tolerance.is_nan() || self.tolerance < 0.0 {
            return Err("tolerance must be non-negative");
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(what) = self.check() {
            panic!("{what}");
        }
    }
}

/// Progress counters and phase timings of one metric computation.
///
/// Equality compares the deterministic counters only — the wall-clock
/// fields ([`probe_time`](InjectionStats::probe_time),
/// [`commit_time`](InjectionStats::commit_time)) vary run to run and are
/// excluded, so determinism tests can `assert_eq!` whole stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct InjectionStats {
    /// Number of flow injections performed (violating trees committed).
    pub injections: usize,
    /// Number of passes over the working set.
    pub rounds: usize,
    /// `true` when every constraint was confirmed satisfied; `false` when
    /// the round cap was hit or an unfixable (netless) violation appeared.
    pub converged: bool,
    /// Constraint-oracle probes run (one per active node per round).
    pub probes: usize,
    /// Speculative probes whose candidate tree failed commit-time
    /// re-validation against the updated metric and was discarded.
    pub wasted_probes: usize,
    /// Probes that panicked and were contained by the engine: the round's
    /// other probes are unaffected and the node stays in the working set,
    /// to be re-probed next round.
    pub panicked_probes: usize,
    /// Times the adaptive scheduler put a node on geometric backoff
    /// instead of re-probing it the very next round (always 0 under
    /// [`ProbeSchedule::Exhaustive`]).
    pub deferrals: usize,
    /// Injected oracle errors observed (the `fault-injection` harness);
    /// handled like contained panics.
    pub oracle_faults: usize,
    /// Why the computation stopped early, when a budget limit or
    /// cancellation interrupted it before convergence (`None` for a
    /// natural finish).
    pub interrupt: Option<Interrupt>,
    /// Rounds probed with the bucket/dial frontier (kernel telemetry; a
    /// deterministic function of the metric trajectory and the
    /// [`FrontierMode`], so it participates in equality).
    pub dial_rounds: usize,
    /// Rounds probed with the indexed-heap frontier.
    pub heap_rounds: usize,
    /// Wall-clock time spent in the (parallel) probe phases.
    pub probe_time: Duration,
    /// Wall-clock time spent in the sequential commit phases.
    pub commit_time: Duration,
    /// Wall-clock time spent in the batched `exp(α·f/c)` re-pricing pass
    /// at the start of each round (CSR kernel only).
    pub repricing_time: Duration,
}

impl PartialEq for InjectionStats {
    fn eq(&self, other: &Self) -> bool {
        self.injections == other.injections
            && self.rounds == other.rounds
            && self.converged == other.converged
            && self.probes == other.probes
            && self.wasted_probes == other.wasted_probes
            && self.panicked_probes == other.panicked_probes
            && self.deferrals == other.deferrals
            && self.oracle_faults == other.oracle_faults
            && self.interrupt == other.interrupt
            && self.dial_rounds == other.dial_rounds
            && self.heap_rounds == other.heap_rounds
    }
}

impl Eq for InjectionStats {}

/// Computes a spreading metric for (P1) by stochastic flow injection
/// (**Algorithm 2**), probing the working set in parallel when
/// [`FlowParams::threads`] allows (see the [module docs](self) for the
/// speculative commit scheme).
///
/// Returns the metric together with convergence statistics. Nodes whose
/// violation has no nets to inject on (a single node bigger than `C_0` —
/// an infeasible instance) are dropped from the working set and flagged via
/// `converged = false`.
///
/// # Panics
///
/// Panics if the parameters are out of range (see [`FlowParams`]) or the
/// netlist is empty.
pub fn compute_spreading_metric<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: FlowParams,
    rng: &mut R,
) -> (SpreadingMetric, InjectionStats) {
    compute_spreading_metric_budgeted(h, spec, params, rng, &Budget::unlimited())
}

/// Outcome of one probe slot in a round, consumed by the commit phase.
enum Probe {
    /// The worker never reached this node (budget interrupt mid-round):
    /// its status is unknown, so it stays in the working set.
    NotRun,
    /// Every constraint for the node holds against the snapshot.
    Clear,
    /// A violated constraint with its tree, ready to commit, plus the
    /// probe's minimum relative slack over the satisfied prefixes before
    /// it (the adaptive scheduler's backoff key).
    Violated(ViolatingTree, f64),
    /// The probe panicked and was contained; the node stays active.
    Panicked,
    /// An injected oracle error (`fault-injection` harness only).
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    OracleError,
}

/// Per-worker probe buffers, matching the kernel the run resolved to:
/// the legacy pointer-walking oracle (weighted order) or the CSR kernel
/// with both frontiers inline.
enum KernelScratch {
    Legacy(Box<ProbeScratch>),
    Csr(Box<CsrProbeScratch>),
}

/// Relative slack below which a wasted node's backoff exponent grows at
/// the slowest rate (+1 per wasted probe) — it sits right at its bound,
/// so it should be looked at again soonest.
const SLACK_RETRY: f64 = 0.05;
/// Relative slack above which the backoff exponent grows by 3 per wasted
/// probe instead of 2 — the node is comfortably satisfied and monotonicity
/// says it only ever gets more so.
const SLACK_FAR: f64 = 0.5;
/// Instances below this node count always run the exhaustive schedule,
/// whatever [`FlowParams::schedule`] says. Small working sets converge in
/// a handful of cheap rounds, where deferring a (staleness-masked) violated
/// node risks extra rounds for no measurable probe savings — the classic
/// small-input cutoff. The threshold is a property of the instance, so the
/// choice stays deterministic and thread-invariant.
const ADAPTIVE_MIN_NODES: usize = 256;
/// Cap on the backoff exponent: deferral never exceeds `2^6 = 64` rounds.
const MAX_BACKOFF: u8 = 6;

/// [`compute_spreading_metric`] under a [`Budget`]: deadlines, round and
/// probe caps, and cancellation interrupt the computation cooperatively
/// (see the [module docs](self)).
///
/// On an interrupt the function still returns the metric accumulated so
/// far — a valid, partially-converged length assignment — with
/// [`InjectionStats::interrupt`] naming the reason and
/// [`InjectionStats::converged`] `false`. Probe panics are contained per
/// probe and counted in [`InjectionStats::panicked_probes`]; the panic
/// payload itself goes through the process's panic hook, so set a quiet
/// hook in tests that inject panics on purpose.
///
/// # Panics
///
/// Panics if the parameters are out of range (see [`FlowParams::check`])
/// or the netlist is empty.
pub fn compute_spreading_metric_budgeted<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: FlowParams,
    rng: &mut R,
    budget: &Budget,
) -> (SpreadingMetric, InjectionStats) {
    params.validate();
    assert!(
        h.num_nodes() > 0,
        "cannot compute a metric for an empty netlist"
    );

    let flow: Vec<f64> = vec![params.epsilon; h.num_nets()];
    let metric = SpreadingMetric::from_lengths(
        h.nets()
            .map(|e| length_of(params.alpha, params.epsilon, h.net_capacity(e)))
            .collect(),
    );
    let active: Vec<NodeId> = h.nodes().collect();
    run_injection(h, spec, params, rng, budget, flow, metric, active)
}

/// Prior converged state to seed an incremental (ECO) metric run from.
///
/// A converged metric stays a *feasible* length assignment for every
/// constraint that the edit did not perturb — lengths only ever grow
/// during injection, so re-using them can never un-satisfy an untouched
/// constraint the way a cold epsilon start does. The warm run therefore
/// begins with only the perturbed nodes in the working set and lets the
/// adaptive scheduler converge the ripple outward.
pub struct WarmStart<'a> {
    /// Per-net starting lengths in the *edited* netlist's id space.
    /// `Some(d)` carries a prior converged length; `None` (new or
    /// re-priced-from-scratch nets) starts cold at the epsilon flow.
    /// Non-finite or negative carried lengths also fall back to cold.
    pub lengths: &'a [Option<f64>],
    /// The initial working set: nodes whose spreading constraints the
    /// edit may have perturbed (duplicates and out-of-range ids are
    /// ignored). Everything else starts retired, exactly as if a prior
    /// run had confirmed it satisfied.
    pub active: &'a [NodeId],
}

/// [`compute_spreading_metric_budgeted`] seeded from a prior converged
/// run (see [`WarmStart`]).
///
/// The carried lengths are inverted back to flows with
/// `f = (c/α)·ln(d + 1)` (clamped to at least `ε`) so injections continue
/// to re-price exponentially from where the prior run stopped. With every
/// length `None` and every node active this is bit-identical to the cold
/// [`compute_spreading_metric_budgeted`]; the cold entry point itself is
/// untouched, so existing goldens cannot move.
///
/// Soundness caveat: retiring the untouched nodes up front is exact for
/// edits that only *remove* short paths (net removal, capacity increase)
/// and a locality heuristic for edits that add them (new nets start at
/// near-zero length, which can shorten distances under far-away
/// constraints). The construction downstream never produces an invalid
/// partition either way — an under-converged metric costs quality, not
/// correctness — and the differential harness bounds that quality gap.
///
/// # Panics
///
/// Panics if the parameters are out of range, the netlist is empty, or
/// `warm.lengths` does not have one entry per net.
pub fn compute_spreading_metric_warm<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: FlowParams,
    rng: &mut R,
    budget: &Budget,
    warm: &WarmStart<'_>,
) -> (SpreadingMetric, InjectionStats) {
    params.validate();
    assert!(
        h.num_nodes() > 0,
        "cannot compute a metric for an empty netlist"
    );
    assert_eq!(
        warm.lengths.len(),
        h.num_nets(),
        "warm start needs one prior length slot per net"
    );

    // Invert carried lengths to flows; flow and length must stay the
    // consistent pair (f, d(f)) or later injections would re-price from
    // the wrong base. Clamping to epsilon keeps lengths positive and only
    // ever raises a carried length, which monotonicity makes safe.
    let mut flow: Vec<f64> = Vec::with_capacity(h.num_nets());
    for e in h.nets() {
        let c = h.net_capacity(e);
        let f = match warm.lengths[e.index()] {
            Some(d) if d.is_finite() && d >= 0.0 => (c / params.alpha) * (d + 1.0).ln(),
            _ => params.epsilon,
        };
        flow.push(f.max(params.epsilon));
    }
    let metric = SpreadingMetric::from_lengths(
        h.nets()
            .map(|e| length_of(params.alpha, flow[e.index()], h.net_capacity(e)))
            .collect(),
    );
    let mut active: Vec<NodeId> = warm
        .active
        .iter()
        .copied()
        .filter(|v| v.index() < h.num_nodes())
        .collect();
    active.sort_unstable();
    active.dedup();
    run_injection(h, spec, params, rng, budget, flow, metric, active)
}

/// The shared injection loop behind the cold and warm entry points: runs
/// Algorithm 2 from the given `(flow, metric, active)` starting state.
#[allow(clippy::too_many_arguments)]
fn run_injection<R: Rng + ?Sized>(
    h: &Hypergraph,
    spec: &TreeSpec,
    params: FlowParams,
    rng: &mut R,
    budget: &Budget,
    mut flow: Vec<f64>,
    mut metric: SpreadingMetric,
    mut active: Vec<NodeId>,
) -> (SpreadingMetric, InjectionStats) {
    let mut stats = InjectionStats {
        converged: true,
        ..InjectionStats::default()
    };
    let weighted = match params.order {
        GrowthOrder::Auto => !h.has_unit_sizes(),
        GrowthOrder::Distance => false,
        GrowthOrder::WeightedDistance => true,
    };
    // The flat CSR view serving the distance-order kernel (the 99.6%
    // case). The weighted order needs the legacy grower, so it keeps the
    // pointer-walking path. Lengths are re-priced in one flat pass per
    // round; capacities are pre-extracted so that pass is slab-on-slab.
    let mut csr = (!weighted).then(|| CsrHypergraph::new(h));
    let caps: Vec<f64> = h.nets().map(|e| h.net_capacity(e)).collect();
    // Frontier resolution: an explicit param wins, else the env override
    // (the CI matrix channel), else the per-round quantization probe.
    // `Some(true/false)` forces dial/heap; `None` re-plans each round.
    let forced: Option<bool> = match params.frontier {
        FrontierMode::Heap => Some(false),
        FrontierMode::Dial => Some(true),
        FrontierMode::Auto => match std::env::var("HTP_FRONTIER").as_deref() {
            Ok("dial") => Some(true),
            Ok("heap") => Some(false),
            _ => None,
        },
    };
    // Shared by every probe worker; captures only immutable borrows, so it
    // can be called concurrently against the round's metric snapshot.
    let probe = |metric: &SpreadingMetric, v: NodeId, scratch: &mut ProbeScratch| {
        if weighted {
            probe_source_weighted(h, spec, metric, v, params.tolerance, scratch)
        } else {
            probe_source(h, spec, metric, v, params.tolerance, scratch)
        }
    };
    // Probes one contiguous chunk of the round's shuffled working set
    // (global probe indices `base..`) into `out`. Shared by the inline and
    // scoped-worker paths; stops early — leaving `Probe::NotRun` slots —
    // once any worker records a budget interrupt in `stop`. The fault
    // index is taken from the deterministic slot position, never from the
    // shared probe counter, so fault plans fire identically at any thread
    // count. `csr`/`dial` arrive as per-call arguments (never captured) so
    // the round loop stays free to re-price the slab between rounds.
    let run_chunk = |metric: &SpreadingMetric,
                     csr: Option<&CsrHypergraph>,
                     dial: Option<(f64, usize)>,
                     nodes: &[NodeId],
                     out: &mut [Probe],
                     base: u64,
                     scratch: &mut KernelScratch,
                     stop: &InterruptCell| {
        if let (KernelScratch::Csr(s), Some((width, buckets))) = (&mut *scratch, dial) {
            s.plan_dial(width, buckets);
        }
        for (i, (v, slot)) in nodes.iter().zip(out.iter_mut()).enumerate() {
            if stop.get().is_some() {
                return;
            }
            if let Err(irq) = budget.probe_tick() {
                stop.set(irq);
                return;
            }
            let _index = base + i as u64;
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = budget.fault_plan() {
                if plan.should_fail_oracle(_index) {
                    *slot = Probe::OracleError;
                    continue;
                }
            }
            // Contain a panicking probe: the scratch re-initialises itself
            // on entry, so whatever state the unwound probe left behind is
            // wiped before the next use.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if let Some(plan) = budget.fault_plan() {
                    if plan.should_panic(_index) {
                        panic!("injected probe fault at probe {_index}");
                    }
                }
                match scratch {
                    KernelScratch::Csr(s) => {
                        let view = csr.expect("CSR scratch requires the CSR view");
                        probe_source_csr(view, spec, *v, params.tolerance, s, dial.is_some())
                    }
                    KernelScratch::Legacy(s) => probe(metric, *v, s),
                }
            }));
            *slot = match outcome {
                Ok(report) => match report.violation {
                    Some(t) => Probe::Violated(t, report.min_rel_slack),
                    None => Probe::Clear,
                },
                Err(_) => Probe::Panicked,
            };
        }
    };
    let threads = crate::pool::resolve_threads(params.threads);
    // One kernel scratch per potential worker plus the inline path,
    // allocated once and reused across every round (the per-round
    // allocation this replaces showed up at high thread counts).
    let new_scratch = || match &csr {
        Some(view) => KernelScratch::Csr(Box::new(CsrProbeScratch::new(view))),
        None => KernelScratch::Legacy(Box::new(ProbeScratch::new(h))),
    };
    let mut inline_scratch = new_scratch();
    let mut worker_scratches: Vec<KernelScratch> =
        (0..threads.max(1)).map(|_| new_scratch()).collect();

    // Slack-aware scheduler state, slot-indexed by node id so the due/held
    // split of each round is a pure function of committed state — never of
    // thread timing. `due_round[v]` is the earliest virtual round `v` may
    // be probed in; `backoff[v]` is its current deferral exponent.
    let adaptive =
        params.schedule == ProbeSchedule::Adaptive && h.num_nodes() >= ADAPTIVE_MIN_NODES;
    let mut due_round: Vec<u64> = vec![0; h.num_nodes()];
    let mut backoff: Vec<u8> = vec![0; h.num_nodes()];
    let mut clock: u64 = 0;

    let mut candidates: Vec<Probe> = Vec::new();
    let mut due: Vec<NodeId> = Vec::new();
    let mut held: Vec<NodeId> = Vec::new();
    while !active.is_empty() && stats.rounds < params.max_rounds {
        // Select this round's due subset. Under the adaptive schedule the
        // virtual clock fast-forwards to the earliest due node, so rounds
        // in which every node is deferred are skipped for free — they
        // consume no budget, randomness, or probes. Under the exhaustive
        // schedule everything is due every round (the pre-scheduler
        // behavior, bit-for-bit).
        due.clear();
        held.clear();
        if adaptive {
            let min_due = active
                .iter()
                .map(|&v| due_round[v.index()])
                .min()
                .expect("active set is non-empty");
            clock = (clock + 1).max(min_due);
            for &v in &active {
                if due_round[v.index()] <= clock {
                    due.push(v);
                } else {
                    held.push(v);
                }
            }
        } else {
            due.extend_from_slice(&active);
        }

        if let Err(irq) = budget.round_tick() {
            stats.interrupt = Some(irq);
            break;
        }
        stats.rounds += 1;
        due.shuffle(rng);

        // Batched re-pricing: rebuild the CSR's length slab from the flow
        // in one flat pass. `length_of` is a pure function of `(flow, c)`
        // and the commit phase maintains `metric` through the identical
        // expression, so the recomputed slab is bit-for-bit the metric —
        // asserted below — while the pass itself is slab-on-slab and
        // vectorizes.
        let dial_geom = if let Some(view) = csr.as_mut() {
            let reprice_start = Instant::now();
            let lens = view.lengths_mut();
            for (len, (&f, &c)) in lens.iter_mut().zip(flow.iter().zip(&caps)) {
                *len = length_of(params.alpha, f, c);
            }
            stats.repricing_time += reprice_start.elapsed();
            debug_assert_eq!(
                view.lengths(),
                metric.lengths(),
                "batched re-pricing must reproduce the metric exactly"
            );
            // Kernel choice for the round: forced, or the quantization
            // probe of the freshly priced spectrum.
            match forced {
                Some(true) => Some(dial_plan_forced(view.lengths(), DIAL_MAX_BUCKETS)),
                Some(false) => None,
                None => dial_plan(view.lengths(), DIAL_MAX_BUCKETS),
            }
        } else {
            None
        };
        if csr.is_none() || dial_geom.is_none() {
            stats.heap_rounds += 1;
        } else {
            stats.dial_rounds += 1;
        }

        // Probe phase: every due node against the round-start snapshot.
        // `candidates[i]` is the probe result for `due[i]`; workers get
        // disjoint index ranges, so the outcome is independent of how many
        // there are.
        let probe_start = Instant::now();
        candidates.clear();
        candidates.resize_with(due.len(), || Probe::NotRun);
        let stop = InterruptCell::new();
        let probe_base = stats.probes as u64;
        let workers = threads.min(due.len());
        let csr_ref = csr.as_ref();
        if workers <= 1 {
            run_chunk(
                &metric,
                csr_ref,
                dial_geom,
                &due,
                &mut candidates,
                probe_base,
                &mut inline_scratch,
                &stop,
            );
        } else {
            let chunk = due.len().div_ceil(workers);
            let (metric_ref, stop_ref, run_ref) = (&metric, &stop, &run_chunk);
            std::thread::scope(|s| {
                for ((ci, (nodes, out)), scratch) in due
                    .chunks(chunk)
                    .zip(candidates.chunks_mut(chunk))
                    .enumerate()
                    .zip(worker_scratches.iter_mut())
                {
                    s.spawn(move || {
                        let base = probe_base + (ci * chunk) as u64;
                        run_ref(
                            metric_ref, csr_ref, dial_geom, nodes, out, base, scratch, stop_ref,
                        );
                    });
                }
            });
        }
        stats.probe_time += probe_start.elapsed();

        // Commit phase: sequential, in shuffled order. The first commit
        // sees exactly the snapshot the probes used; later candidates are
        // re-validated against the updated metric before injecting. On an
        // interrupted round this commits whatever the workers finished —
        // injections only ever tighten the metric, so partial rounds are
        // as sound as full ones. Held (deferred) nodes carry over first,
        // preserving their order.
        let commit_start = Instant::now();
        let mut dirty = false;
        let mut still_active = Vec::with_capacity(active.len());
        still_active.extend_from_slice(&held);
        for (slot, &v) in candidates.iter_mut().zip(&due) {
            match std::mem::replace(slot, Probe::NotRun) {
                Probe::NotRun => {
                    // Interrupted before this probe ran: status unknown,
                    // the node must stay in the working set (still due).
                    still_active.push(v);
                }
                Probe::Clear => {
                    // All constraints for v confirmed; never re-check.
                    stats.probes += 1;
                }
                Probe::Panicked => {
                    stats.probes += 1;
                    stats.panicked_probes += 1;
                    still_active.push(v);
                }
                Probe::OracleError => {
                    stats.probes += 1;
                    stats.oracle_faults += 1;
                    still_active.push(v);
                }
                Probe::Violated(t, _) if t.nets.is_empty() => {
                    // A single node already exceeds C_0: no amount of flow
                    // can spread it. Drop it so the loop can terminate.
                    stats.probes += 1;
                    stats.converged = false;
                }
                Probe::Violated(t, min_rel_slack) => {
                    stats.probes += 1;
                    if !dirty || t.still_violated(&metric, params.tolerance) {
                        stats.injections += 1;
                        for &e in &t.nets {
                            flow[e.index()] += params.delta;
                            metric.set_length(
                                e,
                                length_of(params.alpha, flow[e.index()], h.net_capacity(e)),
                            );
                        }
                        dirty = true;
                        // An injecting node is making progress: keep it
                        // hot (it was due this round, so it stays due).
                        backoff[v.index()] = 0;
                    } else {
                        // The injections committed earlier this round
                        // already satisfied this tree. Under the adaptive
                        // schedule, defer the re-probe geometrically, the
                        // exponent growing with how much slack the node
                        // showed: its probe's minimum relative slack,
                        // tightened by the commit-time repricing of the
                        // candidate itself (both only ever grow).
                        stats.wasted_probes += 1;
                        if adaptive {
                            let repriced_slack = if t.bound > 0.0 {
                                (t.repriced_lhs(&metric) - t.bound) / t.bound
                            } else {
                                f64::INFINITY
                            };
                            let slack = min_rel_slack.min(repriced_slack);
                            // Every wasted probe backs off — by monotonicity
                            // the repriced tree can never violate again, so
                            // the node is satisfied *right now* and the only
                            // question is how long that is likely to last.
                            // The slack picks the exponent's growth rate.
                            let grow: u8 = if slack < SLACK_RETRY {
                                1
                            } else if slack < SLACK_FAR {
                                2
                            } else {
                                3
                            };
                            let exp = (backoff[v.index()] + grow).min(MAX_BACKOFF);
                            backoff[v.index()] = exp;
                            due_round[v.index()] = clock + (1u64 << exp);
                            stats.deferrals += 1;
                        }
                    }
                    still_active.push(v);
                }
            }
        }
        stats.commit_time += commit_start.elapsed();
        active = still_active;
        if let Some(irq) = stop.get() {
            stats.interrupt = Some(irq);
            break;
        }
    }
    if !active.is_empty() {
        stats.converged = false;
    }
    (metric, stats)
}

/// The exponential length function `d = exp(α·f/c) − 1`.
#[inline]
fn length_of(alpha: f64, flow: f64, capacity: f64) -> f64 {
    (alpha * flow / capacity).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::check_feasibility;
    use htp_netlist::gen::clustered::{clustered_hypergraph, ClusteredParams};
    use htp_netlist::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_nodes(n);
        for i in 0..n - 1 {
            b.add_net(1.0, [NodeId::new(i), NodeId::new(i + 1)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn converges_to_a_feasible_metric_on_a_path() {
        let h = path(8);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (m, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged, "stats: {stats:?}");
        assert!(
            stats.injections > 0,
            "the zero-ish start must violate something"
        );
        let report = check_feasibility(&h, &spec, &m, 1e-6);
        assert!(
            report.feasible,
            "worst shortfall {}",
            report.worst_shortfall
        );
    }

    #[test]
    fn feasible_metric_objective_is_positive_but_bounded() {
        let h = path(8);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (m, _) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        let obj = m.objective(&h);
        assert!(obj > 0.0);
        // The optimal partition of a path costs little; the heuristic metric
        // should not be absurdly above the trivial upper bound of cutting
        // every net at every level.
        assert!(obj < 200.0, "objective exploded: {obj}");
    }

    #[test]
    fn clustered_instance_prices_inter_cluster_nets_higher() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = ClusteredParams {
            clusters: 2,
            cluster_size: 8,
            intra_nets: 40,
            inter_nets: 3,
            min_net_size: 2,
            max_net_size: 2,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(8, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let (m, stats) = compute_spreading_metric(h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged);

        let mut inter = Vec::new();
        let mut intra = Vec::new();
        for e in h.nets() {
            let pins = h.net_pins(e);
            let crosses = pins
                .iter()
                .any(|v| inst.cluster_of[v.index()] != inst.cluster_of[pins[0].index()]);
            if crosses {
                inter.push(m.length(e));
            } else {
                intra.push(m.length(e));
            }
        }
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            avg(&inter) > avg(&intra),
            "spreading metric should stretch the planted cut: inter {} vs intra {}",
            avg(&inter),
            avg(&intra)
        );
    }

    #[test]
    fn loose_spec_needs_no_injections() {
        let h = path(4);
        // Everything fits in one leaf: g == 0 everywhere.
        let spec = TreeSpec::new(vec![(100, 2, 1.0), (100, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (m, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged);
        assert_eq!(stats.injections, 0);
        assert_eq!(stats.rounds, 1);
        // Lengths stay at their epsilon initialisation.
        for e in h.nets() {
            assert!(m.length(e) < 0.01);
        }
    }

    #[test]
    fn non_unit_sizes_use_the_weighted_order_and_converge() {
        // Mixed sizes: 4 heavy nodes and 4 light ones on a ring.
        let mut b = HypergraphBuilder::new();
        for i in 0..8 {
            b.add_node(if i % 2 == 0 { 3 } else { 1 });
        }
        for i in 0..8u32 {
            b.add_net(1.0, [NodeId(i), NodeId((i + 1) % 8)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(5, 2, 1.0), (9, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let (m, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(stats.converged, "stats: {stats:?}");
        // The distance-ordered oracle must also find it feasible (its
        // prefixes are a subset of all S, so this is a one-way check).
        let report = check_feasibility(&h, &spec, &m, 1e-6);
        assert!(
            report.feasible,
            "worst shortfall {}",
            report.worst_shortfall
        );
    }

    #[test]
    fn explicit_distance_order_still_works_on_weighted_nodes() {
        let mut b = HypergraphBuilder::new();
        for _ in 0..6 {
            b.add_node(2);
        }
        for i in 0..5u32 {
            b.add_net(1.0, [NodeId(i), NodeId(i + 1)]).unwrap();
        }
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(4, 2, 1.0), (12, 2, 1.0)]).unwrap();
        let params = FlowParams {
            order: GrowthOrder::Distance,
            ..FlowParams::default()
        };
        let mut rng = StdRng::seed_from_u64(22);
        let (_, stats) = compute_spreading_metric(&h, &spec, params, &mut rng);
        assert!(stats.converged);
    }

    #[test]
    fn oversized_node_is_reported_not_looped() {
        let mut b = HypergraphBuilder::new();
        b.add_node(10);
        b.add_node(1);
        b.add_net(1.0, [NodeId(0), NodeId(1)]).unwrap();
        let h = b.build().unwrap();
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (16, 2, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let (_, stats) = compute_spreading_metric(&h, &spec, FlowParams::default(), &mut rng);
        assert!(!stats.converged, "infeasible node must be flagged");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let (m1, s1) = compute_spreading_metric(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(9),
        );
        let (m2, s2) = compute_spreading_metric(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn thread_count_does_not_change_the_metric() {
        // The speculative-parallel engine must be bit-identical at any
        // thread count: probes only read the round-start snapshot and
        // commits are sequential in shuffled order.
        let mut rng = StdRng::seed_from_u64(1997);
        let params = ClusteredParams {
            clusters: 4,
            cluster_size: 10,
            intra_nets: 30,
            inter_nets: 6,
            min_net_size: 2,
            max_net_size: 3,
        };
        let inst = clustered_hypergraph(params, &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(10, 2, 1.0), (20, 2, 1.0), (40, 2, 1.0)]).unwrap();
        let run = |threads: usize| {
            let flow = FlowParams {
                threads,
                ..FlowParams::default()
            };
            compute_spreading_metric(h, &spec, flow, &mut StdRng::seed_from_u64(42))
        };
        let (m1, s1) = run(1);
        for threads in [2, 4, 0] {
            let (mt, st) = run(threads);
            assert_eq!(m1, mt, "metric diverged at threads={threads}");
            assert_eq!(s1, st, "stats diverged at threads={threads}");
        }
        assert!(s1.converged);
    }

    #[test]
    fn stats_counters_are_consistent() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let flow = FlowParams {
            threads: 4,
            ..FlowParams::default()
        };
        let (_, stats) = compute_spreading_metric(&h, &spec, flow, &mut StdRng::seed_from_u64(5));
        assert!(stats.converged);
        // Every active node is probed once per round, and each probe either
        // retires the node, commits an injection, or is wasted.
        assert!(stats.probes >= stats.rounds, "at least one probe per round");
        assert!(stats.probes >= stats.injections + stats.wasted_probes);
        assert!(stats.injections > 0);
    }

    #[test]
    fn unbudgeted_and_unlimited_budget_agree() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let (m1, s1) = compute_spreading_metric(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(13),
        );
        let (m2, s2) = compute_spreading_metric_budgeted(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(13),
            &Budget::unlimited(),
        );
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
        assert_eq!(s2.interrupt, None);
        assert_eq!(s2.panicked_probes, 0);
    }

    #[test]
    fn probe_cap_interrupts_and_keeps_a_valid_partial_metric() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let budget = Budget::unlimited().with_max_probes(5);
        let (m, stats) = compute_spreading_metric_budgeted(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(3),
            &budget,
        );
        assert_eq!(stats.interrupt, Some(crate::Interrupt::ProbeLimit));
        assert!(!stats.converged);
        assert!(stats.probes <= 5);
        // The partial metric is still a valid (positive, finite) length
        // assignment over every net.
        for e in h.nets() {
            assert!(m.length(e).is_finite() && m.length(e) > 0.0);
        }
    }

    #[test]
    fn round_cap_interrupts_before_the_capped_round() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let budget = Budget::unlimited().with_max_rounds(2);
        let (_, stats) = compute_spreading_metric_budgeted(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(3),
            &budget,
        );
        assert_eq!(stats.interrupt, Some(crate::Interrupt::RoundLimit));
        assert_eq!(stats.rounds, 2);
        assert_eq!(budget.rounds_used(), 3, "the refused round is charged");
    }

    #[test]
    fn cancelled_budget_stops_immediately() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let (_, stats) = compute_spreading_metric_budgeted(
            &h,
            &spec,
            FlowParams::default(),
            &mut StdRng::seed_from_u64(3),
            &budget,
        );
        assert_eq!(stats.interrupt, Some(crate::Interrupt::Cancelled));
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.probes, 0);
    }

    #[test]
    fn interrupted_runs_are_identical_across_thread_counts() {
        // A budget interrupt changes *which* probes run, but the committed
        // rounds before the interrupt are deterministic; with a round cap
        // (deterministic interrupt point) the partial metric must match at
        // every thread count.
        let mut rng = StdRng::seed_from_u64(77);
        let inst = clustered_hypergraph(ClusteredParams::default(), &mut rng);
        let h = &inst.hypergraph;
        let spec = TreeSpec::new(vec![(10, 2, 1.0), (20, 2, 1.0), (40, 2, 1.0)]).unwrap();
        let run = |threads: usize| {
            let flow = FlowParams {
                threads,
                ..FlowParams::default()
            };
            compute_spreading_metric_budgeted(
                h,
                &spec,
                flow,
                &mut StdRng::seed_from_u64(4),
                &Budget::unlimited().with_max_rounds(3),
            )
        };
        let (m1, s1) = run(1);
        assert_eq!(s1.interrupt, Some(crate::Interrupt::RoundLimit));
        for threads in [2, 4] {
            let (mt, st) = run(threads);
            assert_eq!(m1, mt, "partial metric diverged at threads={threads}");
            assert_eq!(s1, st, "stats diverged at threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_bad_params() {
        let h = path(3);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0)]).unwrap();
        let params = FlowParams {
            delta: 0.0,
            ..FlowParams::default()
        };
        let _ = compute_spreading_metric(&h, &spec, params, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn warm_with_no_prior_state_is_bit_identical_to_cold() {
        let h = path(10);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (5, 2, 1.0), (10, 2, 1.0)]).unwrap();
        let params = FlowParams::default();
        let (cold, cold_stats) = compute_spreading_metric_budgeted(
            &h,
            &spec,
            params,
            &mut StdRng::seed_from_u64(11),
            &Budget::unlimited(),
        );
        let lengths: Vec<Option<f64>> = vec![None; h.num_nets()];
        let active: Vec<NodeId> = h.nodes().collect();
        let (warm, warm_stats) = compute_spreading_metric_warm(
            &h,
            &spec,
            params,
            &mut StdRng::seed_from_u64(11),
            &Budget::unlimited(),
            &WarmStart {
                lengths: &lengths,
                active: &active,
            },
        );
        assert_eq!(cold, warm, "all-cold warm start must match the cold path");
        assert_eq!(cold_stats, warm_stats);
    }

    #[test]
    fn warm_from_converged_state_with_empty_active_set_is_a_noop() {
        let h = path(8);
        let spec = TreeSpec::new(vec![(2, 2, 1.0), (4, 2, 1.0), (8, 2, 1.0)]).unwrap();
        let params = FlowParams::default();
        let (m, stats) = compute_spreading_metric(&h, &spec, params, &mut StdRng::seed_from_u64(3));
        assert!(stats.converged);
        let lengths: Vec<Option<f64>> = h.nets().map(|e| Some(m.length(e))).collect();
        let (warm, warm_stats) = compute_spreading_metric_warm(
            &h,
            &spec,
            params,
            &mut StdRng::seed_from_u64(3),
            &Budget::unlimited(),
            &WarmStart {
                lengths: &lengths,
                active: &[],
            },
        );
        assert!(warm_stats.converged);
        assert_eq!(warm_stats.injections, 0, "nothing was live to re-price");
        for e in h.nets() {
            let (a, b) = (m.length(e), warm.length(e));
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "length drifted through the flow round-trip: {a} vs {b}"
            );
        }
    }

    #[test]
    fn warm_restart_after_perturbation_reconverges_feasibly() {
        // Converge on a path, then "edit" it by pretending the last net is
        // brand new (cold length) and its pins are the only live nodes.
        let h = path(12);
        let spec = TreeSpec::new(vec![(3, 2, 1.0), (6, 2, 1.0), (12, 2, 1.0)]).unwrap();
        let params = FlowParams::default();
        let (m, stats) = compute_spreading_metric(&h, &spec, params, &mut StdRng::seed_from_u64(5));
        assert!(stats.converged);
        let last = h.num_nets() - 1;
        let lengths: Vec<Option<f64>> = h
            .nets()
            .map(|e| {
                if e.index() == last {
                    None
                } else {
                    Some(m.length(e))
                }
            })
            .collect();
        let active = [NodeId::new(10), NodeId::new(11)];
        let (warm, warm_stats) = compute_spreading_metric_warm(
            &h,
            &spec,
            params,
            &mut StdRng::seed_from_u64(5),
            &Budget::unlimited(),
            &WarmStart {
                lengths: &lengths,
                active: &active,
            },
        );
        assert!(warm_stats.converged, "stats: {warm_stats:?}");
        // Every constraint of the live nodes must hold after the restart.
        let report = check_feasibility(&h, &spec, &warm, 1e-6);
        assert!(
            report.feasible,
            "worst shortfall {}",
            report.worst_shortfall
        );
        // Carried lengths never shrink (monotone re-pricing).
        for e in h.nets() {
            if e.index() != last {
                assert!(warm.length(e) >= m.length(e) - 1e-12);
            }
        }
    }
}
